//! Video playback over encoded segments.
//!
//! §4.3: "The gaming platform is an augmented video player." This module
//! is the *player* part: it holds the project's encoded video and segment
//! table, tracks which segment a scenario is showing, loops the segment
//! while the player explores it, and switches segments on scenario
//! changes (a seek, measured by EXP-3). Decoded GOPs come from a
//! [`GopCache`] that can be **shared across sessions**: a cohort of
//! players over the same content decodes each GOP once in total, instead
//! of once per player (EXP-11 measures exactly this).

use std::sync::Arc;

use vgbl_media::cache::{GopCache, VideoId};
use vgbl_media::codec::{Decoder, EncodedVideo};
use vgbl_media::{Frame, MediaError, Segment, SegmentId, SegmentTable};

use crate::Result;

/// GOP capacity of the private cache a standalone player creates.
const PRIVATE_CACHE_GOPS: usize = 8;

/// Accumulated playback-cost counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlaybackStats {
    /// Frames served to the UI.
    pub frames_served: usize,
    /// Frames *this session* decoded (its cache misses, GOP walks
    /// included). Frames served from another session's decode count as 0.
    pub frames_decoded: usize,
    /// Segment switches performed.
    pub switches: usize,
    /// GOPs currently resident in the (possibly shared) cache.
    pub cached_gops: usize,
}

/// The segment-looping video player.
#[derive(Debug)]
pub struct PlaybackController {
    video: Arc<EncodedVideo>,
    video_id: VideoId,
    segments: SegmentTable,
    decoder: Decoder,
    cache: Arc<GopCache>,
    current: SegmentId,
    /// Position within the current segment, in frames.
    cursor: usize,
    /// Microseconds of accumulated time not yet worth a whole frame.
    residual_us: u64,
    stats: PlaybackStats,
}

impl PlaybackController {
    /// Creates a standalone player positioned at the start of `initial`,
    /// with its own private decoded-GOP cache.
    ///
    /// # Errors
    /// Fails when the segment table does not match the video length or
    /// `initial` is not in the table.
    pub fn new(
        video: EncodedVideo,
        segments: SegmentTable,
        initial: SegmentId,
    ) -> Result<PlaybackController> {
        Self::shared(
            Arc::new(video),
            segments,
            initial,
            Arc::new(GopCache::new(PRIVATE_CACHE_GOPS)),
        )
    }

    /// Creates a player whose decoded GOPs live in `cache`, which may be
    /// shared with any number of other players of any videos (entries
    /// are keyed by content fingerprint, so distinct streams coexist).
    pub fn shared(
        video: Arc<EncodedVideo>,
        segments: SegmentTable,
        initial: SegmentId,
        cache: Arc<GopCache>,
    ) -> Result<PlaybackController> {
        if segments.frame_count() != video.len() {
            return Err(MediaError::InvalidSegment(format!(
                "segment table covers {} frames but video has {}",
                segments.frame_count(),
                video.len()
            ))
            .into());
        }
        segments
            .get(initial)
            .ok_or_else(|| MediaError::InvalidSegment(format!("unknown segment {initial}")))?;
        let video_id = VideoId::of(&video);
        Ok(PlaybackController {
            video,
            video_id,
            segments,
            decoder: Decoder::default(),
            cache,
            current: initial,
            cursor: 0,
            residual_us: 0,
            stats: PlaybackStats::default(),
        })
    }

    /// The segment currently playing.
    pub fn current_segment(&self) -> &Segment {
        self.segments.get(self.current).expect("current id stays valid")
    }

    /// Playback-cost counters so far.
    pub fn stats(&self) -> PlaybackStats {
        let mut s = self.stats;
        s.cached_gops = self.cache.stats().resident_gops;
        s
    }

    /// The decoded-GOP cache this player uses (shared or private).
    pub fn cache(&self) -> &Arc<GopCache> {
        &self.cache
    }

    /// The encoded video being played.
    pub fn video(&self) -> &EncodedVideo {
        &self.video
    }

    /// The absolute source-frame index currently displayed.
    pub fn absolute_frame(&self) -> usize {
        let seg = self.current_segment();
        seg.start + self.cursor
    }

    /// Switches to another segment (a scenario change), rewinding to its
    /// first frame. Returns the number of frames decoded to show it
    /// (0 when the target's GOP was already resident).
    pub fn switch_segment(&mut self, id: SegmentId) -> Result<usize> {
        self.segments
            .get(id)
            .ok_or_else(|| MediaError::InvalidSegment(format!("unknown segment {id}")))?;
        self.current = id;
        self.cursor = 0;
        self.residual_us = 0;
        self.stats.switches += 1;
        let before = self.stats.frames_decoded;
        self.current_frame()?;
        Ok(self.stats.frames_decoded - before)
    }

    /// Advances playback by `ms` of wall time, looping within the current
    /// segment. Returns how many frames the cursor moved.
    pub fn advance_ms(&mut self, ms: u64) -> usize {
        let frame_us = self
            .video
            .rate
            .frame_duration()
            .as_micros()
            .max(1);
        let total_us = self.residual_us + ms * 1000;
        let steps = (total_us / frame_us) as usize;
        self.residual_us = total_us % frame_us;
        let len = self.current_segment().len().max(1);
        self.cursor = (self.cursor + steps) % len;
        steps
    }

    /// Serves the frame under the cursor, from the cache when its GOP is
    /// resident, decoding the GOP (once, for everyone sharing the cache)
    /// when it is not.
    pub fn current_frame(&mut self) -> Result<Frame> {
        let abs = self.absolute_frame();
        let key = self.video.keyframe_before(abs)?;
        let mut decoded = 0usize;
        let gop = self.cache.get_or_decode(self.video_id, key, || {
            let frames = self.decoder.decode_gop_at(&self.video, key)?;
            decoded = frames.len();
            Ok(frames)
        })?;
        self.stats.frames_decoded += decoded;
        self.stats.frames_served += 1;
        Ok(gop[abs - key].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgbl_media::codec::{EncodeConfig, Encoder};
    use vgbl_media::color::Rgb;
    use vgbl_media::synth::{FootageSpec, ShotSpec};
    use vgbl_media::timeline::FrameRate;

    /// 3 segments of 10 frames each (30 frames total), GOP 5.
    fn encoded_video() -> (EncodedVideo, SegmentTable) {
        let footage = FootageSpec {
            width: 32,
            height: 24,
            rate: FrameRate::FPS30,
            shots: vec![
                ShotSpec::plain(10, Rgb::new(200, 40, 40)),
                ShotSpec::plain(10, Rgb::new(40, 200, 40)),
                ShotSpec::plain(10, Rgb::new(40, 40, 200)),
            ],
            noise_seed: 9,
        }
        .render()
        .unwrap();
        let video = Encoder::new(EncodeConfig { gop: 5, ..Default::default() })
            .encode(&footage.frames, footage.rate)
            .unwrap();
        let table = SegmentTable::from_cuts(30, &[10, 20]).unwrap();
        (video, table)
    }

    fn player() -> PlaybackController {
        let (video, table) = encoded_video();
        PlaybackController::new(video, table, SegmentId(0)).unwrap()
    }

    #[test]
    fn construction_validates() {
        let mut p = player();
        assert_eq!(p.current_segment().id, SegmentId(0));
        assert_eq!(p.absolute_frame(), 0);
        assert!(p.current_frame().is_ok());
        // Mismatched table rejected.
        let video2 = p.video().clone();
        let bad_table = SegmentTable::from_cuts(29, &[10]).unwrap();
        assert!(PlaybackController::new(video2, bad_table, SegmentId(0)).is_err());
    }

    #[test]
    fn advance_loops_within_segment() {
        let mut p = player();
        // 30fps → one frame every 33.333 ms. 100 ms ≈ 3 frames.
        let moved = p.advance_ms(100);
        assert_eq!(moved, 3);
        assert_eq!(p.absolute_frame(), 3);
        // 400 ms more ≈ 12 frames → wraps inside the 10-frame segment.
        p.advance_ms(400);
        assert!(p.absolute_frame() < 10);
        // Never leaves the segment.
        for _ in 0..50 {
            p.advance_ms(77);
            assert!(p.current_segment().contains(p.absolute_frame()));
        }
    }

    #[test]
    fn residual_time_accumulates() {
        let mut p = player();
        // 20 ms < one frame: no step, but residual carries.
        assert_eq!(p.advance_ms(20), 0);
        assert_eq!(p.advance_ms(20), 1); // 40 ms total → 1 frame
    }

    #[test]
    fn switch_segment_seeks_and_counts() {
        let mut p = player();
        let decoded = p.switch_segment(SegmentId(2)).unwrap();
        // Segment 2 starts at frame 20, which is a keyframe (GOP 5): one
        // GOP decode of 5 frames.
        assert_eq!(decoded, 5);
        assert_eq!(p.absolute_frame(), 20);
        let f = p.current_frame().unwrap();
        // Blue-ish shot.
        let c = f.get(1, 1).unwrap();
        assert!(c.b > c.r && c.b > c.g);
        assert!(p.switch_segment(SegmentId(9)).is_err());
        assert_eq!(p.stats().switches, 1);
    }

    #[test]
    fn cache_avoids_redecoding_in_loops() {
        let mut p = player();
        p.current_frame().unwrap();
        let decoded_after_first = p.stats().frames_decoded;
        // Loop through the same segment repeatedly.
        for _ in 0..30 {
            p.advance_ms(33);
            p.current_frame().unwrap();
        }
        let decoded_after_loop = p.stats().frames_decoded;
        // The 10-frame segment spans 2 GOPs (10 frames); both decode once.
        assert!(decoded_after_loop <= decoded_after_first + 10);
        assert!(p.stats().frames_served >= 30);
        assert_eq!(p.stats().cached_gops, 2);
    }

    #[test]
    fn frames_match_direct_decode() {
        let mut p = player();
        let direct = Decoder::default().decode_all(p.video()).unwrap();
        for target in [0usize, 3, 7] {
            p.cursor = target;
            let f = p.current_frame().unwrap();
            assert_eq!(f, direct.frames[target], "frame {target}");
        }
        p.switch_segment(SegmentId(1)).unwrap();
        let f = p.current_frame().unwrap();
        assert_eq!(f, direct.frames[10]);
    }

    #[test]
    fn shared_cache_deduplicates_across_players() {
        let (video, table) = encoded_video();
        let video = Arc::new(video);
        let cache = Arc::new(GopCache::new(16));
        let mut players: Vec<PlaybackController> = (0..4)
            .map(|_| {
                PlaybackController::shared(
                    video.clone(),
                    table.clone(),
                    SegmentId(0),
                    cache.clone(),
                )
                .unwrap()
            })
            .collect();
        // Every player walks every segment.
        for p in &mut players {
            for seg in [0u32, 1, 2] {
                p.switch_segment(SegmentId(seg)).unwrap();
                for _ in 0..12 {
                    p.advance_ms(33);
                    p.current_frame().unwrap();
                }
            }
        }
        // 6 GOPs of 5 frames: decoded once in total, not once per player.
        let total_decoded: usize = players.iter().map(|p| p.stats().frames_decoded).sum();
        assert_eq!(total_decoded, 30, "each GOP decodes exactly once");
        let s = cache.stats();
        assert_eq!(s.misses, 6);
        assert!(s.hits > 100, "hits {}", s.hits);
    }

    #[test]
    fn disabled_shared_cache_decodes_every_lookup() {
        let (video, table) = encoded_video();
        let mut p = PlaybackController::shared(
            Arc::new(video),
            table,
            SegmentId(0),
            Arc::new(GopCache::new(0)),
        )
        .unwrap();
        let f1 = p.current_frame().unwrap();
        let f2 = p.current_frame().unwrap();
        assert_eq!(f1, f2);
        // Two lookups, two full GOP decodes.
        assert_eq!(p.stats().frames_decoded, 10);
        assert_eq!(p.stats().cached_gops, 0);
    }
}
