//! Sharded fleet supervisor: consistent-hash routing, shard failure
//! domains, SLO-driven migration, and autoscaling.
//!
//! One [`crate::supervisor`] instance is a single failure domain: a
//! crash mid-stampede takes every queued and in-flight session with it.
//! This module shards the same admission machinery behind a seeded
//! consistent-hash router so faults stay contained:
//!
//! * [`FleetRouter`] — a consistent-hash ring with virtual nodes.
//!   Session ids are the stable routing key, so adding or removing a
//!   shard remaps only ~K/N keys and every other session stays put.
//! * Shard failure domains — each shard owns its queue, slots,
//!   degradation ladder, warm-fetch breaker, and [`FaultPlan`]. Seeded
//!   shard-level faults ([`ShardFaultKind::Crash`], `Stall`,
//!   `DegradedLink`) hit exactly one shard.
//! * SLO-driven migration — when a shard's burn rate (the same
//!   google-sre burn windows [`crate::supervisor`] alerts on) stays
//!   over [`MigrationConfig::burn_threshold`], the controller drains
//!   it: live sessions checkpoint at their next segment boundary via
//!   [`GameSession::checkpoint`] and resume on the re-routed shard,
//!   byte-identically — the handoff is digest-checked and a shadow
//!   [`resume_session`] replay predicts the exact post-migration log
//!   tail.
//! * Autoscaling — fleet-wide burn over
//!   [`AutoscaleConfig::up_burn`] adds a shard; sustained calm retires
//!   the emptiest one. Hysteresis (streaks + cooldown) keeps the shard
//!   count from flapping.
//!
//! Everything runs on the crate's simulated millisecond clock as a
//! deterministic discrete-event simulation: same seeds, same arrivals,
//! same faults → a byte-identical [`FleetReport`] (it is `PartialEq`
//! for exactly that assertion).

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use vgbl_obs::{
    us_from_ms, AlertTimeline, BudgetLedger, Counter, Gauge, Histogram, JourneyEventKind,
    JourneyRecorder, Obs, SessionJourney, SpanRecorder, TerminalState, TraceCtx,
};
use vgbl_scene::SceneGraph;
use vgbl_stream::{BreakerStats, CircuitBreaker, FaultPlan};

use crate::analytics::{LatencySummary, LogEvent, SessionLog};
use crate::engine::{GameSession, SessionConfig};
use crate::error::RuntimeError;
use crate::executor::EventQueue;
use crate::save::SaveGame;
use crate::server::{panic_reason, SessionOutcome};
use crate::supervisor::{
    drive, mix, persist_checkpoint, restart_backoff, resume_session, stitch, warm_session,
    ArrivalPlan, LadderPolicy, ServiceMode, SupSlo, SupervisedBotFactory, SupervisorConfig,
};
use crate::Result;
use vgbl_store::{CheckpointRecord, CorruptKind, DurableStore, ScrubReport, StoreConfig, StoreStats};

/// Domain-separates ring-point hashing from every other splitmix user.
const SALT_RING: u64 = 0x9000_0009;
/// Domain-separates routing-key hashing from ring-point hashing.
const SALT_KEY: u64 = 0xA000_000A;
/// Domain-separates synthetic per-session segment counts.
const SALT_SYNTH: u64 = 0xB000_000B;

fn invalid(msg: impl Into<String>) -> RuntimeError {
    RuntimeError::InvalidSupervisor(msg.into())
}

// ---------------------------------------------------------------------------
// Consistent-hash router
// ---------------------------------------------------------------------------

/// A seeded consistent-hash ring over shard ids with virtual nodes.
///
/// Each shard contributes `vnodes` points to a `u64` ring; a key routes
/// to the shard owning the first point at or after its hash (wrapping).
/// The ring is a pure function of `(seed, vnodes, shard ids)`, so two
/// routers built the same way agree on every key — and removing a shard
/// only re-homes the keys that shard owned.
#[derive(Debug, Clone)]
pub struct FleetRouter {
    seed: u64,
    vnodes: u32,
    shards: Vec<u32>,
    ring: Vec<(u64, u32)>,
}

impl FleetRouter {
    /// A router over shards `0..n_shards` with `vnodes` points each.
    pub fn new(seed: u64, vnodes: u32, n_shards: u32) -> Result<FleetRouter> {
        if vnodes == 0 {
            return Err(invalid("router vnodes must be >= 1"));
        }
        if n_shards == 0 {
            return Err(invalid("router needs at least one shard"));
        }
        let mut r = FleetRouter { seed, vnodes, shards: (0..n_shards).collect(), ring: Vec::new() };
        r.rebuild();
        Ok(r)
    }

    fn point(&self, shard: u32, vnode: u32) -> u64 {
        mix(self.seed ^ SALT_RING ^ mix((u64::from(shard) << 32) | u64::from(vnode)))
    }

    fn rebuild(&mut self) {
        self.ring.clear();
        for &s in &self.shards {
            for v in 0..self.vnodes {
                self.ring.push((self.point(s, v), s));
            }
        }
        self.ring.sort_unstable();
    }

    /// Adds a shard's vnodes to the ring (no-op if already present).
    pub fn add_shard(&mut self, shard: u32) {
        if !self.shards.contains(&shard) {
            self.shards.push(shard);
            self.rebuild();
        }
    }

    /// Removes a shard's vnodes from the ring (no-op if absent).
    pub fn remove_shard(&mut self, shard: u32) {
        let before = self.shards.len();
        self.shards.retain(|&s| s != shard);
        if self.shards.len() != before {
            self.rebuild();
        }
    }

    /// The shard owning `key`, or `None` if the ring is empty.
    pub fn route(&self, key: u64) -> Option<u32> {
        if self.ring.is_empty() {
            return None;
        }
        let h = mix(self.seed ^ SALT_KEY ^ mix(key));
        let i = self.ring.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.ring[if i == self.ring.len() { 0 } else { i }];
        Some(shard)
    }

    /// Number of shards currently on the ring.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when no shard is routable.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard ids currently on the ring, in insertion order.
    pub fn shard_ids(&self) -> &[u32] {
        &self.shards
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// What goes wrong on one shard, and when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShardFaultKind {
    /// The shard dies: queued sessions re-route, in-flight sessions
    /// migrate from their last committed checkpoint (or are shed, and
    /// accounted, if they never reached one).
    Crash,
    /// The shard freezes for `duration_ms`: in-flight segments finish
    /// late, queued sessions wait (and may blow the queue deadline).
    Stall {
        /// How long the shard is frozen, simulated ms.
        duration_ms: f64,
    },
    /// The shard's chunk-fetch path degrades to this loss rate — its
    /// warm-fetch breaker absorbs the damage; other shards never see it.
    DegradedLink {
        /// New chunk loss probability in `[0, 1)`.
        loss: f64,
    },
}

/// A scheduled shard-level fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardFault {
    /// When the fault fires, simulated ms.
    pub at_ms: f64,
    /// Which shard it hits (faults for unknown/dead shards are ignored).
    pub shard: u32,
    /// What happens.
    pub kind: ShardFaultKind,
}

/// When the controller drains a burning shard, and how migrations are
/// checked.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationConfig {
    /// Drain a shard once its worst burn rate holds at or above this.
    pub burn_threshold: f64,
    /// ...for this many consecutive control ticks.
    pub sustain_ticks: u32,
    /// Hold SLO drains while fleet-wide occupancy — queued plus
    /// in-flight sessions over the routable shards' total slot and
    /// queue capacity — is at or above this fraction. Under sustained
    /// overload every shard burns at once; draining one only reroutes
    /// its queue onto equally-burning peers, and each drain leaves the
    /// survivors worse until the fleet sits at the router floor.
    /// A drain helps exactly when the others have headroom to absorb
    /// it. `f64::INFINITY` disables the guard (the legacy policy).
    pub max_drain_occupancy: f64,
    /// Shadow-replay each migrated session from its checkpoint and
    /// compare the predicted log tail against what the destination
    /// shard actually produced ([`MigrationRecord::verified`]).
    pub verify_replay: bool,
}

impl Default for MigrationConfig {
    fn default() -> MigrationConfig {
        MigrationConfig {
            burn_threshold: 4.0,
            sustain_ticks: 2,
            max_drain_occupancy: 0.75,
            verify_replay: true,
        }
    }
}

/// Hysteresis bounds for elastic shard count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// Add a shard when fleet-wide burn holds at or above this.
    pub up_burn: f64,
    /// Retire a shard when fleet-wide burn holds at or below this.
    pub down_burn: f64,
    /// Consecutive control ticks a signal must hold before acting.
    pub sustain_ticks: u32,
    /// Minimum gap between scaling actions, simulated ms.
    pub cooldown_ms: f64,
    /// Never retire below this many routable shards.
    pub min_shards: usize,
    /// Never grow beyond this many routable shards.
    pub max_shards: usize,
}

impl Default for AutoscaleConfig {
    fn default() -> AutoscaleConfig {
        AutoscaleConfig {
            up_burn: 4.0,
            down_burn: 0.5,
            sustain_ticks: 3,
            cooldown_ms: 2_000.0,
            min_shards: 1,
            max_shards: 16,
        }
    }
}

/// Fleet topology and policy around a per-shard [`SupervisorConfig`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Initial shard count (ids `0..shards`).
    pub shards: u32,
    /// Virtual nodes per shard on the router ring.
    pub vnodes: u32,
    /// Seed for ring points and key hashing.
    pub router_seed: u64,
    /// Every shard runs this supervisor configuration: queue capacity,
    /// slots, degradation ladder, checkpoint cadence, breaker.
    pub shard: SupervisorConfig,
    /// Scheduled shard-level faults.
    pub faults: Vec<ShardFault>,
    /// Controller cadence (burn checks, drains, autoscaling).
    pub control_interval_ms: f64,
    /// Drain policy.
    pub migration: MigrationConfig,
    /// Elastic shard count; `None` pins the fleet at `shards`.
    pub autoscale: Option<AutoscaleConfig>,
    /// Fleet-wide durable checkpoint store. `None` keeps committed
    /// checkpoints in process memory only — a whole-fleet power loss is
    /// then unrecoverable (the pre-PR-9 behaviour).
    pub store: Option<StoreConfig>,
    /// Scheduled whole-fleet power losses, simulated ms: at each, every
    /// shard loses all in-memory state (queues, slots, uncommitted
    /// work) and the fleet cold-restarts from the durable store.
    pub power_loss_at_ms: Vec<f64>,
    /// Record per-session causal journeys ([`FleetReport::journeys`]).
    /// Every session carries a [`TraceCtx`] minted as a pure hash of
    /// `(router_seed, session, generation)` across every boundary it
    /// crosses — admission, checkpoint, migration handoff, crash,
    /// power loss, cold resume. Off by default: journey-off runs pay a
    /// single branch per would-be event.
    pub journeys: bool,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            shards: 4,
            vnodes: 16,
            router_seed: 0xF1EE_7000,
            shard: SupervisorConfig::default(),
            faults: Vec::new(),
            control_interval_ms: 250.0,
            migration: MigrationConfig::default(),
            autoscale: None,
            store: None,
            power_loss_at_ms: Vec::new(),
            journeys: false,
        }
    }
}

impl FleetConfig {
    pub(crate) fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(invalid("fleet needs at least one shard"));
        }
        if self.vnodes == 0 {
            return Err(invalid("vnodes must be >= 1"));
        }
        self.shard.validate()?;
        if !self.control_interval_ms.is_finite() || self.control_interval_ms <= 0.0 {
            return Err(invalid("control_interval_ms must be positive and finite"));
        }
        if !self.migration.burn_threshold.is_finite() || self.migration.burn_threshold <= 0.0 {
            return Err(invalid("migration burn_threshold must be positive and finite"));
        }
        if self.migration.sustain_ticks == 0 {
            return Err(invalid("migration sustain_ticks must be >= 1"));
        }
        let occ = self.migration.max_drain_occupancy;
        if occ.is_nan() || occ <= 0.0 {
            return Err(invalid(
                "migration max_drain_occupancy must be positive \
                 (f64::INFINITY disables the overload guard)",
            ));
        }
        for &t in &self.power_loss_at_ms {
            if !t.is_finite() || t < 0.0 {
                return Err(invalid("power_loss_at_ms must be non-negative and finite"));
            }
        }
        if self.store.is_none() && !self.power_loss_at_ms.is_empty() {
            return Err(invalid(
                "power losses without a durable store would lose every session; \
                 set FleetConfig::store",
            ));
        }
        for f in &self.faults {
            if !f.at_ms.is_finite() || f.at_ms < 0.0 {
                return Err(invalid("fault at_ms must be non-negative and finite"));
            }
            match f.kind {
                ShardFaultKind::Stall { duration_ms } => {
                    if !duration_ms.is_finite() || duration_ms <= 0.0 {
                        return Err(invalid("stall duration_ms must be positive and finite"));
                    }
                }
                ShardFaultKind::DegradedLink { loss } => {
                    // Dry-run the swap so the fault injector can unwrap it.
                    self.shard
                        .warm_faults
                        .with_loss(loss)
                        .map_err(|e| invalid(format!("degraded-link loss: {e}")))?;
                }
                ShardFaultKind::Crash => {}
            }
        }
        if let Some(a) = &self.autoscale {
            if a.min_shards == 0 {
                return Err(invalid("autoscale min_shards must be >= 1"));
            }
            if a.max_shards < a.min_shards {
                return Err(invalid("autoscale max_shards must be >= min_shards"));
            }
            if a.sustain_ticks == 0 {
                return Err(invalid("autoscale sustain_ticks must be >= 1"));
            }
            if !a.cooldown_ms.is_finite() || a.cooldown_ms < 0.0 {
                return Err(invalid("autoscale cooldown_ms must be non-negative and finite"));
            }
            if !(a.up_burn.is_finite() && a.down_burn.is_finite() && a.down_burn < a.up_burn) {
                return Err(invalid("autoscale needs down_burn < up_burn, both finite"));
            }
        }
        Ok(())
    }
}

/// What each session actually runs.
pub enum FleetWorkload<'a> {
    /// Real [`GameSession`]s stepped by bots — checkpoints, restores,
    /// and migration replay verification are all live.
    Engine {
        /// The shared scene graph.
        graph: Arc<SceneGraph>,
        /// Per-session engine configuration.
        config: SessionConfig,
        /// `(session id, incarnation) -> bot`; incarnation bumps on
        /// every restart *and* every migration hop.
        factory: &'a SupervisedBotFactory,
    },
    /// A pure cost model — sessions are `1..2*mean_segments` seeded
    /// segments of `checkpoint_every` steps each. Scales the fleet's
    /// control plane to millions of arrivals where real engine state
    /// would dominate the run.
    Synthetic {
        /// Average session length in segments (>= 1).
        mean_segments: u32,
    },
}

// ---------------------------------------------------------------------------
// Records and reports
// ---------------------------------------------------------------------------

/// Why a session left its shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationReason {
    /// The shard crashed under it.
    Crash,
    /// The controller drained the shard on sustained SLO burn.
    SloDrain,
    /// The autoscaler retired the shard.
    ScaleDown,
}

/// One session re-homed from a draining or dead shard.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationRecord {
    /// Session id.
    pub session: usize,
    /// Origin shard.
    pub from: u32,
    /// Destination shard.
    pub to: u32,
    /// When the checkpoint handed off, simulated ms.
    pub at_ms: f64,
    /// The decision step the destination resumed from.
    pub resumed_at_step: usize,
    /// Why.
    pub reason: MigrationReason,
    /// FNV-1a digest of the checkpoint's canonical text at handoff.
    pub checkpoint_digest: u64,
    /// `Some(true)` when the destination's restored checkpoint
    /// re-digested identically (engine workloads; `None` when the
    /// session was shed before the destination could restore it).
    pub handoff_ok: Option<bool>,
    /// `Some(eq)` when a shadow replay's predicted log tail was compared
    /// against the destination's actual tail; `None` when verification
    /// was off, superseded by a later restart/hop, or not applicable.
    pub verified: Option<bool>,
    /// The session's causal trace id, carried through the handoff.
    pub trace_id: u64,
    /// The span id of the generation the destination resumes as.
    pub span_id: u64,
}

/// One autoscaler action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleEvent {
    /// When, simulated ms.
    pub at_ms: f64,
    /// `true` = shard added, `false` = shard retired.
    pub up: bool,
    /// The shard added or retired.
    pub shard: u32,
    /// Routable shards after the action.
    pub shards_after: usize,
    /// Fleet-wide worst burn rate that triggered it.
    pub burn: f64,
}

/// One session whose durable checkpoint could not be recovered after a
/// power loss: the exact corrupt record it is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LostSession {
    /// Session id.
    pub session: usize,
    /// The last *acknowledged* WAL sequence number for this session.
    pub seq: u64,
    /// What destroyed the record (torn write vs bit rot).
    pub kind: CorruptKind,
}

/// Everything the durable store did and suffered across one fleet run.
/// `PartialEq` so chaos reruns can assert byte-identical storage
/// behaviour wholesale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityReport {
    /// The store's lifetime counters (appends, acked/lost flushes,
    /// snapshots, power losses, staged records destroyed).
    pub store: StoreStats,
    /// One scrub report per power loss, in order.
    pub scrubs: Vec<ScrubReport>,
    /// Sessions resumed from the store across all cold restarts.
    pub cold_resumed: usize,
    /// Cold resumes that were served a stale (older intact) version.
    pub stale_resumes: usize,
    /// Sessions shed because *every* durable copy of their checkpoint
    /// was provably corrupt — each attributed to a specific record.
    /// This is exactly the report's `lost_durable` count.
    pub lost: Vec<LostSession>,
}

/// Per-shard accounting. Terminal outcomes (completed/failed/...) are
/// attributed to the shard the session *finished* on; `restarts`
/// likewise carries the session's cumulative restarts at its terminal
/// shard, so shard rows sum to the fleet totals.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Shard id.
    pub shard: u32,
    /// Arrivals the router sent here (including migrations in).
    pub routed: usize,
    /// Sessions dispatched into a slot here.
    pub admitted: usize,
    /// Sessions shed here (queue full, deadline, crash-before-checkpoint).
    pub shed: usize,
    /// Sessions that finished cleanly here with zero restarts and hops.
    pub completed: usize,
    /// Sessions that finished here after >= 1 restart or migration hop.
    pub recovered: usize,
    /// Sessions that failed terminally here.
    pub failed: usize,
    /// Sessions that exhausted the restart budget here.
    pub gave_up: usize,
    /// Admissions served below full service (warm skipped).
    pub degraded: usize,
    /// Sessions resumed here from another shard's checkpoint.
    pub migrated_in: usize,
    /// Sessions checkpointed here and handed away.
    pub migrated_out: usize,
    /// Cumulative restarts of sessions that finished here.
    pub restarts: u64,
    /// Warm fetches attempted here.
    pub warm_attempted: u64,
    /// Warm fetches skipped by an open breaker here.
    pub warm_skipped: u64,
    /// High-water queue depth.
    pub peak_queue_depth: usize,
    /// The shard died to a [`ShardFaultKind::Crash`].
    pub crashed: bool,
    /// The shard was drained off the ring (SLO drain or scale-down).
    pub retired: bool,
    /// This shard's warm-fetch breaker counters.
    pub breaker: BreakerStats,
    /// This shard's own burn-rate alert timeline.
    pub alerts: AlertTimeline,
}

/// Everything one fleet run produced. `PartialEq` so reruns can assert
/// byte-identical behaviour wholesale.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Sessions offered.
    pub sessions: usize,
    /// Finished cleanly, zero restarts and hops.
    pub completed: usize,
    /// Finished after restarts and/or migration hops.
    pub recovered: usize,
    /// Failed terminally.
    pub failed: usize,
    /// Exhausted the restart budget.
    pub gave_up: usize,
    /// Shed — every one carries a reason in `outcomes`; nothing is
    /// silently lost.
    pub shed: usize,
    /// Of `recovered`: sessions that finished after resuming from the
    /// durable store across a whole-fleet power loss.
    pub recovered_cold: usize,
    /// Of `shed`: sessions lost because their acknowledged durable
    /// checkpoint was provably corrupt at cold restart — each one
    /// attributed to a record in [`DurabilityReport::lost`].
    pub lost_durable: usize,
    /// Admissions served below full service.
    pub degraded: usize,
    /// Total restarts across the fleet.
    pub restarts: u64,
    /// SLO drains the overload guard held back
    /// ([`MigrationConfig::max_drain_occupancy`]), one per deferring
    /// shard per control tick.
    pub drains_deferred: u64,
    /// Every migration, in order, with handoff and replay verdicts.
    pub migrations: Vec<MigrationRecord>,
    /// Every autoscaler action, in order.
    pub scale_events: Vec<ScaleEvent>,
    /// Per-shard rows, including crashed and retired shards.
    pub shards: Vec<ShardReport>,
    /// Shards still on the ring at the end.
    pub routable_shards: usize,
    /// When the last session finished, simulated ms.
    pub makespan_ms: f64,
    /// Queue-wait distribution across all shards.
    pub queue_wait: LatencySummary,
    /// Per-session outcomes, index = session id.
    pub outcomes: Vec<SessionOutcome>,
    /// Fleet-wide breaker counters (sum over shards).
    pub breaker: BreakerStats,
    /// Fleet-level burn-rate alert timeline.
    pub alerts: AlertTimeline,
    /// Fleet-level error-budget ledgers (shed-rate first, then wait).
    pub ledgers: Vec<BudgetLedger>,
    /// All shard-level alerts merged into one ordered timeline.
    pub shard_alerts: AlertTimeline,
    /// Durable-store audit when [`FleetConfig::store`] was set.
    pub durability: Option<DurabilityReport>,
    /// Per-session causal journeys, stitched across every shard each
    /// session touched, when [`FleetConfig::journeys`] was on (empty
    /// otherwise). Sorted by session id; byte-identical across reruns.
    pub journeys: Vec<SessionJourney>,
}

impl FleetReport {
    /// Sessions that got service (offered minus shed).
    pub fn admitted(&self) -> usize {
        self.sessions - self.shed
    }

    /// Every offered session has exactly one terminal account.
    pub fn accounts_exactly(&self) -> bool {
        self.completed + self.recovered + self.failed + self.gave_up + self.shed == self.sessions
    }

    /// `(completed, failed, shed, recovered, gave_up)` tallied from
    /// `outcomes` — the ground truth the counter fields must match.
    pub fn outcome_counts(&self) -> (usize, usize, usize, usize, usize) {
        let mut c = (0usize, 0usize, 0usize, 0usize, 0usize);
        for o in &self.outcomes {
            match o {
                SessionOutcome::Completed => c.0 += 1,
                SessionOutcome::Failed { .. } => c.1 += 1,
                SessionOutcome::Shed { .. } => c.2 += 1,
                SessionOutcome::Recovered { .. } => c.3 += 1,
                SessionOutcome::GaveUp { .. } => c.4 += 1,
            }
        }
        c
    }

    pub(crate) fn debug_assert_consistent(&self) {
        if !cfg!(debug_assertions) {
            return;
        }
        debug_assert!(self.accounts_exactly(), "fleet accounting identity broken: {self:?}");
        debug_assert_eq!(self.outcomes.len(), self.sessions, "one outcome per offered session");
        let (completed, failed, shed, recovered, gave_up) = self.outcome_counts();
        debug_assert_eq!(self.completed, completed);
        debug_assert_eq!(self.failed, failed);
        debug_assert_eq!(self.shed, shed);
        debug_assert_eq!(self.recovered, recovered);
        debug_assert_eq!(self.gave_up, gave_up);
        for f in ["completed", "recovered", "failed", "gave_up", "degraded"] {
            let (fleet, rows) = match f {
                "completed" => (self.completed, self.shards.iter().map(|s| s.completed).sum()),
                "recovered" => (self.recovered, self.shards.iter().map(|s| s.recovered).sum()),
                "failed" => (self.failed, self.shards.iter().map(|s| s.failed).sum()),
                "gave_up" => (self.gave_up, self.shards.iter().map(|s| s.gave_up).sum()),
                _ => (self.degraded, self.shards.iter().map(|s| s.degraded).sum()),
            };
            debug_assert_eq!(fleet, rows, "shard rows must sum to fleet {f}");
        }
        let shard_shed: usize = self.shards.iter().map(|s| s.shed).sum();
        debug_assert!(shard_shed <= self.shed, "shard sheds cannot exceed fleet sheds");
        debug_assert_eq!(
            self.restarts,
            self.shards.iter().map(|s| s.restarts).sum::<u64>(),
            "shard restarts must sum to fleet restarts"
        );
        if let Some(l) = self.ledgers.first() {
            debug_assert_eq!(l.bad as usize, self.shed, "shed ledger must count every shed");
        }
        debug_assert!(
            self.recovered_cold <= self.recovered,
            "cold recoveries are a subset of recoveries"
        );
        debug_assert!(self.lost_durable <= self.shed, "durable losses are a subset of sheds");
        match &self.durability {
            Some(d) => debug_assert_eq!(
                self.lost_durable,
                d.lost.len(),
                "every durable loss must be attributed to a corrupt record"
            ),
            None => {
                debug_assert_eq!(self.lost_durable, 0, "no store, no durable losses");
                debug_assert_eq!(self.recovered_cold, 0, "no store, no cold recoveries");
            }
        }
        if !self.journeys.is_empty() {
            debug_assert_eq!(
                self.journeys.len(),
                self.sessions,
                "journeys on: every offered session stitches to exactly one journey"
            );
            for (j, o) in self.journeys.iter().zip(&self.outcomes) {
                let want = match o {
                    SessionOutcome::Completed => TerminalState::Completed,
                    SessionOutcome::Recovered { .. } => TerminalState::Recovered,
                    SessionOutcome::Failed { .. } => TerminalState::Failed,
                    SessionOutcome::Shed { .. } => TerminalState::Shed,
                    SessionOutcome::GaveUp { .. } => TerminalState::GaveUp,
                };
                debug_assert_eq!(
                    j.terminal, want,
                    "journey terminal must agree with session {} outcome",
                    j.session
                );
                debug_assert!(j.chain_ok(), "session {} journey chain broken", j.session);
            }
        }
        let migrated_out: usize = self.shards.iter().map(|s| s.migrated_out).sum();
        debug_assert!(self.migrations.len() <= migrated_out, "records only for re-homed sessions");
        debug_assert!(
            !self.migrations.iter().any(|m| m.verified == Some(false)),
            "a migrated session diverged from its checkpoint replay: {:?}",
            self.migrations.iter().find(|m| m.verified == Some(false))
        );
    }
}

// ---------------------------------------------------------------------------
// Internal simulation
// ---------------------------------------------------------------------------

/// Event kinds on the discrete-event queue. The queue itself is the
/// executor's [`EventQueue`], whose `(t_us, seq)` ordering fires
/// equal-time events in creation order, deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    /// A slot's current segment reaches its boundary.
    Seg { shard: u32, slot: usize, token: u64 },
    /// A scheduled fault (index into [`FleetConfig::faults`]) fires.
    Fault(usize),
    /// A whole-fleet power loss (index into
    /// [`FleetConfig::power_loss_at_ms`]) fires.
    PowerLoss(usize),
    /// A controller tick.
    Control,
}

/// A committed segment boundary — everything needed to resume the
/// session elsewhere (or after a crash) bit-identically.
#[derive(Debug, Clone)]
struct Commit {
    /// Decision step at the boundary.
    step: usize,
    /// Segments done (synthetic workloads).
    synth_done: u32,
    /// Digest of the checkpoint text (synthetic: a seeded stand-in).
    digest: u64,
    /// The checkpoint itself (engine workloads).
    save: Option<SaveGame>,
    /// Full log up to the boundary, prefix-stitched across incarnations.
    log: Option<SessionLog>,
}

/// Live engine state for one in-flight session incarnation.
struct EngineRun {
    session: GameSession,
    bot: Box<dyn crate::bot::Bot>,
    steps: usize,
    /// Log of prior incarnations; `session.log()` holds only the tail.
    log_prefix: Option<SessionLog>,
}

/// One in-flight session on a shard slot.
struct Running {
    id: usize,
    mode: ServiceMode,
    /// Incarnation counter fed to the bot factory; bumps on every
    /// restart and every migration hop.
    generation: u32,
    restarts: u32,
    /// Migration hops so far.
    hops: u32,
    /// Step the latest resume started from (0 for never-migrated).
    resumed_at_step: usize,
    was_degraded: bool,
    /// The session was rebuilt from the durable store after a
    /// whole-fleet power loss (its in-memory lineage was destroyed).
    cold: bool,
    committed: Option<Commit>,
    engine: Option<EngineRun>,
    synth_done: u32,
    synth_total: u32,
}

/// How a segment ended.
#[derive(Debug, Clone)]
enum SegEnd {
    /// Hit the checkpoint boundary; session continues.
    Boundary,
    /// Session finished cleanly.
    Finished,
    /// Terminal engine error.
    Failed { reason: String },
    /// Restart budget exhausted.
    GaveUp { restarts: u32, reason: String },
}

/// Resume payload carried by a migrated session through the
/// destination's queue.
struct ResumeState {
    committed: Commit,
    generation: u32,
    restarts: u32,
    hops: u32,
    was_degraded: bool,
    /// Index into the migrations ledger; `None` for cold restarts,
    /// which are audited in the [`DurabilityReport`] instead.
    mig_idx: Option<usize>,
    /// Resuming from the durable store after a whole-fleet power loss.
    cold: bool,
}

/// A queued admission on one shard.
struct QEntry {
    id: usize,
    arrival_ms: f64,
    mode: ServiceMode,
    resume: Option<ResumeState>,
}

/// One shard slot. `token` invalidates in-flight [`EvKind::Seg`] events
/// after crashes and re-dispatches; `due_ms` moves when a stall delays
/// the segment (the stale event re-schedules itself).
struct Slot {
    run: Option<Running>,
    pending: Option<SegEnd>,
    token: u64,
    due_ms: f64,
}

/// One failure domain: queue, slots, ladder state, breaker, fault plan.
struct Shard {
    id: u32,
    slots: Vec<Slot>,
    queue: VecDeque<QEntry>,
    slo: SupSlo,
    breaker: CircuitBreaker,
    faults: FaultPlan,
    alive: bool,
    draining: bool,
    retired: bool,
    drain_reason: MigrationReason,
    stalled_until_ms: f64,
    burn_streak: u32,
    routed: usize,
    admitted: usize,
    shed: usize,
    completed: usize,
    recovered: usize,
    failed: usize,
    gave_up: usize,
    degraded: usize,
    migrated_in: usize,
    migrated_out: usize,
    restarts: u64,
    warm_attempted: u64,
    warm_skipped: u64,
    peak_queue_depth: usize,
    crashed: bool,
}

impl Shard {
    fn new(id: u32, cfg: &FleetConfig) -> Shard {
        let noop = Obs::noop();
        Shard {
            id,
            slots: (0..cfg.shard.slots)
                .map(|_| Slot { run: None, pending: None, token: 0, due_ms: 0.0 })
                .collect(),
            queue: VecDeque::new(),
            slo: SupSlo::with_taps(
                &noop,
                cfg.shard.slo_config(),
                ["shard.arrivals", "shard.sheds", "shard.wait_us"],
            ),
            breaker: CircuitBreaker::new(cfg.shard.breaker).expect("validated breaker config"),
            faults: cfg.shard.warm_faults,
            alive: true,
            draining: false,
            retired: false,
            drain_reason: MigrationReason::SloDrain,
            stalled_until_ms: 0.0,
            burn_streak: 0,
            routed: 0,
            admitted: 0,
            shed: 0,
            completed: 0,
            recovered: 0,
            failed: 0,
            gave_up: 0,
            degraded: 0,
            migrated_in: 0,
            migrated_out: 0,
            restarts: 0,
            warm_attempted: 0,
            warm_skipped: 0,
            peak_queue_depth: 0,
            crashed: false,
        }
    }

    fn busy_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.run.is_some()).count()
    }

    fn load(&self) -> usize {
        self.queue.len() + self.busy_slots()
    }
}

/// A session migrated with replay verification pending: the shadow
/// replay's predicted tail, waiting for the real run to terminate.
struct PendingVerify {
    session: usize,
    generation: u32,
    mig_idx: usize,
    tail: Vec<LogEvent>,
}

/// Fleet metric handles.
struct FleetObs {
    routed: Counter,
    shed: Counter,
    migrations: Counter,
    crashes: Counter,
    stalls: Counter,
    degraded_links: Counter,
    drains_deferred: Counter,
    scale_up: Counter,
    scale_down: Counter,
    power_losses: Counter,
    cold_resumes: Counter,
    lost_durable: Counter,
    shards: Gauge,
    queue_wait_us: Histogram,
}

impl FleetObs {
    fn new(obs: &Obs) -> FleetObs {
        let l: &[(&'static str, &'static str)] = &[("pillar", "runtime")];
        FleetObs {
            routed: obs.counter("fleet.routed", l),
            shed: obs.counter("fleet.shed", l),
            migrations: obs.counter("fleet.migrations", l),
            crashes: obs.counter("fleet.crashes", l),
            stalls: obs.counter("fleet.stalls", l),
            degraded_links: obs.counter("fleet.degraded_links", l),
            drains_deferred: obs.counter("fleet.drains_deferred", l),
            scale_up: obs.counter("fleet.scale_up", l),
            scale_down: obs.counter("fleet.scale_down", l),
            power_losses: obs.counter("fleet.power_losses", l),
            cold_resumes: obs.counter("fleet.cold_resumes", l),
            lost_durable: obs.counter("fleet.lost_durable", l),
            shards: obs.gauge("fleet.shards", l),
            queue_wait_us: obs.histogram("fleet.queue_wait_us", l),
        }
    }
}

/// The per-session segment count for synthetic workloads: seeded,
/// uniform on `1..=2*mean-1` so the mean is `mean`.
fn synth_total(seed: u64, mean_segments: u32, id: usize) -> u32 {
    let span = u64::from(2 * mean_segments.max(1) - 1);
    1 + (mix(seed ^ SALT_SYNTH ^ mix(id as u64)) % span) as u32
}

/// Advances `r` by one segment (eagerly — the caller schedules the
/// boundary at `now + elapsed` and commits only when it fires, so a
/// crash before the boundary discards the uncommitted work, exactly
/// like a real shard losing its in-memory state).
fn advance_segment(
    cfg: &SupervisorConfig,
    workload: &FleetWorkload<'_>,
    r: &mut Running,
) -> (f64, SegEnd) {
    let every = cfg.checkpoint_every.max(1);
    let step_cost =
        if r.mode == ServiceMode::ConcealOnly { cfg.step_ms * 0.5 } else { cfg.step_ms };
    match workload {
        FleetWorkload::Synthetic { .. } => {
            r.synth_done += 1;
            let end =
                if r.synth_done >= r.synth_total { SegEnd::Finished } else { SegEnd::Boundary };
            (every as f64 * step_cost, end)
        }
        FleetWorkload::Engine { graph, config, factory } => {
            let mut elapsed = 0.0;
            loop {
                let er = r.engine.as_mut().expect("engine workload has engine state");
                let start = er.steps;
                let target = (((start / every) + 1) * every).min(cfg.max_steps);
                let res = catch_unwind(AssertUnwindSafe(|| {
                    drive(&mut er.session, &mut *er.bot, start, target, cfg.tick_ms, |_, _| {})
                }));
                match res {
                    Ok(Ok(steps)) => {
                        elapsed += steps.saturating_sub(start) as f64 * step_cost;
                        er.steps = steps;
                        let done = er.session.state().is_over()
                            || steps < target
                            || steps >= cfg.max_steps;
                        return (elapsed, if done { SegEnd::Finished } else { SegEnd::Boundary });
                    }
                    Ok(Err(e)) => return (elapsed, SegEnd::Failed { reason: e.to_string() }),
                    Err(payload) => {
                        let reason = panic_reason(payload);
                        if r.restarts >= cfg.restart_budget {
                            return (elapsed, SegEnd::GaveUp { restarts: r.restarts, reason });
                        }
                        r.restarts += 1;
                        r.generation += 1;
                        r.resumed_at_step = r.committed.as_ref().map_or(0, |c| c.step);
                        elapsed += restart_backoff(cfg.restart_backoff_ms, r.restarts);
                        let rebuilt = (|| -> Result<EngineRun> {
                            let bot = factory(r.id, r.generation);
                            match &r.committed {
                                Some(c) if c.save.is_some() => {
                                    let save = c.save.as_ref().expect("checked");
                                    let session = GameSession::restore_checkpoint(
                                        graph.clone(),
                                        config.clone(),
                                        save,
                                    )?;
                                    Ok(EngineRun {
                                        session,
                                        bot,
                                        steps: c.step,
                                        log_prefix: c.log.clone(),
                                    })
                                }
                                _ => {
                                    let (session, _) =
                                        GameSession::new(graph.clone(), config.clone())?;
                                    Ok(EngineRun { session, bot, steps: 0, log_prefix: None })
                                }
                            }
                        })();
                        match rebuilt {
                            Ok(er) => r.engine = Some(er),
                            Err(e) => {
                                return (elapsed, SegEnd::Failed { reason: e.to_string() })
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The boundary commit: checkpoint + digest + stitched log for engine
/// workloads, a seeded digest stand-in for synthetic ones.
fn make_commit(seed: u64, cfg: &SupervisorConfig, r: &Running) -> Commit {
    match &r.engine {
        Some(er) => {
            let save = er.session.checkpoint();
            let log = match &er.log_prefix {
                Some(p) => stitch(p, er.session.log()),
                None => er.session.log().clone(),
            };
            Commit {
                step: er.steps,
                synth_done: r.synth_done,
                digest: save.digest(),
                save: Some(save),
                log: Some(log),
            }
        }
        None => Commit {
            step: r.synth_done as usize * cfg.checkpoint_every.max(1),
            synth_done: r.synth_done,
            digest: mix(seed ^ SALT_SYNTH ^ mix(r.id as u64) ^ mix(u64::from(r.synth_done))),
            save: None,
            log: None,
        },
    }
}

/// The fleet's discrete-event simulation state.
struct FleetSim<'a> {
    cfg: &'a FleetConfig,
    workload: &'a FleetWorkload<'a>,
    router: FleetRouter,
    shards: Vec<Shard>,
    next_shard_id: u32,
    events: EventQueue<u64, EvKind>,
    outcomes: Vec<Option<SessionOutcome>>,
    drains_deferred: u64,
    queue_waits: Vec<f64>,
    migrations: Vec<MigrationRecord>,
    scale_events: Vec<ScaleEvent>,
    pending_verify: Vec<PendingVerify>,
    fleet_slo: SupSlo,
    fo: FleetObs,
    rec: SpanRecorder,
    /// Per-shard causal journey logs ([`FleetConfig::journeys`]).
    journey: JourneyRecorder,
    makespan_ms: f64,
    last_scale_ms: f64,
    up_streak: u32,
    down_streak: u32,
    /// The durable checkpoint store, when configured.
    store: Option<DurableStore>,
    /// Simulator-side ground truth: session id -> (latest acknowledged
    /// WAL seq, its digest). Used after a power loss to distinguish "no
    /// acked checkpoint" sheds from provably-corrupt-record losses.
    acked: BTreeMap<usize, (u64, u64)>,
    scrubs: Vec<ScrubReport>,
    cold_resumed: usize,
    stale_resumes: usize,
    lost: Vec<LostSession>,
    recovered_cold: usize,
}

impl FleetSim<'_> {
    fn push_ms(&mut self, t_ms: f64, kind: EvKind) {
        self.events.push(us_from_ms(t_ms), kind);
    }

    fn sidx(&self, id: u32) -> Option<usize> {
        self.shards.iter().position(|s| s.id == id)
    }

    /// Any shard still has queued or in-flight work.
    fn busy(&self) -> bool {
        self.shards.iter().any(|s| !s.queue.is_empty() || s.busy_slots() > 0)
    }

    /// Queued plus in-flight sessions across routable shards, as a
    /// fraction of their total capacity (slots + queue). Empty ring
    /// counts as idle.
    fn fleet_occupancy(&self) -> f64 {
        let per_shard = self.cfg.shard.slots + self.cfg.shard.queue_capacity;
        let mut load = 0usize;
        let mut cap = 0usize;
        for s in &self.shards {
            if !s.alive || s.draining {
                continue;
            }
            load += s.load();
            cap += per_shard;
        }
        if cap == 0 {
            0.0
        } else {
            load as f64 / cap as f64
        }
    }

    /// The causal identity of `(session, generation)` under the fleet's
    /// router seed — the same pure mint every boundary re-derives.
    fn ctx(&self, id: usize, generation: u32) -> TraceCtx {
        TraceCtx::mint(self.cfg.router_seed, id as u64, generation)
    }

    /// Records one journey event on `shard`'s log (`None` = the fleet
    /// itself, e.g. a shed with no routable shard). Single branch when
    /// journeys are off.
    fn journey_event(
        &mut self,
        shard: Option<u32>,
        t_ms: f64,
        id: usize,
        generation: u32,
        kind: JourneyEventKind,
    ) {
        if self.journey.is_enabled() {
            let ctx = self.ctx(id, generation);
            self.journey.record(shard.unwrap_or(u32::MAX), t_ms, id as u64, ctx, kind);
        }
    }

    /// Terminal shed: one accounted outcome, fleet- and (when
    /// attributable) shard-level SLO bad events. `generation` is the
    /// session's causal generation at the moment it was shed.
    fn shed(&mut self, sidx: Option<usize>, id: usize, generation: u32, t_ms: f64, reason: &str) {
        self.outcomes[id] = Some(SessionOutcome::Shed { reason: reason.into() });
        self.fleet_slo.on_shed(t_ms);
        self.fo.shed.inc();
        self.rec.event("shed", id as u64, us_from_ms(t_ms));
        self.makespan_ms = self.makespan_ms.max(t_ms);
        let sid = sidx.map(|i| self.shards[i].id);
        self.journey_event(
            sid,
            t_ms,
            id,
            generation,
            JourneyEventKind::Shed { reason: reason.into() },
        );
        if let Some(i) = sidx {
            let s = &mut self.shards[i];
            s.shed += 1;
            s.slo.on_shed(t_ms);
        }
    }

    fn on_arrival(&mut self, id: usize, t_ms: f64) {
        self.fleet_slo.on_arrival(t_ms);
        self.makespan_ms = self.makespan_ms.max(t_ms);
        let Some(dest) = self.router.route(id as u64) else {
            self.shed(None, id, 0, t_ms, "no shard available");
            return;
        };
        self.fo.routed.inc();
        let i = self.sidx(dest).expect("routable shard exists");
        self.enqueue(i, QEntry { id, arrival_ms: t_ms, mode: ServiceMode::Full, resume: None }, t_ms);
    }

    /// Admits `q` to shard `i`'s queue: counts the routed arrival,
    /// sheds on a full queue, picks the service mode per the shard's
    /// ladder, and dispatches as far as idle slots allow.
    fn enqueue(&mut self, i: usize, mut q: QEntry, now: f64) {
        let cfg = self.cfg;
        // Fresh (non-resume) entries open queue time on this shard's
        // journey log; resumed entries already carry a MigratedIn /
        // ColdResume event from their originating boundary.
        if q.resume.is_none() {
            let sid = self.shards[i].id;
            self.journey_event(Some(sid), now, q.id, 0, JourneyEventKind::Enqueued);
        }
        let verdict = {
            let s = &mut self.shards[i];
            s.routed += 1;
            s.slo.on_arrival(now);
            if s.queue.len() >= cfg.shard.queue_capacity {
                None
            } else {
                Some(match &cfg.shard.ladder {
                    LadderPolicy::Occupancy => {
                        let occ = (s.queue.len() + 1) as f64 / cfg.shard.queue_capacity as f64;
                        ServiceMode::for_occupancy(occ, &cfg.shard)
                    }
                    LadderPolicy::SloDriven(_) => s.slo.mode_for_burn(now),
                })
            }
        };
        let Some(mode) = verdict else {
            let reason = match &q.resume {
                Some(rs) if rs.cold => "cold restart target queue full",
                Some(_) => "migration target queue full",
                None => "queue full",
            };
            let generation = q.resume.as_ref().map_or(0, |rs| rs.generation);
            self.shed(Some(i), q.id, generation, now, reason);
            return;
        };
        q.mode = mode;
        let s = &mut self.shards[i];
        s.queue.push_back(q);
        s.peak_queue_depth = s.peak_queue_depth.max(s.queue.len());
        self.try_dispatch(i, now);
    }

    /// Serves shard `i`'s queue into idle slots. A head whose wait blew
    /// the deadline is shed without consuming the slot.
    fn try_dispatch(&mut self, i: usize, now: f64) {
        let cfg = self.cfg;
        loop {
            let (slot_idx, q, start) = {
                let s = &mut self.shards[i];
                if !s.alive {
                    return;
                }
                let Some(slot_idx) = s.slots.iter().position(|sl| sl.run.is_none()) else {
                    return;
                };
                let Some(q) = s.queue.pop_front() else { return };
                (slot_idx, q, now.max(s.stalled_until_ms))
            };
            let wait = start - q.arrival_ms;
            if wait > cfg.shard.queue_deadline_ms {
                let generation = q.resume.as_ref().map_or(0, |rs| rs.generation);
                self.shed(Some(i), q.id, generation, start, "queue deadline exceeded");
                continue;
            }
            self.queue_waits.push(wait);
            self.fo.queue_wait_us.record(us_from_ms(wait));
            self.fleet_slo.on_wait(start, wait);
            self.shards[i].slo.on_wait(start, wait);
            self.dispatch(i, slot_idx, q, start);
        }
    }

    /// Puts `q` into a slot: warm (fresh full-service admissions only,
    /// against the shard's *current* fault plan), build or restore the
    /// engine, check the migration handoff, and start the first segment.
    fn dispatch(&mut self, i: usize, slot_idx: usize, q: QEntry, start: f64) {
        let cfg = self.cfg;
        let wl = self.workload;
        let QEntry { id, mode, resume, .. } = q;
        let mig_idx = resume.as_ref().and_then(|rs| rs.mig_idx);
        let cold = resume.as_ref().is_some_and(|rs| rs.cold);
        let gen_now = resume.as_ref().map_or(0, |rs| rs.generation);
        let sid = self.shards[i].id;
        self.shards[i].admitted += 1;
        self.rec.event("admit", id as u64, us_from_ms(start));
        self.journey_event(
            Some(sid),
            start,
            id,
            gen_now,
            JourneyEventKind::Admitted { generation: gen_now },
        );
        let mut t = start;
        let mut was_degraded = false;
        if resume.is_none() {
            if mode == ServiceMode::Full {
                let s = &mut self.shards[i];
                let w = warm_session(id, t, &cfg.shard, &s.faults, &mut s.breaker);
                t = w.t;
                s.warm_attempted += w.attempted;
                s.warm_skipped += w.skipped;
            } else {
                self.shards[i].degraded += 1;
                was_degraded = true;
                self.journey_event(
                    Some(sid),
                    start,
                    id,
                    gen_now,
                    JourneyEventKind::DegradedTo { mode: format!("{mode:?}") },
                );
            }
        }
        let (generation, restarts, hops, resumed_at_step, committed, synth_done) = match resume {
            None => (0, 0, 0, 0, None, 0),
            Some(rs) => {
                self.shards[i].migrated_in += 1;
                was_degraded = rs.was_degraded;
                let step = rs.committed.step;
                let done = rs.committed.synth_done;
                (rs.generation, rs.restarts, rs.hops, step, Some(rs.committed), done)
            }
        };
        let mut engine = None;
        if let FleetWorkload::Engine { graph, config, factory } = wl {
            let built: Result<EngineRun> = match &committed {
                Some(c) => {
                    let save = c.save.as_ref().expect("engine commits carry a save");
                    GameSession::restore_checkpoint(graph.clone(), config.clone(), save).map(
                        |session| EngineRun {
                            session,
                            bot: factory(id, generation),
                            steps: c.step,
                            log_prefix: c.log.clone(),
                        },
                    )
                }
                None => GameSession::new(graph.clone(), config.clone()).map(|(session, _)| {
                    EngineRun { session, bot: factory(id, generation), steps: 0, log_prefix: None }
                }),
            };
            match built {
                Ok(er) => {
                    if let (Some(mi), Some(c)) = (mig_idx, &committed) {
                        let save = c.save.as_ref().expect("engine commits carry a save");
                        self.migrations[mi].handoff_ok =
                            Some(er.session.checkpoint().digest() == c.digest);
                        if cfg.migration.verify_replay {
                            let mut bot = factory(id, generation);
                            let shadow = catch_unwind(AssertUnwindSafe(|| {
                                resume_session(
                                    graph.clone(),
                                    config.clone(),
                                    save,
                                    &mut *bot,
                                    c.step,
                                    cfg.shard.max_steps,
                                    cfg.shard.tick_ms,
                                )
                            }));
                            if let Ok(Ok(run)) = shadow {
                                self.pending_verify.retain(|p| p.session != id);
                                self.pending_verify.push(PendingVerify {
                                    session: id,
                                    generation,
                                    mig_idx: mi,
                                    tail: run.log.events().to_vec(),
                                });
                            }
                        }
                    }
                    engine = Some(er);
                }
                Err(e) => {
                    let r = Running {
                        id,
                        mode,
                        generation,
                        restarts,
                        hops,
                        resumed_at_step,
                        was_degraded,
                        cold,
                        committed,
                        engine: None,
                        synth_done,
                        synth_total: 0,
                    };
                    self.finish(i, r, SegEnd::Failed { reason: e.to_string() }, t);
                    return;
                }
            }
        }
        let st = match wl {
            FleetWorkload::Synthetic { mean_segments } => {
                synth_total(cfg.router_seed, *mean_segments, id)
            }
            FleetWorkload::Engine { .. } => 0,
        };
        let r = Running {
            id,
            mode,
            generation,
            restarts,
            hops,
            resumed_at_step,
            was_degraded,
            cold,
            committed,
            engine,
            synth_done,
            synth_total: st,
        };
        self.start_segment(i, slot_idx, r, t);
    }

    /// Runs one segment eagerly and schedules its boundary event.
    fn start_segment(&mut self, i: usize, slot_idx: usize, mut r: Running, t: f64) {
        let cfg = self.cfg;
        let wl = self.workload;
        let (elapsed, end) = advance_segment(&cfg.shard, wl, &mut r);
        let due = t + elapsed;
        let (sid, token) = {
            let s = &mut self.shards[i];
            let slot = &mut s.slots[slot_idx];
            slot.token += 1;
            slot.due_ms = due;
            slot.run = Some(r);
            slot.pending = Some(end);
            (s.id, slot.token)
        };
        self.push_ms(due, EvKind::Seg { shard: sid, slot: slot_idx, token });
    }

    /// A segment-boundary event fired.
    fn on_seg(&mut self, shard_id: u32, slot_idx: usize, token: u64, t_us: u64) {
        let Some(i) = self.sidx(shard_id) else { return };
        let defer = {
            let s = &self.shards[i];
            if !s.alive {
                return;
            }
            let slot = &s.slots[slot_idx];
            if slot.token != token || slot.run.is_none() {
                return;
            }
            if us_from_ms(slot.due_ms) > t_us { Some(slot.due_ms) } else { None }
        };
        if let Some(due) = defer {
            // A stall pushed the boundary out from under this event;
            // chase it (same token — the slot state is still ours).
            self.push_ms(due, EvKind::Seg { shard: shard_id, slot: slot_idx, token });
            return;
        }
        let (mut r, end, due) = {
            let slot = &mut self.shards[i].slots[slot_idx];
            (
                slot.run.take().expect("checked above"),
                slot.pending.take().expect("pending set with run"),
                slot.due_ms,
            )
        };
        match end {
            SegEnd::Boundary => {
                r.committed = Some(make_commit(self.cfg.router_seed, &self.cfg.shard, &r));
                let seq = self.persist_commit(&r);
                if self.journey.is_enabled() {
                    let (step, digest) = {
                        let c = r.committed.as_ref().expect("just committed");
                        (c.step as u64, c.digest)
                    };
                    let sid = self.shards[i].id;
                    self.journey_event(
                        Some(sid),
                        due,
                        r.id,
                        r.generation,
                        JourneyEventKind::CheckpointPersisted { step, digest, durable_seq: seq },
                    );
                }
                if self.shards[i].draining {
                    let reason = self.shards[i].drain_reason;
                    self.migrate(i, r, due, reason);
                    self.try_dispatch(i, due);
                } else {
                    self.start_segment(i, slot_idx, r, due);
                }
            }
            end => {
                self.finish(i, r, end, due);
                self.try_dispatch(i, due);
            }
        }
    }

    /// Terminal accounting for a session that ended (not shed) on shard
    /// `i` — and the replay-verification verdict for its last migration.
    fn finish(&mut self, i: usize, r: Running, end: SegEnd, t: f64) {
        self.makespan_ms = self.makespan_ms.max(t);
        let outcome = {
            let s = &mut self.shards[i];
            s.restarts += u64::from(r.restarts);
            match end {
                SegEnd::Finished => {
                    if r.restarts == 0 && r.hops == 0 && !r.cold {
                        s.completed += 1;
                        SessionOutcome::Completed
                    } else {
                        s.recovered += 1;
                        SessionOutcome::Recovered {
                            resumed_at_step: r.resumed_at_step,
                            restarts: r.restarts,
                        }
                    }
                }
                SegEnd::Failed { reason } => {
                    s.failed += 1;
                    SessionOutcome::Failed { reason }
                }
                SegEnd::GaveUp { restarts, reason } => {
                    s.gave_up += 1;
                    SessionOutcome::GaveUp { restarts, reason }
                }
                SegEnd::Boundary => unreachable!("boundary is not terminal"),
            }
        };
        if let Some(pos) = self.pending_verify.iter().position(|p| p.session == r.id) {
            let p = self.pending_verify.swap_remove(pos);
            // Only a clean finish of the *same* incarnation can be
            // compared against the shadow replay; a later restart or
            // hop supersedes the prediction (verdict stays None).
            if p.generation == r.generation && replay_comparable(&outcome) {
                if let Some(er) = &r.engine {
                    self.migrations[p.mig_idx].verified =
                        Some(er.session.log().events() == p.tail.as_slice());
                }
            }
        }
        if r.cold && matches!(outcome, SessionOutcome::Recovered { .. }) {
            self.recovered_cold += 1;
        }
        self.rec.event("done", r.id as u64, us_from_ms(t));
        if self.journey.is_enabled() {
            let sid = self.shards[i].id;
            let kind = match &outcome {
                SessionOutcome::Completed => {
                    let steps = r.engine.as_ref().map_or_else(
                        || u64::from(r.synth_done) * self.cfg.shard.checkpoint_every.max(1) as u64,
                        |er| er.steps as u64,
                    );
                    JourneyEventKind::Completed { steps }
                }
                SessionOutcome::Recovered { resumed_at_step, restarts } => {
                    JourneyEventKind::RecoveredEnd {
                        resumed_at_step: *resumed_at_step as u64,
                        restarts: *restarts,
                    }
                }
                SessionOutcome::Failed { reason } => {
                    JourneyEventKind::Failed { reason: reason.clone() }
                }
                SessionOutcome::GaveUp { restarts, reason } => {
                    JourneyEventKind::GaveUp { restarts: *restarts, reason: reason.clone() }
                }
                SessionOutcome::Shed { .. } => unreachable!("sheds go through shed()"),
            };
            self.journey_event(Some(sid), t, r.id, r.generation, kind);
        }
        self.outcomes[r.id] = Some(outcome);
    }

    /// Hands a checkpointed session to the shard the router now picks.
    fn migrate(&mut self, from_idx: usize, mut r: Running, now: f64, reason: MigrationReason) {
        let committed = r.committed.take().expect("migrate requires a committed checkpoint");
        let Some(dest) = self.router.route(r.id as u64) else {
            self.shed(Some(from_idx), r.id, r.generation, now, "no shard available for migration");
            return;
        };
        let from_id = self.shards[from_idx].id;
        self.shards[from_idx].migrated_out += 1;
        self.fo.migrations.inc();
        self.rec.event("migrate", r.id as u64, us_from_ms(now));
        let di = self.sidx(dest).expect("routable shard exists");
        let mi = self.migrations.len();
        // The handoff carries the *resuming* generation's identity; its
        // parent span is the generation that checkpointed, so the chain
        // survives the shard change.
        let hand = self.ctx(r.id, r.generation + 1);
        self.migrations.push(MigrationRecord {
            session: r.id,
            from: from_id,
            to: dest,
            at_ms: now,
            resumed_at_step: committed.step,
            reason,
            checkpoint_digest: committed.digest,
            handoff_ok: None,
            verified: None,
            trace_id: hand.trace_id,
            span_id: hand.span_id,
        });
        self.journey_event(
            Some(from_id),
            now,
            r.id,
            r.generation,
            JourneyEventKind::MigratedOut { to: dest, resumed_at_step: committed.step as u64 },
        );
        self.journey_event(
            Some(dest),
            now,
            r.id,
            r.generation + 1,
            JourneyEventKind::MigratedIn { from: from_id },
        );
        let resume = ResumeState {
            committed,
            generation: r.generation + 1,
            restarts: r.restarts,
            hops: r.hops + 1,
            was_degraded: r.was_degraded,
            mig_idx: Some(mi),
            cold: r.cold,
        };
        self.enqueue(
            di,
            QEntry { id: r.id, arrival_ms: now, mode: r.mode, resume: Some(resume) },
            now,
        );
    }

    fn on_fault(&mut self, fi: usize) {
        let f = self.cfg.faults[fi];
        let t_ms = f.at_ms;
        let Some(i) = self.sidx(f.shard) else { return };
        if !self.shards[i].alive {
            return;
        }
        match f.kind {
            ShardFaultKind::Crash => self.crash(i, t_ms),
            ShardFaultKind::Stall { duration_ms } => {
                self.fo.stalls.inc();
                self.rec.event("stall", u64::from(f.shard), us_from_ms(t_ms));
                let s = &mut self.shards[i];
                s.stalled_until_ms = s.stalled_until_ms.max(t_ms + duration_ms);
                for slot in &mut s.slots {
                    if slot.run.is_some() {
                        slot.due_ms += duration_ms;
                    }
                }
            }
            ShardFaultKind::DegradedLink { loss } => {
                self.fo.degraded_links.inc();
                self.rec.event("degraded_link", u64::from(f.shard), us_from_ms(t_ms));
                let s = &mut self.shards[i];
                s.faults = s.faults.with_loss(loss).expect("validated loss rate");
            }
        }
    }

    /// The failure-domain event: the shard leaves the ring, in-flight
    /// sessions migrate from their last committed checkpoint (or are
    /// shed, accounted, if they never reached one), and the queue
    /// re-routes. Slot tokens bump so in-flight segment events die.
    fn crash(&mut self, i: usize, t_ms: f64) {
        let sid = self.shards[i].id;
        self.fo.crashes.inc();
        self.rec.event("crash", u64::from(sid), us_from_ms(t_ms));
        self.router.remove_shard(sid);
        let (running, queued) = {
            let s = &mut self.shards[i];
            s.alive = false;
            s.crashed = true;
            s.draining = true;
            s.drain_reason = MigrationReason::Crash;
            let mut running = Vec::new();
            for slot in &mut s.slots {
                slot.token += 1;
                slot.pending = None;
                if let Some(r) = slot.run.take() {
                    running.push(r);
                }
            }
            (running, std::mem::take(&mut s.queue))
        };
        for r in running {
            self.journey_event(Some(sid), t_ms, r.id, r.generation, JourneyEventKind::Crashed);
            if r.committed.is_some() {
                self.migrate(i, r, t_ms, MigrationReason::Crash);
            } else {
                self.shed(Some(i), r.id, r.generation, t_ms, "shard crashed before first checkpoint");
            }
        }
        for q in queued {
            match self.router.route(q.id as u64) {
                Some(dest) => {
                    let di = self.sidx(dest).expect("routable shard exists");
                    self.enqueue(di, q, t_ms);
                }
                None => {
                    let generation = q.resume.as_ref().map_or(0, |rs| rs.generation);
                    self.shed(Some(i), q.id, generation, t_ms, "no shard available");
                }
            }
        }
    }

    /// Writes the session's fresh boundary commit through the durable
    /// store (when configured) and records the acknowledged seq as the
    /// simulator's ground truth for power-loss accounting. Returns the
    /// acknowledged WAL seq, `None` when there is no store (or the
    /// flush was not acknowledged).
    fn persist_commit(&mut self, r: &Running) -> Option<u64> {
        let store = self.store.as_mut()?;
        let c = r.committed.as_ref().expect("persist follows make_commit");
        let ctx = TraceCtx::mint(self.cfg.router_seed, r.id as u64, r.generation);
        let payload = match &c.save {
            Some(save) => {
                // The durable payload carries the checkpointing
                // generation's causal identity; the trace line is
                // digest-exempt, so `c.digest` still matches.
                let mut save = save.clone();
                save.trace = Some((ctx.trace_id, ctx.span_id));
                save.to_text().into_bytes()
            }
            None => c.synth_done.to_le_bytes().to_vec(),
        };
        let record = CheckpointRecord {
            session: r.id as u64,
            step: c.step as u64,
            generation: r.generation,
            digest: c.digest,
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            payload,
        };
        let seq = persist_checkpoint(store, &record);
        if let Some(seq) = seq {
            self.acked.insert(r.id, (seq, c.digest));
        }
        seq
    }

    /// The whole-fleet power loss: every shard loses its queues, slots,
    /// and in-flight work simultaneously; the durable store suffers its
    /// own crash semantics (staged records dropped, possibly a torn
    /// tail); then the fleet cold-restarts — a scrub pass walks the
    /// store, every recoverable session re-enters through the router
    /// from its last intact durable checkpoint, and every session whose
    /// acknowledged record is provably corrupt is shed with the exact
    /// record it died to.
    fn on_power_loss(&mut self, pi: usize) {
        let t_ms = self.cfg.power_loss_at_ms[pi];
        self.fo.power_losses.inc();
        self.rec.event("power_loss", pi as u64, us_from_ms(t_ms));
        self.makespan_ms = self.makespan_ms.max(t_ms);
        // Phase 1: the lights go out. Collect every live session id —
        // their in-memory state (engines, logs, restart counters,
        // queue positions) is destroyed, not preserved.
        let mut live: Vec<usize> = Vec::new();
        let mut hit: Vec<(u32, usize, u32)> = Vec::new();
        for s in &mut self.shards {
            for slot in &mut s.slots {
                slot.token += 1;
                slot.pending = None;
                if let Some(r) = slot.run.take() {
                    hit.push((s.id, r.id, r.generation));
                    live.push(r.id);
                }
            }
            for q in std::mem::take(&mut s.queue) {
                hit.push((s.id, q.id, q.resume.as_ref().map_or(0, |rs| rs.generation)));
                live.push(q.id);
            }
        }
        for (sid, id, generation) in hit {
            self.journey_event(Some(sid), t_ms, id, generation, JourneyEventKind::PowerLoss);
        }
        live.sort_unstable();
        live.dedup();
        // Stale shadow-replay predictions died with the fleet's memory.
        self.pending_verify.clear();
        let Some(store) = self.store.as_mut() else {
            // Unreachable behind FleetConfig::validate, but account
            // honestly rather than panic if it ever regresses.
            for id in live {
                self.shed(None, id, 0, t_ms, "power loss without durable store");
            }
            return;
        };
        store.power_loss();
        let recovery = store.recover();
        self.scrubs.push(recovery.scrub.clone());
        // Phase 2: cold restart. Surviving shards reboot in place (the
        // ring is unchanged — crashed and retired shards stay off it).
        for id in live {
            match recovery.sessions.get(&(id as u64)) {
                Some(rc) => {
                    let rec = &rc.record;
                    let (rec_generation, rec_step, was_stale) = (rec.generation, rec.step, rc.stale);
                    let commit = match SaveGame::from_text(
                        std::str::from_utf8(&rec.payload).unwrap_or(""),
                    ) {
                        Ok(save) => Commit {
                            step: rec.step as usize,
                            synth_done: 0,
                            digest: save.digest(),
                            save: Some(save),
                            // The log prefix lived in shard memory; it
                            // is honestly gone after a power loss.
                            log: None,
                        },
                        Err(_) => {
                            // Synthetic payload: the segment counter.
                            let mut b = [0u8; 4];
                            let n = rec.payload.len().min(4);
                            b[..n].copy_from_slice(&rec.payload[..n]);
                            let synth_done = u32::from_le_bytes(b);
                            Commit {
                                step: rec.step as usize,
                                synth_done,
                                digest: rec.digest,
                                save: None,
                                log: None,
                            }
                        }
                    };
                    self.cold_resumed += 1;
                    if rc.stale {
                        self.stale_resumes += 1;
                    }
                    self.fo.cold_resumes.inc();
                    self.rec.event("cold_resume", id as u64, us_from_ms(t_ms));
                    let resume = ResumeState {
                        committed: commit,
                        generation: rec.generation + 1,
                        // Restart/hop counters lived in shard memory;
                        // `cold` pins the outcome to Recovered anyway.
                        restarts: 0,
                        hops: 0,
                        was_degraded: false,
                        mig_idx: None,
                        cold: true,
                    };
                    match self.router.route(id as u64) {
                        Some(dest) => {
                            // The resuming generation's identity is
                            // re-minted from nothing but the durable
                            // `(session, generation)` — the cold-restart
                            // leg of the causal chain.
                            self.journey_event(
                                Some(dest),
                                t_ms,
                                id,
                                rec_generation + 1,
                                JourneyEventKind::ColdResume { from_step: rec_step, stale: was_stale },
                            );
                            let di = self.sidx(dest).expect("routable shard exists");
                            self.enqueue(
                                di,
                                QEntry {
                                    id,
                                    arrival_ms: t_ms,
                                    mode: ServiceMode::Full,
                                    resume: Some(resume),
                                },
                                t_ms,
                            );
                        }
                        None => {
                            self.shed(None, id, 0, t_ms, "no shard available after power loss")
                        }
                    }
                }
                None => match self.acked.get(&id) {
                    Some(&(seq, _digest)) => {
                        // The simulator acknowledged this checkpoint as
                        // durable, and the scrub could not produce it:
                        // attribute the loss to the exact corrupt
                        // record (a record the scrub never even saw as
                        // a candidate was destroyed by a torn tail).
                        let kind = recovery
                            .scrub
                            .lost
                            .iter()
                            .find(|c| c.seq == seq)
                            .map_or(CorruptKind::Torn, |c| c.kind);
                        self.lost.push(LostSession { session: id, seq, kind });
                        self.fo.lost_durable.inc();
                        self.shed(None, id, 0, t_ms, "cold restart: durable checkpoint corrupt");
                    }
                    None => {
                        self.shed(None, id, 0, t_ms, "power loss before first durable checkpoint")
                    }
                },
            }
        }
    }

    /// Takes shard `i` off the ring; queued sessions re-route now,
    /// running ones migrate at their next segment boundary.
    fn drain(&mut self, i: usize, t_ms: f64, reason: MigrationReason) {
        let sid = self.shards[i].id;
        self.router.remove_shard(sid);
        self.rec.event("drain", u64::from(sid), us_from_ms(t_ms));
        let queued = {
            let s = &mut self.shards[i];
            s.draining = true;
            s.retired = true;
            s.drain_reason = reason;
            std::mem::take(&mut s.queue)
        };
        for q in queued {
            match self.router.route(q.id as u64) {
                Some(dest) => {
                    let di = self.sidx(dest).expect("routable shard exists");
                    self.enqueue(di, q, t_ms);
                }
                None => {
                    let generation = q.resume.as_ref().map_or(0, |rs| rs.generation);
                    self.shed(Some(i), q.id, generation, t_ms, "no shard available");
                }
            }
        }
    }

    /// One controller tick: SLO-drain burning shards, then autoscale on
    /// fleet-wide burn with hysteresis.
    fn on_control(&mut self, t_ms: f64) {
        let cfg = self.cfg;
        // A drain helps only while the surviving shards have headroom
        // to absorb the rerouted queue; when the whole fleet is
        // saturated, every shard burns, and draining one per tick just
        // cascades capacity away (see `max_drain_occupancy`).
        let drains_allowed = self.fleet_occupancy() < cfg.migration.max_drain_occupancy;
        for i in 0..self.shards.len() {
            if !self.shards[i].alive || self.shards[i].draining {
                continue;
            }
            let burn = self.shards[i].slo.worst_burn(t_ms);
            let streak = {
                let s = &mut self.shards[i];
                if burn >= cfg.migration.burn_threshold {
                    s.burn_streak += 1;
                } else {
                    s.burn_streak = 0;
                }
                s.burn_streak
            };
            if streak >= cfg.migration.sustain_ticks && self.router.len() > 1 {
                if !drains_allowed {
                    // Hold the streak: the drain fires on the first
                    // control tick the fleet has headroom again.
                    self.drains_deferred += 1;
                    self.fo.drains_deferred.inc();
                    self.rec.event(
                        "drain_deferred",
                        u64::from(self.shards[i].id),
                        us_from_ms(t_ms),
                    );
                    continue;
                }
                self.shards[i].burn_streak = 0;
                self.drain(i, t_ms, MigrationReason::SloDrain);
            }
        }
        let Some(a) = &cfg.autoscale else { return };
        let burn = self.fleet_slo.worst_burn(t_ms);
        if burn >= a.up_burn {
            self.up_streak += 1;
            self.down_streak = 0;
        } else if burn <= a.down_burn {
            self.down_streak += 1;
            self.up_streak = 0;
        } else {
            self.up_streak = 0;
            self.down_streak = 0;
        }
        let n = self.router.len();
        let cooled = t_ms - self.last_scale_ms >= a.cooldown_ms;
        if self.up_streak >= a.sustain_ticks && n < a.max_shards && cooled {
            self.up_streak = 0;
            self.last_scale_ms = t_ms;
            let id = self.next_shard_id;
            self.next_shard_id += 1;
            self.shards.push(Shard::new(id, cfg));
            self.router.add_shard(id);
            self.fo.scale_up.inc();
            self.fo.shards.observe(self.router.len() as u64);
            self.rec.event("scale_up", u64::from(id), us_from_ms(t_ms));
            self.scale_events.push(ScaleEvent {
                at_ms: t_ms,
                up: true,
                shard: id,
                shards_after: self.router.len(),
                burn,
            });
        } else if self.down_streak >= a.sustain_ticks && n > a.min_shards && cooled {
            self.down_streak = 0;
            self.last_scale_ms = t_ms;
            let mut pick: Option<usize> = None;
            for i in 0..self.shards.len() {
                let s = &self.shards[i];
                if !s.alive || s.draining {
                    continue;
                }
                pick = Some(match pick {
                    None => i,
                    Some(p) => {
                        let better = s.load() < self.shards[p].load()
                            || (s.load() == self.shards[p].load() && s.id > self.shards[p].id);
                        if better { i } else { p }
                    }
                });
            }
            if let Some(p) = pick {
                let id = self.shards[p].id;
                self.fo.scale_down.inc();
                self.rec.event("scale_down", u64::from(id), us_from_ms(t_ms));
                self.drain(p, t_ms, MigrationReason::ScaleDown);
                self.scale_events.push(ScaleEvent {
                    at_ms: t_ms,
                    up: false,
                    shard: id,
                    shards_after: self.router.len(),
                    burn,
                });
            }
        }
    }
}

/// True for outcomes a shadow replay can be compared against.
fn replay_comparable(outcome: &SessionOutcome) -> bool {
    matches!(outcome, SessionOutcome::Completed | SessionOutcome::Recovered { .. })
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

fn fleet_core(
    workload: &FleetWorkload<'_>,
    cfg: &FleetConfig,
    n_sessions: usize,
    arrivals: &ArrivalPlan,
    obs: &Obs,
    label: &str,
) -> Result<FleetReport> {
    cfg.validate()?;
    if let FleetWorkload::Synthetic { mean_segments } = workload {
        if *mean_segments == 0 {
            return Err(invalid("synthetic mean_segments must be >= 1"));
        }
    }
    let router = FleetRouter::new(cfg.router_seed, cfg.vnodes, cfg.shards)?;
    let mut rec = obs.recorder(label.to_owned());
    rec.enter("fleet", 0);
    let mut sim = FleetSim {
        cfg,
        workload,
        router,
        shards: (0..cfg.shards).map(|i| Shard::new(i, cfg)).collect(),
        next_shard_id: cfg.shards,
        events: EventQueue::new(),
        outcomes: (0..n_sessions).map(|_| None).collect(),
        drains_deferred: 0,
        queue_waits: Vec::new(),
        migrations: Vec::new(),
        scale_events: Vec::new(),
        pending_verify: Vec::new(),
        fleet_slo: SupSlo::with_taps(
            obs,
            cfg.shard.slo_config(),
            ["fleet.arrivals", "fleet.sheds", "fleet.wait_us"],
        ),
        fo: FleetObs::new(obs),
        rec,
        journey: if cfg.journeys { JourneyRecorder::new() } else { JourneyRecorder::disabled() },
        makespan_ms: 0.0,
        last_scale_ms: f64::NEG_INFINITY,
        up_streak: 0,
        down_streak: 0,
        store: cfg.store.map(|sc| DurableStore::with_obs(sc, obs)),
        acked: BTreeMap::new(),
        scrubs: Vec::new(),
        cold_resumed: 0,
        stale_resumes: 0,
        lost: Vec::new(),
        recovered_cold: 0,
    };
    sim.fo.shards.observe(u64::from(cfg.shards));
    for (fi, f) in cfg.faults.iter().enumerate() {
        sim.push_ms(f.at_ms, EvKind::Fault(fi));
    }
    for (pi, &t) in cfg.power_loss_at_ms.iter().enumerate() {
        sim.push_ms(t, EvKind::PowerLoss(pi));
    }
    sim.push_ms(cfg.control_interval_ms, EvKind::Control);

    let times = arrivals.arrival_times(n_sessions);
    let mut next = 0usize;
    loop {
        let ev_t = sim.events.peek_at();
        let arr_t = times.get(next).map(|&t| us_from_ms(t));
        let fire_event = match (ev_t, arr_t) {
            // Events fire before arrivals at equal timestamps, so a
            // crash at t races no arrival at t — deterministically.
            (Some(e), Some(a)) => e <= a,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if fire_event {
            let ev = sim.events.pop().expect("peeked");
            match ev.payload {
                EvKind::Seg { shard, slot, token } => sim.on_seg(shard, slot, token, ev.at),
                EvKind::Fault(fi) => sim.on_fault(fi),
                EvKind::PowerLoss(pi) => sim.on_power_loss(pi),
                EvKind::Control => {
                    let t_ms = ev.at as f64 / 1000.0;
                    sim.on_control(t_ms);
                    if next < times.len() || sim.busy() {
                        sim.push_ms(t_ms + cfg.control_interval_ms, EvKind::Control);
                    }
                }
            }
        } else {
            let t = times[next];
            sim.on_arrival(next, t);
            next += 1;
        }
    }

    let makespan_ms = sim.makespan_ms.max(times.last().copied().unwrap_or(0.0));
    sim.rec.exit(us_from_ms(makespan_ms));
    let FleetSim {
        router,
        shards,
        outcomes,
        queue_waits,
        drains_deferred,
        migrations,
        scale_events,
        fleet_slo,
        fo,
        rec,
        journey,
        store,
        scrubs,
        cold_resumed,
        stale_resumes,
        lost,
        recovered_cold,
        ..
    } = sim;
    fo.shards.observe(router.len() as u64);
    obs.attach(rec);
    let (alerts, ledgers) = fleet_slo.finish(makespan_ms);

    let rows: Vec<ShardReport> = shards
        .into_iter()
        .map(|s| {
            let (shard_alerts, _ledgers) = s.slo.finish(makespan_ms);
            ShardReport {
                shard: s.id,
                routed: s.routed,
                admitted: s.admitted,
                shed: s.shed,
                completed: s.completed,
                recovered: s.recovered,
                failed: s.failed,
                gave_up: s.gave_up,
                degraded: s.degraded,
                migrated_in: s.migrated_in,
                migrated_out: s.migrated_out,
                restarts: s.restarts,
                warm_attempted: s.warm_attempted,
                warm_skipped: s.warm_skipped,
                peak_queue_depth: s.peak_queue_depth,
                crashed: s.crashed,
                retired: s.retired,
                breaker: s.breaker.stats(),
                alerts: shard_alerts,
            }
        })
        .collect();
    let shard_alerts = AlertTimeline::merged(rows.iter().map(|r| &r.alerts));
    let breaker: BreakerStats = rows.iter().map(|r| r.breaker).sum();
    let outcomes: Vec<SessionOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every offered session is accounted"))
        .collect();
    let mut report = FleetReport {
        sessions: n_sessions,
        completed: 0,
        recovered: 0,
        failed: 0,
        gave_up: 0,
        shed: 0,
        recovered_cold,
        lost_durable: lost.len(),
        degraded: rows.iter().map(|r| r.degraded).sum(),
        restarts: rows.iter().map(|r| r.restarts).sum(),
        drains_deferred,
        migrations,
        scale_events,
        shards: rows,
        routable_shards: router.len(),
        makespan_ms,
        queue_wait: LatencySummary::from_samples_ms(&queue_waits),
        outcomes,
        breaker,
        alerts,
        ledgers,
        shard_alerts,
        durability: store.as_ref().map(|s| DurabilityReport {
            store: s.stats(),
            scrubs,
            cold_resumed,
            stale_resumes,
            lost,
        }),
        journeys: vgbl_obs::stitch(&journey.into_logs()),
    };
    let (completed, failed, shed, recovered, gave_up) = report.outcome_counts();
    report.completed = completed;
    report.failed = failed;
    report.shed = shed;
    report.recovered = recovered;
    report.gave_up = gave_up;
    report.debug_assert_consistent();
    Ok(report)
}

/// Runs `n_sessions` seeded arrivals through the sharded fleet:
/// consistent-hash routing, per-shard bounded admission with the
/// supervisor's degradation ladder, scheduled shard faults, SLO-driven
/// drains, and (optionally) autoscaling. Deterministic: identical
/// inputs produce an identical [`FleetReport`].
pub fn run_fleet(
    workload: &FleetWorkload<'_>,
    cfg: &FleetConfig,
    n_sessions: usize,
    arrivals: &ArrivalPlan,
) -> Result<FleetReport> {
    fleet_core(workload, cfg, n_sessions, arrivals, &Obs::noop(), "fleet")
}

/// [`run_fleet`] with full observability: `fleet.*` counters, the
/// fleet-level SLO series tapped into the registry, and one trace of
/// admit/shed/migrate/crash/scale events on the simulated clock.
pub fn run_fleet_observed(
    workload: &FleetWorkload<'_>,
    cfg: &FleetConfig,
    n_sessions: usize,
    arrivals: &ArrivalPlan,
    obs: &Obs,
    label: &str,
) -> Result<FleetReport> {
    fleet_core(workload, cfg, n_sessions, arrivals, obs, label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bot::{Bot, GuidedBot};
    use crate::fixtures::{fix_the_computer, FRAME};
    use crate::input::InputEvent;
    use crate::supervisor::SloLadderConfig;
    use vgbl_stream::LoadSpike;

    fn config() -> SessionConfig {
        SessionConfig::for_frame(FRAME.0, FRAME.1)
    }

    fn quiet<T>(f: impl FnOnce() -> T) -> T {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    /// Panics after `at` decisions, but only on incarnation 0.
    struct CrashOnce {
        inner: GuidedBot,
        at: usize,
        seen: usize,
    }

    impl Bot for CrashOnce {
        fn next_input(&mut self, session: &GameSession) -> Result<Option<InputEvent>> {
            self.seen += 1;
            if self.seen > self.at {
                panic!("injected transient crash");
            }
            self.inner.next_input(session)
        }
    }

    #[test]
    fn router_is_deterministic_and_remaps_minimally() {
        let a = FleetRouter::new(11, 32, 8).unwrap();
        let b = FleetRouter::new(11, 32, 8).unwrap();
        let keys: Vec<u64> = (0..10_000).collect();
        for &k in &keys {
            assert_eq!(a.route(k), b.route(k), "same build, same routes");
        }
        // Every shard owns a reasonable share.
        let mut counts = [0usize; 8];
        for &k in &keys {
            counts[a.route(k).unwrap() as usize] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 0, "shard {s} owns no keys: {counts:?}");
        }
        // Removing one shard re-homes only the keys it owned.
        let mut c = a.clone();
        c.remove_shard(3);
        for &k in &keys {
            let before = a.route(k).unwrap();
            let after = c.route(k).unwrap();
            if before != 3 {
                assert_eq!(before, after, "key {k} moved without cause");
            } else {
                assert_ne!(after, 3, "key {k} still routes to a removed shard");
            }
        }
        assert!(FleetRouter::new(1, 0, 4).is_err());
        assert!(FleetRouter::new(1, 4, 0).is_err());
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let ok = FleetConfig::default();
        assert!(ok.validate().is_ok());
        assert!(FleetConfig { shards: 0, ..ok.clone() }.validate().is_err());
        assert!(FleetConfig { vnodes: 0, ..ok.clone() }.validate().is_err());
        assert!(FleetConfig { control_interval_ms: 0.0, ..ok.clone() }.validate().is_err());
        let bad_stall = FleetConfig {
            faults: vec![ShardFault {
                at_ms: 10.0,
                shard: 0,
                kind: ShardFaultKind::Stall { duration_ms: -1.0 },
            }],
            ..ok.clone()
        };
        assert!(bad_stall.validate().is_err());
        let bad_loss = FleetConfig {
            faults: vec![ShardFault {
                at_ms: 10.0,
                shard: 0,
                kind: ShardFaultKind::DegradedLink { loss: 1.5 },
            }],
            ..ok.clone()
        };
        assert!(bad_loss.validate().is_err());
        let bad_scale = FleetConfig {
            autoscale: Some(AutoscaleConfig { min_shards: 0, ..AutoscaleConfig::default() }),
            ..ok.clone()
        };
        assert!(bad_scale.validate().is_err());
        let inverted = FleetConfig {
            autoscale: Some(AutoscaleConfig {
                up_burn: 0.5,
                down_burn: 4.0,
                ..AutoscaleConfig::default()
            }),
            ..ok
        };
        assert!(inverted.validate().is_err());
    }

    #[test]
    fn light_engine_load_completes_everyone_unmigrated() {
        let cfg = FleetConfig {
            shards: 2,
            shard: SupervisorConfig {
                queue_capacity: 16,
                slots: 2,
                ..SupervisorConfig::default()
            },
            ..FleetConfig::default()
        };
        let factory = |_: usize, _: u32| -> Box<dyn Bot> { Box::new(GuidedBot::new()) };
        let workload = FleetWorkload::Engine {
            graph: Arc::new(fix_the_computer()),
            config: config(),
            factory: &factory,
        };
        let arrivals = ArrivalPlan::new(3, 10_000.0).unwrap();
        let report = run_fleet(&workload, &cfg, 6, &arrivals).unwrap();
        assert!(report.accounts_exactly(), "{report:?}");
        assert_eq!(report.completed, 6, "{:?}", report.outcomes);
        assert_eq!(report.shed, 0);
        assert_eq!(report.degraded, 0);
        assert!(report.migrations.is_empty());
        assert_eq!(report.routable_shards, 2);
    }

    fn stampede_cfg() -> FleetConfig {
        FleetConfig {
            shards: 4,
            vnodes: 32,
            shard: SupervisorConfig {
                queue_capacity: 8,
                queue_deadline_ms: 1e9,
                slots: 1,
                step_ms: 10.0,
                checkpoint_every: 5,
                ..SupervisorConfig::default()
            },
            control_interval_ms: 100.0,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn synthetic_stampede_with_faults_is_byte_identical_across_reruns() {
        let cfg = FleetConfig {
            faults: vec![
                ShardFault {
                    at_ms: 50.0,
                    shard: 2,
                    kind: ShardFaultKind::DegradedLink { loss: 0.9 },
                },
                ShardFault {
                    at_ms: 100.0,
                    shard: 1,
                    kind: ShardFaultKind::Stall { duration_ms: 200.0 },
                },
                ShardFault { at_ms: 150.0, shard: 0, kind: ShardFaultKind::Crash },
            ],
            autoscale: Some(AutoscaleConfig {
                up_burn: 2.0,
                down_burn: 0.25,
                sustain_ticks: 1,
                cooldown_ms: 300.0,
                min_shards: 2,
                max_shards: 8,
            }),
            ..stampede_cfg()
        };
        let workload = FleetWorkload::Synthetic { mean_segments: 4 };
        let arrivals = ArrivalPlan::new(9, 2.0).unwrap();
        let a = run_fleet(&workload, &cfg, 500, &arrivals).unwrap();
        let b = run_fleet(&workload, &cfg, 500, &arrivals).unwrap();
        assert_eq!(a, b, "same seeds, same faults, same report");
        assert!(a.accounts_exactly());
        assert!(a.shards.iter().any(|s| s.crashed));
    }

    #[test]
    fn crash_migrates_checkpointed_sessions_and_verifies_replay() {
        let cfg = FleetConfig {
            shards: 2,
            vnodes: 32,
            shard: SupervisorConfig {
                queue_capacity: 16,
                queue_deadline_ms: 1e9,
                slots: 1,
                step_ms: 50.0,
                checkpoint_every: 3,
                ..SupervisorConfig::default()
            },
            faults: vec![ShardFault { at_ms: 400.0, shard: 0, kind: ShardFaultKind::Crash }],
            ..FleetConfig::default()
        };
        let factory = |_: usize, _: u32| -> Box<dyn Bot> { Box::new(GuidedBot::new()) };
        let workload = FleetWorkload::Engine {
            graph: Arc::new(fix_the_computer()),
            config: config(),
            factory: &factory,
        };
        let arrivals = ArrivalPlan::new(5, 1.0).unwrap();
        let report = run_fleet(&workload, &cfg, 10, &arrivals).unwrap();
        assert!(report.accounts_exactly(), "{report:?}");
        assert!(!report.migrations.is_empty(), "crash mid-stampede must migrate someone");
        for m in &report.migrations {
            assert_eq!(m.reason, MigrationReason::Crash);
            assert_eq!(m.from, 0);
            assert_eq!(m.handoff_ok, Some(true), "checkpoint must restore bit-identically");
            assert_ne!(m.verified, Some(false), "replay diverged: {m:?}");
        }
        assert!(
            report.migrations.iter().any(|m| m.verified == Some(true)),
            "at least one migration replay-verified: {:?}",
            report.migrations
        );
        let crashed = report.shards.iter().find(|s| s.shard == 0).unwrap();
        assert!(crashed.crashed);
        assert!(crashed.migrated_out >= report.migrations.len());
        assert_eq!(report.routable_shards, 1);
    }

    #[test]
    fn crash_before_first_checkpoint_sheds_accountably() {
        let cfg = FleetConfig {
            shards: 2,
            shard: SupervisorConfig {
                queue_capacity: 16,
                queue_deadline_ms: 1e9,
                slots: 1,
                step_ms: 50.0,
                checkpoint_every: 90,
                ..SupervisorConfig::default()
            },
            faults: vec![ShardFault { at_ms: 300.0, shard: 0, kind: ShardFaultKind::Crash }],
            ..FleetConfig::default()
        };
        let factory = |_: usize, _: u32| -> Box<dyn Bot> { Box::new(GuidedBot::new()) };
        let workload = FleetWorkload::Engine {
            graph: Arc::new(fix_the_computer()),
            config: config(),
            factory: &factory,
        };
        let arrivals = ArrivalPlan::new(5, 1.0).unwrap();
        let report = run_fleet(&workload, &cfg, 8, &arrivals).unwrap();
        assert!(report.accounts_exactly(), "{report:?}");
        assert!(
            report.outcomes.iter().any(|o| matches!(
                o,
                SessionOutcome::Shed { reason } if reason == "shard crashed before first checkpoint"
            )),
            "{:?}",
            report.outcomes
        );
        assert!(report.migrations.is_empty(), "nothing checkpointed, nothing to migrate");
    }

    #[test]
    fn stall_delays_but_conserves_outcomes() {
        // Queue seats for the whole burst: a stall must only delay, so
        // eliminate capacity sheds that would otherwise differ.
        let base = FleetConfig {
            shard: SupervisorConfig { queue_capacity: 64, ..stampede_cfg().shard },
            ..stampede_cfg()
        };
        let stalled = FleetConfig {
            faults: vec![ShardFault {
                at_ms: 60.0,
                shard: 0,
                kind: ShardFaultKind::Stall { duration_ms: 500.0 },
            }],
            ..base.clone()
        };
        let workload = FleetWorkload::Synthetic { mean_segments: 3 };
        let arrivals = ArrivalPlan::new(21, 1.0).unwrap();
        let plain = run_fleet(&workload, &base, 40, &arrivals).unwrap();
        let slow = run_fleet(&workload, &stalled, 40, &arrivals).unwrap();
        assert_eq!(plain.completed, slow.completed, "a stall loses nothing");
        assert_eq!(plain.shed, slow.shed);
        assert!(
            slow.makespan_ms >= plain.makespan_ms,
            "stall {:.1} vs plain {:.1}",
            slow.makespan_ms,
            plain.makespan_ms
        );
    }

    #[test]
    fn degraded_link_trips_only_that_shards_breaker() {
        let cfg = FleetConfig {
            shards: 4,
            vnodes: 32,
            shard: SupervisorConfig {
                queue_capacity: 64,
                queue_deadline_ms: 1e9,
                slots: 2,
                step_ms: 5.0,
                ..SupervisorConfig::default()
            },
            faults: vec![ShardFault {
                at_ms: 0.0,
                shard: 2,
                kind: ShardFaultKind::DegradedLink { loss: 0.95 },
            }],
            ..FleetConfig::default()
        };
        let workload = FleetWorkload::Synthetic { mean_segments: 2 };
        let arrivals = ArrivalPlan::new(33, 1.0).unwrap();
        let report = run_fleet(&workload, &cfg, 64, &arrivals).unwrap();
        for s in &report.shards {
            if s.shard == 2 {
                assert!(s.breaker.trips >= 1, "lossy shard must trip its breaker: {s:?}");
            } else {
                assert_eq!(s.breaker.trips, 0, "healthy shard {} tripped: {s:?}", s.shard);
            }
        }
        assert_eq!(report.breaker.trips, report.shards.iter().map(|s| s.breaker.trips).sum());
    }

    #[test]
    fn sustained_burn_drains_a_shard_onto_the_ring() {
        let cfg = FleetConfig {
            shards: 3,
            vnodes: 32,
            shard: SupervisorConfig {
                queue_capacity: 2,
                queue_deadline_ms: 1e9,
                slots: 1,
                step_ms: 20.0,
                ..SupervisorConfig::default()
            },
            control_interval_ms: 50.0,
            migration: MigrationConfig {
                burn_threshold: 1.0,
                sustain_ticks: 1,
                // This test pins the drain mechanics themselves, so the
                // overload guard is out of the picture.
                max_drain_occupancy: f64::INFINITY,
                verify_replay: true,
            },
            ..FleetConfig::default()
        };
        let workload = FleetWorkload::Synthetic { mean_segments: 4 };
        let arrivals = ArrivalPlan::new(17, 1.0).unwrap();
        let report = run_fleet(&workload, &cfg, 120, &arrivals).unwrap();
        assert!(report.accounts_exactly(), "{report:?}");
        assert!(
            report.shards.iter().any(|s| s.retired && !s.crashed),
            "an overloaded shard must drain: {:?}",
            report.shards.iter().map(|s| (s.shard, s.retired)).collect::<Vec<_>>()
        );
        assert!(report.routable_shards >= 1, "the drain guard keeps the last shard");
    }

    #[test]
    fn overload_guard_stops_slo_drain_cascade() {
        // Regression: under sustained fleet-wide overload every shard
        // burns at once. The legacy policy drained one burning shard
        // per control tick, rerouting its queue onto equally-burning
        // peers — each drain left the survivors worse until the fleet
        // sat at the router floor with most sessions shed. The
        // occupancy guard must hold those drains instead.
        let mk = |max_drain_occupancy: f64| FleetConfig {
            shards: 4,
            vnodes: 32,
            shard: SupervisorConfig {
                queue_capacity: 2,
                queue_deadline_ms: 1e9,
                slots: 1,
                step_ms: 20.0,
                ..SupervisorConfig::default()
            },
            control_interval_ms: 50.0,
            migration: MigrationConfig {
                burn_threshold: 1.0,
                sustain_ticks: 1,
                max_drain_occupancy,
                verify_replay: true,
            },
            ..FleetConfig::default()
        };
        let workload = FleetWorkload::Synthetic { mean_segments: 4 };
        let arrivals = ArrivalPlan::new(17, 1.0).unwrap();
        let slo_drained = |r: &FleetReport| {
            r.shards.iter().filter(|s| s.retired && !s.crashed).count()
        };

        let legacy = run_fleet(&workload, &mk(f64::INFINITY), 160, &arrivals).unwrap();
        assert!(legacy.accounts_exactly(), "{legacy:?}");
        assert!(
            slo_drained(&legacy) >= 2,
            "without the guard the overload cascades through drains: {:?}",
            legacy.shards.iter().map(|s| (s.shard, s.retired)).collect::<Vec<_>>()
        );

        // The guard holds every mid-rush drain (they still fire in the
        // calm tail, once the fleet has headroom — burn windows
        // remember the incident), so the overload is served on four
        // shards instead of a shrinking ring: strictly fewer sheds,
        // strictly more sessions served.
        let guarded = run_fleet(&workload, &mk(0.75), 160, &arrivals).unwrap();
        assert!(guarded.accounts_exactly(), "{guarded:?}");
        assert!(
            guarded.drains_deferred > 0,
            "the saturated fleet must actually exercise the guard: {guarded:?}"
        );
        assert!(
            guarded.shed < legacy.shed,
            "holding drains must shed less than cascading did ({} vs {})",
            guarded.shed,
            legacy.shed
        );
        assert!(
            guarded.completed + guarded.recovered > legacy.completed + legacy.recovered,
            "the guarded fleet serves more of the rush ({}+{} vs {}+{})",
            guarded.completed,
            guarded.recovered,
            legacy.completed,
            legacy.recovered
        );
    }

    #[test]
    fn autoscaler_grows_under_burn_and_retires_in_calm() {
        let slo = SloLadderConfig {
            shed_budget: 0.01,
            wait_target_ms: 400.0,
            wait_budget: 0.05,
            short_ms: 200.0,
            long_ms: 400.0,
            degrade_burn: 1.0,
            conceal_burn: 4.0,
        };
        let cfg = FleetConfig {
            shards: 2,
            vnodes: 32,
            shard: SupervisorConfig {
                queue_capacity: 4,
                queue_deadline_ms: 1e9,
                slots: 1,
                step_ms: 10.0,
                ladder: LadderPolicy::SloDriven(slo),
                ..SupervisorConfig::default()
            },
            control_interval_ms: 100.0,
            migration: MigrationConfig {
                burn_threshold: 1e12,
                sustain_ticks: 10,
                max_drain_occupancy: f64::INFINITY,
                verify_replay: false,
            },
            autoscale: Some(AutoscaleConfig {
                up_burn: 2.0,
                down_burn: 0.25,
                sustain_ticks: 1,
                cooldown_ms: 300.0,
                min_shards: 2,
                max_shards: 6,
            }),
            ..FleetConfig::default()
        };
        let workload = FleetWorkload::Synthetic { mean_segments: 3 };
        let arrivals = ArrivalPlan::new(13, 80.0)
            .unwrap()
            .with_spike(LoadSpike::new(0.0, 300.0, 60.0).unwrap());
        let report = run_fleet(&workload, &cfg, 400, &arrivals).unwrap();
        assert!(report.accounts_exactly(), "{report:?}");
        assert!(
            report.scale_events.iter().any(|e| e.up),
            "overload must add shards: {:?}",
            report.scale_events
        );
        assert!(
            report.scale_events.iter().any(|e| !e.up),
            "calm tail must retire shards: {:?}",
            report.scale_events
        );
        for e in &report.scale_events {
            assert!(e.shards_after >= 2 && e.shards_after <= 6, "bounds hold: {e:?}");
        }
        for w in report.scale_events.windows(2) {
            assert!(
                w[1].at_ms - w[0].at_ms >= 300.0 - 1e-9,
                "cooldown violated: {:?}",
                report.scale_events
            );
        }
    }

    #[test]
    fn fleet_sheds_less_than_single_shard_at_equal_capacity() {
        // Same total capacity (4 slots, 16 queue seats), same stampede,
        // same crash instant. The fleet loses one failure domain of
        // four; the single-shard deployment loses everything.
        let sharded = FleetConfig {
            shards: 4,
            vnodes: 32,
            shard: SupervisorConfig {
                queue_capacity: 4,
                queue_deadline_ms: 1e9,
                slots: 1,
                step_ms: 10.0,
                ..SupervisorConfig::default()
            },
            faults: vec![ShardFault { at_ms: 120.0, shard: 1, kind: ShardFaultKind::Crash }],
            ..FleetConfig::default()
        };
        let single = FleetConfig {
            shards: 1,
            vnodes: 32,
            shard: SupervisorConfig {
                queue_capacity: 16,
                queue_deadline_ms: 1e9,
                slots: 4,
                step_ms: 10.0,
                ..SupervisorConfig::default()
            },
            faults: vec![ShardFault { at_ms: 120.0, shard: 0, kind: ShardFaultKind::Crash }],
            ..FleetConfig::default()
        };
        let workload = FleetWorkload::Synthetic { mean_segments: 3 };
        let arrivals = ArrivalPlan::new(29, 2.0).unwrap();
        let a = run_fleet(&workload, &sharded, 300, &arrivals).unwrap();
        let b = run_fleet(&workload, &single, 300, &arrivals).unwrap();
        assert!(a.accounts_exactly() && b.accounts_exactly());
        assert_eq!(b.routable_shards, 0, "the single shard was the whole fleet");
        assert!(
            a.shed < b.shed,
            "failure domains must contain the blast radius: fleet shed {} vs single {}",
            a.shed,
            b.shed
        );
    }

    #[test]
    fn transient_panic_recovers_from_checkpoint_inside_a_segment() {
        let cfg = FleetConfig {
            shards: 2,
            shard: SupervisorConfig {
                queue_capacity: 16,
                slots: 2,
                checkpoint_every: 5,
                ..SupervisorConfig::default()
            },
            ..FleetConfig::default()
        };
        let factory = |_: usize, r: u32| -> Box<dyn Bot> {
            if r == 0 {
                Box::new(CrashOnce { inner: GuidedBot::new(), at: 7, seen: 0 })
            } else {
                Box::new(GuidedBot::new())
            }
        };
        let workload = FleetWorkload::Engine {
            graph: Arc::new(fix_the_computer()),
            config: config(),
            factory: &factory,
        };
        let arrivals = ArrivalPlan::new(3, 5_000.0).unwrap();
        let report = quiet(|| run_fleet(&workload, &cfg, 4, &arrivals).unwrap());
        assert!(report.accounts_exactly(), "{report:?}");
        assert_eq!(report.recovered, 4, "{:?}", report.outcomes);
        assert!(report.restarts >= 4);
        assert!(report
            .outcomes
            .iter()
            .all(|o| matches!(o, SessionOutcome::Recovered { resumed_at_step: 5, restarts: 1 })));
    }

    #[test]
    fn power_loss_without_store_is_rejected() {
        let cfg = FleetConfig { power_loss_at_ms: vec![100.0], ..FleetConfig::default() };
        let workload = FleetWorkload::Synthetic { mean_segments: 2 };
        let arrivals = ArrivalPlan::new(1, 10.0).unwrap();
        assert!(run_fleet(&workload, &cfg, 4, &arrivals).is_err());
    }

    #[test]
    fn power_loss_with_clean_disk_recovers_every_acked_session() {
        use vgbl_store::DiskFaultPlan;
        let cfg = FleetConfig {
            shards: 2,
            vnodes: 32,
            shard: SupervisorConfig {
                queue_capacity: 16,
                queue_deadline_ms: 1e9,
                slots: 2,
                step_ms: 50.0,
                checkpoint_every: 3,
                ..SupervisorConfig::default()
            },
            store: Some(StoreConfig {
                snapshot_every: 4,
                dual_write: false,
                faults: DiskFaultPlan::new(7),
            }),
            power_loss_at_ms: vec![400.0],
            ..FleetConfig::default()
        };
        let factory = |_: usize, _: u32| -> Box<dyn Bot> { Box::new(GuidedBot::new()) };
        let workload = FleetWorkload::Engine {
            graph: Arc::new(fix_the_computer()),
            config: config(),
            factory: &factory,
        };
        let arrivals = ArrivalPlan::new(5, 1.0).unwrap();
        let report = run_fleet(&workload, &cfg, 10, &arrivals).unwrap();
        assert!(report.accounts_exactly(), "{report:?}");
        let d = report.durability.as_ref().expect("store configured");
        assert_eq!(report.lost_durable, 0, "clean disk loses nothing acked: {d:?}");
        assert!(d.lost.is_empty());
        assert!(d.cold_resumed >= 1, "power loss mid-run must cold-resume someone: {d:?}");
        assert!(report.recovered_cold >= 1, "{report:?}");
        assert!(report.recovered_cold <= report.recovered);
        assert_eq!(d.scrubs.len(), 1, "one scrub per power loss");
        assert!(d.scrubs[0].lost.is_empty(), "{:?}", d.scrubs[0]);
        // Every shed is the honest pre-first-checkpoint kind, never a
        // corrupt-record loss.
        for o in &report.outcomes {
            if let SessionOutcome::Shed { reason } = o {
                assert_eq!(reason, "power loss before first durable checkpoint", "{o:?}");
            }
        }
        assert_eq!(d.store.power_losses, 1);
        assert!(d.store.acked_records > 0);
    }

    #[test]
    fn power_loss_with_disk_faults_attributes_every_lost_session() {
        use vgbl_store::DiskFaultPlan;
        let cfg = FleetConfig {
            shards: 3,
            vnodes: 32,
            shard: SupervisorConfig {
                queue_capacity: 32,
                queue_deadline_ms: 1e9,
                slots: 1,
                step_ms: 10.0,
                checkpoint_every: 5,
                ..SupervisorConfig::default()
            },
            store: Some(StoreConfig {
                snapshot_every: 1_000_000,
                dual_write: false,
                faults: DiskFaultPlan::new(0xBAD_D15C)
                    .with_bit_rot(0.7)
                    .unwrap()
                    .with_torn_writes(0.9)
                    .unwrap(),
            }),
            power_loss_at_ms: vec![300.0],
            ..FleetConfig::default()
        };
        let workload = FleetWorkload::Synthetic { mean_segments: 6 };
        let arrivals = ArrivalPlan::new(17, 2.0).unwrap();
        let report = run_fleet(&workload, &cfg, 60, &arrivals).unwrap();
        assert!(report.accounts_exactly(), "{report:?}");
        let d = report.durability.as_ref().expect("store configured");
        assert!(!d.lost.is_empty(), "heavy rot must destroy someone's checkpoint: {d:?}");
        assert_eq!(report.lost_durable, d.lost.len());
        // Every durable loss names a session that was shed with the
        // corrupt-record reason — the attribution is exact, not vague.
        for l in &d.lost {
            assert!(
                matches!(
                    &report.outcomes[l.session],
                    SessionOutcome::Shed { reason } if reason == "cold restart: durable checkpoint corrupt"
                ),
                "lost session {l:?} has outcome {:?}",
                report.outcomes[l.session]
            );
        }
        // And no session was both lost and somehow served afterwards.
        let mut seen = std::collections::BTreeSet::new();
        for l in &d.lost {
            assert!(seen.insert(l.session), "session {l:?} lost twice");
        }
    }

    #[test]
    fn power_loss_dual_write_repairs_single_copy_rot() {
        use vgbl_store::DiskFaultPlan;
        let store_for = |dual: bool| StoreConfig {
            snapshot_every: 1_000_000,
            dual_write: dual,
            faults: DiskFaultPlan::new(0xBAD_D15C).with_bit_rot(0.7).unwrap(),
        };
        let cfg_for = |dual: bool| FleetConfig {
            shards: 3,
            vnodes: 32,
            shard: SupervisorConfig {
                queue_capacity: 32,
                queue_deadline_ms: 1e9,
                slots: 1,
                step_ms: 10.0,
                checkpoint_every: 5,
                ..SupervisorConfig::default()
            },
            store: Some(store_for(dual)),
            power_loss_at_ms: vec![300.0],
            ..FleetConfig::default()
        };
        let workload = FleetWorkload::Synthetic { mean_segments: 6 };
        let arrivals = ArrivalPlan::new(17, 2.0).unwrap();
        let single = run_fleet(&workload, &cfg_for(false), 60, &arrivals).unwrap();
        let dual = run_fleet(&workload, &cfg_for(true), 60, &arrivals).unwrap();
        let ds = single.durability.as_ref().unwrap();
        let dd = dual.durability.as_ref().unwrap();
        assert!(
            dual.lost_durable < single.lost_durable,
            "a redundant copy must repair most single-copy rot: dual {:?} vs single {:?}",
            dd.lost,
            ds.lost
        );
        assert!(
            !dd.scrubs.is_empty() && !dd.scrubs[0].repaired.is_empty(),
            "repairs must be audited: {:?}",
            dd.scrubs
        );
    }

    #[test]
    fn power_loss_fleet_is_byte_identical_across_reruns() {
        use vgbl_store::DiskFaultPlan;
        let cfg = FleetConfig {
            shards: 3,
            vnodes: 32,
            shard: SupervisorConfig {
                queue_capacity: 16,
                queue_deadline_ms: 1e9,
                slots: 1,
                step_ms: 10.0,
                checkpoint_every: 5,
                ..SupervisorConfig::default()
            },
            faults: vec![ShardFault { at_ms: 150.0, shard: 1, kind: ShardFaultKind::Crash }],
            store: Some(StoreConfig {
                snapshot_every: 3,
                dual_write: true,
                faults: DiskFaultPlan::new(99)
                    .with_bit_rot(0.3)
                    .unwrap()
                    .with_torn_writes(0.5)
                    .unwrap()
                    .with_lost_flushes(0.2)
                    .unwrap()
                    .with_stale_reads(0.2)
                    .unwrap(),
            }),
            power_loss_at_ms: vec![200.0, 450.0],
            ..FleetConfig::default()
        };
        let workload = FleetWorkload::Synthetic { mean_segments: 5 };
        let arrivals = ArrivalPlan::new(23, 2.0).unwrap();
        let a = run_fleet(&workload, &cfg, 80, &arrivals).unwrap();
        let b = run_fleet(&workload, &cfg, 80, &arrivals).unwrap();
        assert_eq!(a, b, "same seeds, same faults, same report — storage included");
        assert_eq!(a.durability, b.durability);
        assert_eq!(a.durability.as_ref().unwrap().scrubs.len(), 2);
    }

    #[test]
    fn journeys_cover_every_session_across_crash_and_power_loss() {
        use vgbl_store::DiskFaultPlan;
        let cfg = FleetConfig {
            shards: 3,
            vnodes: 32,
            journeys: true,
            shard: SupervisorConfig {
                queue_capacity: 16,
                queue_deadline_ms: 1e9,
                slots: 2,
                step_ms: 10.0,
                checkpoint_every: 5,
                ..SupervisorConfig::default()
            },
            faults: vec![ShardFault { at_ms: 150.0, shard: 1, kind: ShardFaultKind::Crash }],
            store: Some(StoreConfig {
                snapshot_every: 4,
                dual_write: true,
                faults: DiskFaultPlan::new(99),
            }),
            power_loss_at_ms: vec![300.0],
            ..FleetConfig::default()
        };
        let workload = FleetWorkload::Synthetic { mean_segments: 5 };
        let arrivals = ArrivalPlan::new(23, 2.0).unwrap();
        let report = run_fleet(&workload, &cfg, 80, &arrivals).unwrap();

        // Total and exclusive: one journey per session, one terminal
        // each, chains intact. (debug_assert_consistent re-checks this
        // on every debug run; this pins it in release too.)
        assert_eq!(report.journeys.len(), report.sessions);
        for j in &report.journeys {
            assert_eq!(j.events.iter().filter(|e| e.kind.is_terminal()).count(), 1);
            assert!(j.chain_ok(), "session {}: broken span chain", j.session);
        }

        // The crash evacuated or the power loss cold-resumed someone
        // across shards, and the stitched journey shows the hop with
        // re-minted generation identity.
        let cross = report
            .journeys
            .iter()
            .find(|j| {
                j.events.iter().any(|e| {
                    matches!(
                        e.kind,
                        JourneyEventKind::MigratedIn { .. } | JourneyEventKind::ColdResume { .. }
                    )
                })
            })
            .expect("a crash + power loss campaign produces a cross-shard journey");
        assert!(cross.generations() > 1, "a hop re-mints the generation: {cross:?}");

        // Every migration handoff record carries the same identity the
        // destination shard's journey leg was minted with.
        for m in &report.migrations {
            let expect = TraceCtx::mint(cfg.router_seed, m.session as u64, 0);
            assert_eq!(m.trace_id, expect.trace_id, "trace id is generation-independent");
            assert_ne!(m.span_id, 0, "handoff carries the resuming span");
        }

        // Off by default: the same run with journeys disabled produces
        // an empty journey vector and an otherwise identical report.
        let plain = run_fleet(
            &workload,
            &FleetConfig { journeys: false, ..cfg.clone() },
            80,
            &arrivals,
        )
        .unwrap();
        assert!(plain.journeys.is_empty());
        assert_eq!(plain.outcomes, report.outcomes);
        assert_eq!(plain.migrations, report.migrations);
    }
}
