//! Session logs and learning reports.
//!
//! §3.2: "Students can obtain knowledge from the process of making
//! decision and interaction." That process is only assessable if it is
//! *recorded*: the engine appends a [`LogEvent`] for every meaningful
//! moment, and [`LearningReport`] aggregates many sessions into the
//! metrics EXP-9 reports (completion, decisions, knowledge events,
//! rewards).

use std::collections::BTreeMap;

/// One recorded moment of a play session, stamped with the session clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogEvent {
    /// The player entered a scenario.
    ScenarioEntered {
        /// Session time in ms.
        t_ms: u64,
        /// Scenario name.
        name: String,
    },
    /// The player examined (clicked) an object.
    ObjectExamined {
        /// Session time in ms.
        t_ms: u64,
        /// Scenario name.
        scenario: String,
        /// Object name.
        object: String,
    },
    /// An item entered the backpack.
    ItemTaken {
        /// Session time in ms.
        t_ms: u64,
        /// Item name.
        item: String,
    },
    /// An inventory item was used on an object.
    ItemUsed {
        /// Session time in ms.
        t_ms: u64,
        /// Item name.
        item: String,
        /// Object it was applied to.
        object: String,
    },
    /// An NPC spoke to the player.
    NpcTalked {
        /// Session time in ms.
        t_ms: u64,
        /// NPC name.
        npc: String,
    },
    /// Knowledge content was delivered (text/image/web page).
    KnowledgeDelivered {
        /// Session time in ms.
        t_ms: u64,
        /// `"text"`, `"image"` or `"web"`.
        kind: String,
    },
    /// The score changed.
    ScoreDelta {
        /// Session time in ms.
        t_ms: u64,
        /// The delta applied.
        delta: i64,
    },
    /// A reward object was earned.
    RewardEarned {
        /// Session time in ms.
        t_ms: u64,
        /// Reward name.
        name: String,
    },
    /// A player decision (any non-tick input).
    Decision {
        /// Session time in ms.
        t_ms: u64,
        /// Input tag (`"click"`, `"drag"`, `"apply"`, `"key"`).
        kind: String,
    },
    /// The game ended.
    Ended {
        /// Session time in ms.
        t_ms: u64,
        /// Outcome name.
        outcome: String,
    },
}

impl LogEvent {
    /// The event's timestamp.
    pub fn t_ms(&self) -> u64 {
        match self {
            LogEvent::ScenarioEntered { t_ms, .. }
            | LogEvent::ObjectExamined { t_ms, .. }
            | LogEvent::ItemTaken { t_ms, .. }
            | LogEvent::ItemUsed { t_ms, .. }
            | LogEvent::NpcTalked { t_ms, .. }
            | LogEvent::KnowledgeDelivered { t_ms, .. }
            | LogEvent::ScoreDelta { t_ms, .. }
            | LogEvent::RewardEarned { t_ms, .. }
            | LogEvent::Decision { t_ms, .. }
            | LogEvent::Ended { t_ms, .. } => *t_ms,
        }
    }
}

/// The append-only record of one play session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionLog {
    events: Vec<LogEvent>,
}

impl SessionLog {
    /// An empty log.
    pub fn new() -> SessionLog {
        SessionLog::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: LogEvent) {
        self.events.push(event);
    }

    /// All events in order.
    pub fn events(&self) -> &[LogEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of player decisions.
    pub fn decisions(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, LogEvent::Decision { .. }))
            .count()
    }

    /// Number of knowledge-delivery events (§3.2).
    pub fn knowledge_events(&self) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    LogEvent::KnowledgeDelivered { .. } | LogEvent::NpcTalked { .. }
                )
            })
            .count()
    }

    /// Number of rewards earned.
    pub fn rewards(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, LogEvent::RewardEarned { .. }))
            .count()
    }

    /// The outcome, if the session ended.
    pub fn outcome(&self) -> Option<&str> {
        self.events.iter().rev().find_map(|e| match e {
            LogEvent::Ended { outcome, .. } => Some(outcome.as_str()),
            _ => None,
        })
    }

    /// Timestamp of the last event (session duration proxy).
    pub fn duration_ms(&self) -> u64 {
        self.events.iter().map(LogEvent::t_ms).max().unwrap_or(0)
    }

    /// How often each object was examined, per scenario — the
    /// "attention heatmap" an instructor reads to see which props
    /// students actually investigate. Keys are `(scenario, object)`.
    pub fn examinations_per_object(&self) -> BTreeMap<(String, String), usize> {
        let mut out: BTreeMap<(String, String), usize> = BTreeMap::new();
        for e in &self.events {
            if let LogEvent::ObjectExamined { scenario, object, .. } = e {
                *out.entry((scenario.clone(), object.clone())).or_insert(0) += 1;
            }
        }
        out
    }

    /// `(points gained, points lost)` over the session — §3.2's "students
    /// will get different feedback" made measurable: gains are correct
    /// decisions, losses are penalised ones.
    pub fn score_swings(&self) -> (i64, i64) {
        let mut gained = 0i64;
        let mut lost = 0i64;
        for e in &self.events {
            if let LogEvent::ScoreDelta { delta, .. } = e {
                if *delta >= 0 {
                    gained += delta;
                } else {
                    lost -= delta;
                }
            }
        }
        (gained, lost)
    }

    /// Milliseconds spent in each scenario, computed from entry events
    /// and the final timestamp.
    pub fn time_per_scenario(&self) -> BTreeMap<String, u64> {
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        let entries: Vec<(&str, u64)> = self
            .events
            .iter()
            .filter_map(|e| match e {
                LogEvent::ScenarioEntered { name, t_ms } => Some((name.as_str(), *t_ms)),
                _ => None,
            })
            .collect();
        let end = self.duration_ms();
        for (i, (name, start)) in entries.iter().enumerate() {
            let stop = entries.get(i + 1).map(|(_, t)| *t).unwrap_or(end);
            *out.entry((*name).to_owned()).or_insert(0) += stop.saturating_sub(*start);
        }
        out
    }

    /// Folds the log into a windowed engagement series on the session
    /// clock: one sample per event, binned at `bin_ms`. An analyst reads
    /// it as "interactions over the last N seconds of session time" —
    /// the windowed counterpart to the scalar totals above, and the
    /// shape EXP-9 plots to find where a scenario loses its players.
    /// The ring keeps `bins` bins; events older than the retention
    /// horizon at ingest stay in the running totals but fall out of
    /// windows, exactly like every other series in the pipeline.
    pub fn engagement_series(&self, bin_ms: u64, bins: usize) -> vgbl_obs::Series {
        let series = vgbl_obs::Series::standalone(vgbl_obs::SeriesSpec::counter(
            "analytics.engagement",
            bin_ms.saturating_mul(1_000),
            bins,
        ));
        for e in &self.events {
            series.record(e.t_ms().saturating_mul(1_000), 1);
        }
        series
    }
}

/// Escapes one CSV field (RFC-4180 style quoting). `\r` must be quoted
/// like `\n`: a bare carriage return inside an unquoted field is a row
/// break to compliant readers (RFC 4180 rows end in CRLF).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

impl SessionLog {
    /// Exports the log as CSV (`t_ms,event,detail_1,detail_2`) — the
    /// interchange format instructors pull into their gradebooks.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_ms,event,a,b\n");
        for e in &self.events {
            let (t, kind, a, b): (u64, &str, String, String) = match e {
                LogEvent::ScenarioEntered { t_ms, name } => {
                    (*t_ms, "scenario_entered", name.clone(), String::new())
                }
                LogEvent::ObjectExamined { t_ms, scenario, object } => {
                    (*t_ms, "object_examined", scenario.clone(), object.clone())
                }
                LogEvent::ItemTaken { t_ms, item } => {
                    (*t_ms, "item_taken", item.clone(), String::new())
                }
                LogEvent::ItemUsed { t_ms, item, object } => {
                    (*t_ms, "item_used", item.clone(), object.clone())
                }
                LogEvent::NpcTalked { t_ms, npc } => {
                    (*t_ms, "npc_talked", npc.clone(), String::new())
                }
                LogEvent::KnowledgeDelivered { t_ms, kind } => {
                    (*t_ms, "knowledge", kind.clone(), String::new())
                }
                LogEvent::ScoreDelta { t_ms, delta } => {
                    (*t_ms, "score_delta", delta.to_string(), String::new())
                }
                LogEvent::RewardEarned { t_ms, name } => {
                    (*t_ms, "reward", name.clone(), String::new())
                }
                LogEvent::Decision { t_ms, kind } => {
                    (*t_ms, "decision", kind.clone(), String::new())
                }
                LogEvent::Ended { t_ms, outcome } => {
                    (*t_ms, "ended", outcome.clone(), String::new())
                }
            };
            out.push_str(&format!(
                "{t},{kind},{},{}\n",
                csv_field(&a),
                csv_field(&b)
            ));
        }
        out
    }
}

/// Decode-reuse metrics of the shared decoded-GOP cache backing a cohort
/// of playback sessions (EXP-11). Where [`LearningReport`] says what a
/// cohort *learned*, this says what serving them *cost*: a high
/// [`hit_rate`](DecodeReuse::hit_rate) means the cohort decoded each GOP
/// roughly once in total instead of once per student.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeReuse {
    /// Cache hits (lookups answered by an already-decoded GOP).
    pub hits: u64,
    /// Cache misses (lookups that decoded, or — with miss coalescing —
    /// waited on a concurrent decode of the same GOP).
    pub misses: u64,
    /// GOPs evicted to stay within the capacity budget.
    pub evictions: u64,
    /// GOPs resident when the snapshot was taken.
    pub resident_gops: usize,
    /// Approximate bytes of decoded frames resident at snapshot time.
    pub resident_bytes: usize,
}

impl DecodeReuse {
    /// Snapshots the counters of a decoded-GOP cache.
    pub fn from_cache(stats: &vgbl_media::CacheStats) -> DecodeReuse {
        DecodeReuse {
            hits: stats.hits,
            misses: stats.misses,
            evictions: stats.evictions,
            resident_gops: stats.resident_gops,
            resident_bytes: stats.resident_bytes,
        }
    }

    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served without decoding. Higher is better;
    /// **empty input (no lookups) returns the perfect value `1.0`** —
    /// the workspace-wide convention for ratio metrics (an untouched
    /// cache has wasted no decode work).
    pub fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            1.0
        } else {
            self.hits as f64 / (self.hits + self.misses) as f64
        }
    }
}

/// Delivery-resilience metrics over a cohort of faulty-link streaming
/// sessions plus the cohort's fault-isolation outcomes (EXP-12). Where
/// [`DecodeReuse`] says what serving a cohort *cost*, this says how the
/// cohort *degraded* under loss, corruption and session failures — and
/// by how little. Deterministic: built from seeded fault plans, two runs
/// with the same seeds produce identical reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// Streaming sessions aggregated.
    pub sessions: usize,
    /// Cohort sessions that failed outright (panicked or errored).
    pub failed_sessions: usize,
    /// Re-requests issued across the cohort.
    pub retries: usize,
    /// Delivery attempts that hit their deadline.
    pub timeouts: usize,
    /// Chunks abandoned after the retry budget.
    pub gave_up: usize,
    /// Total milliseconds of freeze-frame concealment.
    pub conceal_ms: f64,
    /// Total milliseconds of rebuffering.
    pub stall_ms: f64,
    /// Total milliseconds of real content played.
    pub play_ms: f64,
    /// Mean fraction of watched time served from real content.
    pub avg_delivery_ratio: f64,
}

impl ResilienceReport {
    /// Aggregates per-session [`StreamStats`](vgbl_stream::StreamStats)
    /// and the per-session outcomes of the hosting cohort (pass an empty
    /// slice when sessions were not cohort-hosted).
    ///
    /// [`avg_delivery_ratio`](ResilienceReport::avg_delivery_ratio) is
    /// higher-is-better; **an empty cohort gets the perfect value
    /// `1.0`** — the workspace-wide convention for ratio metrics (no
    /// session was degraded).
    pub fn from_sessions(
        stats: &[vgbl_stream::StreamStats],
        outcomes: &[crate::server::SessionOutcome],
    ) -> ResilienceReport {
        let n = stats.len();
        let ratio_sum: f64 = stats.iter().map(|s| s.delivery_ratio()).sum();
        ResilienceReport {
            sessions: n,
            failed_sessions: outcomes.iter().filter(|o| o.is_failed()).count(),
            retries: stats.iter().map(|s| s.retries).sum(),
            timeouts: stats.iter().map(|s| s.timeouts).sum(),
            gave_up: stats.iter().map(|s| s.gave_up).sum(),
            conceal_ms: stats.iter().map(|s| s.conceal_ms).sum(),
            stall_ms: stats.iter().map(|s| s.stall_ms).sum(),
            play_ms: stats.iter().map(|s| s.play_ms).sum(),
            avg_delivery_ratio: if n == 0 { 1.0 } else { ratio_sum / n as f64 },
        }
    }

    /// Fraction of watched time lost to concealment, cohort-wide. Lower
    /// is better; **empty input (nothing watched) returns the perfect
    /// value `0.0`** — the workspace-wide convention for ratio metrics.
    pub fn conceal_ratio(&self) -> f64 {
        let total = self.play_ms + self.conceal_ms;
        if total == 0.0 {
            0.0
        } else {
            self.conceal_ms / total
        }
    }

    /// Cohort-wide rebuffering ratio: total stall time over total play
    /// time — the cohort mirror of
    /// [`StreamStats::rebuffer_ratio`](vgbl_stream::StreamStats::rebuffer_ratio),
    /// including its fix: a cohort that stalled without ever playing
    /// reports `f64::INFINITY`, not a perfect `0.0`. Lower is better;
    /// empty input returns the perfect value `0.0`.
    pub fn rebuffer_ratio(&self) -> f64 {
        if self.play_ms == 0.0 {
            if self.stall_ms > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            self.stall_ms / self.play_ms
        }
    }
}

/// Order statistics over a batch of simulated-millisecond latencies
/// (queue waits, recovery latencies — EXP-14's table columns).
///
/// Exact nearest-rank percentiles over the full sample set, unlike the
/// obs histogram's power-of-two bucket bounds: the report wants the real
/// p99, the registry wants O(1) memory. Deterministic — the samples are
/// sorted, so accumulation order never shows through.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Sum of all samples, ms.
    pub sum_ms: f64,
    /// Smallest sample (0 when empty).
    pub min_ms: f64,
    /// Largest sample (0 when empty).
    pub max_ms: f64,
    /// Median (nearest-rank; 0 when empty).
    pub p50_ms: f64,
    /// 99th percentile (nearest-rank; 0 when empty).
    pub p99_ms: f64,
}

impl LatencySummary {
    /// Summarises `samples` (order-insensitive; the input is not
    /// modified). Empty input yields all-zero statistics.
    pub fn from_samples_ms(samples: &[f64]) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary {
                count: 0,
                sum_ms: 0.0,
                min_ms: 0.0,
                max_ms: 0.0,
                p50_ms: 0.0,
                p99_ms: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latency samples must not be NaN"));
        let nearest = |p: usize| {
            let rank = (sorted.len() * p).div_ceil(100).max(1);
            sorted[rank - 1]
        };
        LatencySummary {
            count: sorted.len(),
            sum_ms: sorted.iter().sum(),
            min_ms: sorted[0],
            max_ms: sorted[sorted.len() - 1],
            p50_ms: nearest(50),
            p99_ms: nearest(99),
        }
    }

    /// Mean sample, ms (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ms / self.count as f64
        }
    }
}

/// Aggregate learning metrics over a cohort of sessions (EXP-9).
#[derive(Debug, Clone, PartialEq)]
pub struct LearningReport {
    /// Number of sessions aggregated.
    pub sessions: usize,
    /// Sessions that reached an `end` action.
    pub completed: usize,
    /// Mean decisions per session.
    pub avg_decisions: f64,
    /// Mean knowledge events per session.
    pub avg_knowledge: f64,
    /// Mean rewards per session.
    pub avg_rewards: f64,
    /// Mean final score per session.
    pub avg_score: f64,
    /// Mean session duration in ms.
    pub avg_duration_ms: f64,
}

impl LearningReport {
    /// Aggregates `(log, final_score)` pairs.
    pub fn from_sessions<'a, I>(sessions: I) -> LearningReport
    where
        I: IntoIterator<Item = (&'a SessionLog, i64)>,
    {
        let mut n = 0usize;
        let mut completed = 0usize;
        let (mut dec, mut knw, mut rwd, mut scr, mut dur) = (0f64, 0f64, 0f64, 0f64, 0f64);
        for (log, score) in sessions {
            n += 1;
            if log.outcome().is_some() {
                completed += 1;
            }
            dec += log.decisions() as f64;
            knw += log.knowledge_events() as f64;
            rwd += log.rewards() as f64;
            scr += score as f64;
            dur += log.duration_ms() as f64;
        }
        let d = n.max(1) as f64;
        LearningReport {
            sessions: n,
            completed,
            avg_decisions: dec / d,
            avg_knowledge: knw / d,
            avg_rewards: rwd / d,
            avg_score: scr / d,
            avg_duration_ms: dur / d,
        }
    }

    /// Fraction of sessions that completed. Higher is better; **empty
    /// input (no sessions) returns the perfect value `1.0`** — the
    /// workspace-wide convention for ratio metrics (no session failed
    /// to complete).
    pub fn completion_rate(&self) -> f64 {
        if self.sessions == 0 {
            1.0
        } else {
            self.completed as f64 / self.sessions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_log() -> SessionLog {
        let mut log = SessionLog::new();
        log.push(LogEvent::ScenarioEntered { t_ms: 0, name: "classroom".into() });
        log.push(LogEvent::Decision { t_ms: 100, kind: "click".into() });
        log.push(LogEvent::ObjectExamined {
            t_ms: 100,
            scenario: "classroom".into(),
            object: "computer".into(),
        });
        log.push(LogEvent::KnowledgeDelivered { t_ms: 100, kind: "text".into() });
        log.push(LogEvent::ScenarioEntered { t_ms: 400, name: "market".into() });
        log.push(LogEvent::Decision { t_ms: 500, kind: "drag".into() });
        log.push(LogEvent::ItemTaken { t_ms: 500, item: "ram".into() });
        log.push(LogEvent::ScenarioEntered { t_ms: 700, name: "classroom".into() });
        log.push(LogEvent::Decision { t_ms: 900, kind: "apply".into() });
        log.push(LogEvent::NpcTalked { t_ms: 950, npc: "teacher".into() });
        log.push(LogEvent::RewardEarned { t_ms: 1000, name: "medic".into() });
        log.push(LogEvent::Ended { t_ms: 1000, outcome: "win".into() });
        log
    }

    #[test]
    fn counters() {
        let log = demo_log();
        assert_eq!(log.decisions(), 3);
        assert_eq!(log.knowledge_events(), 2);
        assert_eq!(log.rewards(), 1);
        assert_eq!(log.outcome(), Some("win"));
        assert_eq!(log.duration_ms(), 1000);
        assert_eq!(log.len(), 12);
        assert!(!log.is_empty());
    }

    #[test]
    fn examination_heatmap_counts_repeats() {
        let mut log = demo_log();
        log.push(LogEvent::ObjectExamined {
            t_ms: 1100,
            scenario: "classroom".into(),
            object: "computer".into(),
        });
        log.push(LogEvent::ObjectExamined {
            t_ms: 1200,
            scenario: "market".into(),
            object: "fan".into(),
        });
        let heat = log.examinations_per_object();
        assert_eq!(heat[&("classroom".to_string(), "computer".to_string())], 2);
        assert_eq!(heat[&("market".to_string(), "fan".to_string())], 1);
    }

    #[test]
    fn score_swings_split_gains_and_losses() {
        let mut log = SessionLog::new();
        log.push(LogEvent::ScoreDelta { t_ms: 0, delta: 10 });
        log.push(LogEvent::ScoreDelta { t_ms: 1, delta: -3 });
        log.push(LogEvent::ScoreDelta { t_ms: 2, delta: 5 });
        log.push(LogEvent::ScoreDelta { t_ms: 3, delta: -2 });
        assert_eq!(log.score_swings(), (15, 5));
        assert_eq!(SessionLog::new().score_swings(), (0, 0));
    }

    #[test]
    fn time_per_scenario_accumulates_revisits() {
        let log = demo_log();
        let t = log.time_per_scenario();
        // classroom: [0,400) + [700,1000) = 700; market: [400,700) = 300.
        assert_eq!(t["classroom"], 700);
        assert_eq!(t["market"], 300);
    }

    #[test]
    fn empty_log_is_sane() {
        let log = SessionLog::new();
        assert_eq!(log.outcome(), None);
        assert_eq!(log.duration_ms(), 0);
        assert!(log.time_per_scenario().is_empty());
    }

    #[test]
    fn report_aggregates() {
        let complete = demo_log();
        let mut incomplete = SessionLog::new();
        incomplete.push(LogEvent::ScenarioEntered { t_ms: 0, name: "classroom".into() });
        incomplete.push(LogEvent::Decision { t_ms: 200, kind: "click".into() });

        let report =
            LearningReport::from_sessions(vec![(&complete, 20i64), (&incomplete, 0i64)]);
        assert_eq!(report.sessions, 2);
        assert_eq!(report.completed, 1);
        assert_eq!(report.completion_rate(), 0.5);
        assert_eq!(report.avg_decisions, 2.0);
        assert_eq!(report.avg_knowledge, 1.0);
        assert_eq!(report.avg_rewards, 0.5);
        assert_eq!(report.avg_score, 10.0);
        assert_eq!(report.avg_duration_ms, 600.0);
    }

    #[test]
    fn csv_export_is_parseable_and_complete() {
        let log = demo_log();
        let csv = log.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t_ms,event,a,b");
        assert_eq!(lines.len(), log.len() + 1);
        assert!(lines.iter().any(|l| l.starts_with("0,scenario_entered,classroom")));
        assert!(lines.iter().any(|l| l.contains("item_taken,ram")));
        assert!(lines.iter().any(|l| l.contains("ended,win")));
        // Every data row has exactly 4 columns (no field carries commas
        // in this log).
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 4, "row: {line}");
        }
    }

    #[test]
    fn csv_quotes_awkward_fields() {
        let mut log = SessionLog::new();
        log.push(LogEvent::ScenarioEntered { t_ms: 0, name: "room, with \"quotes\"".into() });
        log.push(LogEvent::ScenarioEntered { t_ms: 1, name: "line\nbreak".into() });
        // Regression: a bare carriage return used to pass through
        // unquoted, splitting the row for RFC-4180 readers.
        log.push(LogEvent::ScenarioEntered { t_ms: 2, name: "carriage\rreturn".into() });
        let csv = log.to_csv();
        assert!(csv.contains("\"room, with \"\"quotes\"\"\""));
        assert!(csv.contains("\"line\nbreak\""));
        assert!(csv.contains("\"carriage\rreturn\""), "CR fields must be quoted");
    }

    #[test]
    fn decode_reuse_snapshots_cache_counters() {
        use vgbl_media::GopCache;

        let cache = GopCache::new(4);
        // Two misses, one hit across two keys.
        for key in [0usize, 0, 5] {
            cache
                .get_or_decode(vgbl_media::VideoId::from_raw(1), key, || Ok(Vec::new()))
                .unwrap();
        }
        let reuse = DecodeReuse::from_cache(&cache.stats());
        assert_eq!(reuse.lookups(), 3);
        assert_eq!(reuse.hits, 1);
        assert_eq!(reuse.misses, 2);
        assert_eq!(reuse.resident_gops, 2);
        assert!((reuse.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        // Empty-input convention: perfect value (1.0 for higher-is-better).
        assert_eq!(DecodeReuse::from_cache(&GopCache::new(4).stats()).hit_rate(), 1.0);
    }

    #[test]
    fn report_empty_cohort() {
        let report = LearningReport::from_sessions(std::iter::empty());
        assert_eq!(report.sessions, 0);
        // Empty-input convention: perfect value (1.0 for higher-is-better).
        assert_eq!(report.completion_rate(), 1.0);
    }

    #[test]
    fn latency_summary_is_exact_and_order_insensitive() {
        let empty = LatencySummary::from_samples_ms(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p99_ms, 0.0);
        assert_eq!(empty.mean_ms(), 0.0);

        let forward: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        let a = LatencySummary::from_samples_ms(&forward);
        let b = LatencySummary::from_samples_ms(&reversed);
        assert_eq!(a, b, "sample order must not show through");
        assert_eq!(a.count, 100);
        assert_eq!(a.min_ms, 1.0);
        assert_eq!(a.max_ms, 100.0);
        assert_eq!(a.p50_ms, 50.0, "exact nearest-rank median");
        assert_eq!(a.p99_ms, 99.0, "exact nearest-rank p99");
        assert_eq!(a.mean_ms(), 50.5);

        let single = LatencySummary::from_samples_ms(&[7.5]);
        assert_eq!((single.min_ms, single.p50_ms, single.p99_ms, single.max_ms), (7.5, 7.5, 7.5, 7.5));
    }

    #[test]
    fn fault_resilience_report_aggregates_and_reproduces() {
        use crate::server::SessionOutcome;
        let s = |retries, timeouts, gave_up, conceal_ms, play_ms| vgbl_stream::StreamStats {
            startup_ms: 10.0,
            stalls: 1,
            stall_ms: 5.0,
            bytes_fetched: 1000,
            wasted_bytes: 0,
            play_ms,
            retries,
            timeouts,
            gave_up,
            conceal_ms,
            fast_failed: 0,
        };
        let stats = vec![s(3, 2, 1, 100.0, 900.0), s(0, 0, 0, 0.0, 1000.0)];
        let outcomes = vec![
            SessionOutcome::Completed,
            SessionOutcome::Failed { reason: "x".into() },
        ];
        let a = ResilienceReport::from_sessions(&stats, &outcomes);
        assert_eq!(a.sessions, 2);
        assert_eq!(a.failed_sessions, 1);
        assert_eq!((a.retries, a.timeouts, a.gave_up), (3, 2, 1));
        assert_eq!(a.conceal_ms, 100.0);
        assert_eq!(a.play_ms, 1900.0);
        assert!((a.conceal_ratio() - 100.0 / 2000.0).abs() < 1e-12);
        assert!((a.avg_delivery_ratio - (0.9 + 1.0) / 2.0).abs() < 1e-12);
        // Same inputs ⇒ byte-identical report.
        let b = ResilienceReport::from_sessions(&stats, &outcomes);
        assert_eq!(a, b);
        // Empty cohort is sane.
        let empty = ResilienceReport::from_sessions(&[], &[]);
        assert_eq!(empty.sessions, 0);
        assert_eq!(empty.avg_delivery_ratio, 1.0);
        assert_eq!(empty.conceal_ratio(), 0.0);
    }
    #[test]
    fn engagement_series_bins_events_on_the_session_clock() {
        let mut log = SessionLog::new();
        for (t, item) in [(100u64, "key"), (150, "coin"), (2_600, "badge")] {
            log.push(LogEvent::ItemTaken { t_ms: t, item: item.into() });
        }
        // 1 s bins: events at 100/150 ms share bin 0, 2 600 ms is bin 2.
        let series = log.engagement_series(1_000, 8);
        assert_eq!(series.totals().count, 3);
        assert_eq!(series.window(999_999, 1_000_000).count, 2, "first second");
        assert_eq!(series.window(2_999_999, 1_000_000).count, 1, "third second");
        assert_eq!(series.window(2_999_999, 3_000_000).count, 3, "whole session");
        // Same log ⇒ byte-identical series totals.
        assert_eq!(log.engagement_series(1_000, 8).totals(), series.totals());
    }
}
