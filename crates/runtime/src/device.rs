//! Input-device mappings.
//!
//! §2 of the paper: "Remote control, PDA, tablet, keyboard and mouse are
//! used for delivering the control made by users" — interactive TV
//! deployments cannot assume a pointer. [`RemoteControl`] maps the
//! ten-button TV remote onto the engine's pointer-based input model:
//! arrow keys move a focus ring over the visible objects, OK activates
//! the focused object, number keys answer dialogue choices, and a
//! dedicated TAKE button drags the focused item into the backpack.

use vgbl_scene::InteractiveObject;

use crate::engine::GameSession;
use crate::feedback::Feedback;
use crate::input::InputEvent;
use crate::Result;

/// The buttons of a minimal interactive-TV remote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteButton {
    /// Move the focus ring backwards.
    Up,
    /// Move the focus ring forwards.
    Down,
    /// Alias of [`RemoteButton::Up`] for horizontal layouts.
    Left,
    /// Alias of [`RemoteButton::Down`] for horizontal layouts.
    Right,
    /// Activate (click) the focused object.
    Ok,
    /// Drag the focused object into the backpack.
    Take,
    /// Use a held item (by 1-based inventory position) on the focused
    /// object.
    UseItem(u8),
    /// Digit keys: answer a dialogue choice (1-based).
    Number(u8),
    /// Leave the current conversation.
    Back,
}

/// A focus-ring adapter translating remote presses into engine inputs.
#[derive(Debug, Clone, Default)]
pub struct RemoteControl {
    /// Position in the reading-order list of visible objects.
    focus: usize,
}

impl RemoteControl {
    /// A remote with the focus on the first object.
    pub fn new() -> RemoteControl {
        RemoteControl::default()
    }

    /// The visible objects in reading order (top-to-bottom, then
    /// left-to-right) — the order the focus ring walks.
    fn ring<'a>(&self, session: &'a GameSession) -> Result<Vec<&'a InteractiveObject>> {
        let mut objects = session.visible_objects()?;
        objects.sort_by_key(|o| {
            let c = o.bounds.center();
            (c.y, c.x)
        });
        Ok(objects)
    }

    /// The currently focused object, if any are visible.
    pub fn focused<'a>(
        &self,
        session: &'a GameSession,
    ) -> Result<Option<&'a InteractiveObject>> {
        let ring = self.ring(session)?;
        if ring.is_empty() {
            return Ok(None);
        }
        Ok(Some(ring[self.focus.min(ring.len() - 1)]))
    }

    /// Handles one remote press: moves focus locally or forwards a
    /// translated input to the session. Focus moves produce no feedback
    /// (an empty vector), translated presses return the engine's.
    pub fn press(
        &mut self,
        session: &mut GameSession,
        button: RemoteButton,
    ) -> Result<Vec<Feedback>> {
        let ring_len = self.ring(session)?.len();
        match button {
            RemoteButton::Up | RemoteButton::Left => {
                if ring_len > 0 {
                    self.focus = (self.focus + ring_len - 1) % ring_len;
                }
                Ok(Vec::new())
            }
            RemoteButton::Down | RemoteButton::Right => {
                if ring_len > 0 {
                    self.focus = (self.focus + 1) % ring_len;
                }
                Ok(Vec::new())
            }
            RemoteButton::Ok => match self.focused(session)? {
                Some(o) => {
                    let c = o.bounds.center();
                    session.handle(InputEvent::click(c.x, c.y))
                }
                None => Ok(Vec::new()),
            },
            RemoteButton::Take => match self.focused(session)? {
                Some(o) => {
                    let c = o.bounds.center();
                    let w = session.config().inventory_window.center();
                    session.handle(InputEvent::drag(c.x, c.y, w.x, w.y))
                }
                None => Ok(Vec::new()),
            },
            RemoteButton::UseItem(n) => {
                let item = session
                    .inventory()
                    .items()
                    .nth(n.saturating_sub(1) as usize)
                    .map(|(name, _)| name.to_owned());
                match (item, self.focused(session)?) {
                    (Some(item), Some(o)) => {
                        let c = o.bounds.center();
                        session.handle(InputEvent::apply(item, c.x, c.y))
                    }
                    _ => Ok(Vec::new()),
                }
            }
            RemoteButton::Number(n) => {
                session.handle(InputEvent::Choose(n.saturating_sub(1) as usize))
            }
            RemoteButton::Back => {
                if session.dialogue().is_some() {
                    // Any non-choose decision politely ends the dialogue;
                    // a click far off-frame is guaranteed to hit nothing.
                    session.handle(InputEvent::click(-1000, -1000))
                } else {
                    Ok(Vec::new())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SessionConfig;
    use crate::fixtures::{fix_the_computer, FRAME};
    use std::sync::Arc;

    fn session() -> GameSession {
        GameSession::new(
            Arc::new(fix_the_computer()),
            SessionConfig::for_frame(FRAME.0, FRAME.1),
        )
        .unwrap()
        .0
    }

    #[test]
    fn focus_walks_reading_order_and_wraps() {
        let mut s = session();
        let mut remote = RemoteControl::new();
        // classroom reading order by centre (y, x):
        // to_market (44,6), teacher (8,18), computer (28,22).
        let order = |r: &RemoteControl, s: &GameSession| {
            r.focused(s).unwrap().unwrap().name.clone()
        };
        assert_eq!(order(&remote, &s), "to_market");
        remote.press(&mut s, RemoteButton::Down).unwrap();
        assert_eq!(order(&remote, &s), "teacher");
        remote.press(&mut s, RemoteButton::Down).unwrap();
        assert_eq!(order(&remote, &s), "computer");
        remote.press(&mut s, RemoteButton::Down).unwrap();
        assert_eq!(order(&remote, &s), "to_market"); // wrapped
        remote.press(&mut s, RemoteButton::Up).unwrap();
        assert_eq!(order(&remote, &s), "computer"); // wrapped back
    }

    #[test]
    fn whole_game_is_playable_by_remote() {
        let mut s = session();
        let mut r = RemoteControl::new();
        // Focus the computer and examine it.
        r.press(&mut s, RemoteButton::Down).unwrap();
        r.press(&mut s, RemoteButton::Down).unwrap();
        let fb = r.press(&mut s, RemoteButton::Ok).unwrap();
        assert!(fb.iter().any(|f| matches!(f, Feedback::Text(t) if t.contains("cooling"))));
        // To the market: focus wraps to the door.
        r.press(&mut s, RemoteButton::Down).unwrap();
        let fb = r.press(&mut s, RemoteButton::Ok).unwrap();
        assert!(fb.iter().any(|f| matches!(f, Feedback::ScenarioChanged { .. })));
        // Market reading order: to_classroom (44,6), fan (15,14),
        // spec_sheet (30,13) → fan is second by (y, x): spec (13) < fan (14)!
        // Focus ring is deterministic either way; find the fan.
        for _ in 0..3 {
            if r.focused(&s).unwrap().unwrap().name == "fan" {
                break;
            }
            r.press(&mut s, RemoteButton::Down).unwrap();
        }
        assert_eq!(r.focused(&s).unwrap().unwrap().name, "fan");
        let fb = r.press(&mut s, RemoteButton::Take).unwrap();
        assert!(fb.contains(&Feedback::ItemAdded("fan".into())));
        // Back to the classroom.
        for _ in 0..3 {
            if r.focused(&s).unwrap().unwrap().name == "to_classroom" {
                break;
            }
            r.press(&mut s, RemoteButton::Down).unwrap();
        }
        r.press(&mut s, RemoteButton::Ok).unwrap();
        // Focus the computer, use held item #1 (the fan) on it.
        for _ in 0..3 {
            if r.focused(&s).unwrap().unwrap().name == "computer" {
                break;
            }
            r.press(&mut s, RemoteButton::Down).unwrap();
        }
        let fb = r.press(&mut s, RemoteButton::UseItem(1)).unwrap();
        assert!(fb.iter().any(|f| matches!(f, Feedback::GameEnded(_))), "{fb:?}");
        assert_eq!(s.state().score, 25);
    }

    #[test]
    fn numbers_answer_dialogue_and_back_leaves() {
        let mut s = session();
        let mut r = RemoteControl::new();
        // Focus the teacher (second in ring) and open the conversation.
        r.press(&mut s, RemoteButton::Down).unwrap();
        assert_eq!(r.focused(&s).unwrap().unwrap().name, "teacher");
        let fb = r.press(&mut s, RemoteButton::Ok).unwrap();
        assert!(fb.iter().any(|f| matches!(f, Feedback::DialogueChoices(_))));
        // "1" takes the first branch.
        let fb = r.press(&mut s, RemoteButton::Number(1)).unwrap();
        assert!(fb.iter().any(|f| matches!(
            f,
            Feedback::NpcLine { line, .. } if line.contains("part inside broke")
        )));
        // Back drops the conversation.
        let fb = r.press(&mut s, RemoteButton::Back).unwrap();
        assert!(fb.contains(&Feedback::DialogueEnded));
        assert!(s.dialogue().is_none());
        // Back outside a conversation is inert.
        let fb = r.press(&mut s, RemoteButton::Back).unwrap();
        assert!(fb.is_empty());
    }

    #[test]
    fn use_item_with_empty_backpack_is_inert() {
        let mut s = session();
        let mut r = RemoteControl::new();
        let fb = r.press(&mut s, RemoteButton::UseItem(1)).unwrap();
        assert!(fb.is_empty());
    }
}
