//! Ready-made games used by tests, benches and examples.
//!
//! [`fix_the_computer`] is the paper's own worked example (§3.2): "in a
//! classroom in game, the NPC told players a computer was not worked and
//! order players to fix it. Players examine the computer in video first
//! and find a broken component inside. Finally, players move to another
//! scenario, markets, to get the components they needed and return to
//! classroom and fix the computer."

use vgbl_media::SegmentId;
use vgbl_scene::{
    DialogueNode, DialogueTree, ImageAsset, Npc, ObjectKind, Rect, SceneGraph,
};
use vgbl_scene::npc::DialogueChoice;
use vgbl_script::{Action, EventKind, Trigger};

/// Frame size the fixture games are authored for.
pub const FRAME: (u32, u32) = (64, 48);

/// The paper's "fix the computer" adventure: two scenarios (classroom and
/// market), a guiding NPC, a diagnosis step, a collectable spare part,
/// an item application, score, a reward object and an ending.
pub fn fix_the_computer() -> SceneGraph {
    let mut g = SceneGraph::new();
    for asset in ["pc", "fan", "door", "teacher_img"] {
        g.assets_mut().insert(ImageAsset::placeholder(asset, 10, 10));
    }

    let mut dialogue = DialogueTree::new();
    dialogue.insert(
        0,
        DialogueNode {
            line: "The computer is not working. Please fix it for the class.".into(),
            choices: vec![
                DialogueChoice { text: "What happened?".into(), next: Some(1) },
                DialogueChoice { text: "I'm on it.".into(), next: None },
            ],
        },
    );
    dialogue.insert(
        1,
        DialogueNode {
            line: "It just stopped. Maybe a part inside broke.".into(),
            choices: vec![DialogueChoice { text: "I'll take a look.".into(), next: None }],
        },
    );
    g.add_npc(Npc::new("teacher", dialogue));

    let classroom = g.add_scenario("classroom", SegmentId(0)).unwrap();
    let market = g.add_scenario("market", SegmentId(1)).unwrap();

    {
        let s = g.scenario_mut(classroom).unwrap();
        s.description = "A classroom with a broken computer.".into();
        s.entry_triggers.push(
            Trigger::guarded(
                EventKind::Enter,
                "!flag(\"greeted\")",
                vec![
                    Action::Say {
                        npc: "teacher".into(),
                        line: "Oh good, you're here. The computer is broken!".into(),
                    },
                    Action::SetFlag("greeted".into(), true),
                ],
            )
            .unwrap(),
        );

        let teacher = s
            .add_object(
                "teacher",
                ObjectKind::NpcAnchor { npc: "teacher".into() },
                Rect::new(2, 8, 12, 20),
            )
            .unwrap();
        let _ = teacher;

        let computer = s
            .add_object(
                "computer",
                ObjectKind::Item {
                    asset: "pc".into(),
                    description: "An old computer. It will not boot.".into(),
                    takeable: false,
                },
                Rect::new(20, 16, 16, 12),
            )
            .unwrap();
        let obj = s.object_mut(computer).unwrap();
        obj.triggers.push(
            Trigger::guarded(
                EventKind::Click,
                "!flag(\"diagnosed\")",
                vec![
                    Action::ShowText(
                        "You open the case. The cooling fan is broken!".into(),
                    ),
                    Action::SetFlag("diagnosed".into(), true),
                    Action::AddScore(5),
                ],
            )
            .unwrap(),
        );
        obj.triggers.push(
            Trigger::guarded(
                EventKind::Click,
                "flag(\"diagnosed\") && !flag(\"fixed\")",
                vec![Action::ShowText("The broken fan needs a replacement part.".into())],
            )
            .unwrap(),
        );
        obj.triggers.push(
            Trigger::guarded(
                EventKind::Use("fan".into()),
                "!flag(\"diagnosed\")",
                vec![Action::ShowText(
                    "You are not sure where this goes. Examine the computer first.".into(),
                )],
            )
            .unwrap(),
        );
        obj.triggers.push(
            Trigger::guarded(
                EventKind::Use("fan".into()),
                "flag(\"diagnosed\") && !flag(\"fixed\")",
                vec![
                    Action::TakeItem("fan".into()),
                    Action::SetFlag("fixed".into(), true),
                    Action::ShowText("You install the new fan. The computer boots!".into()),
                    Action::AddScore(20),
                    Action::Award("computer_medic".into()),
                    Action::Say { npc: "teacher".into(), line: "Well done! Thank you.".into() },
                    Action::End("fixed".into()),
                ],
            )
            .unwrap(),
        );

        let door = s
            .add_object(
                "to_market",
                ObjectKind::Button { label: "To market".into() },
                Rect::new(40, 2, 8, 8),
            )
            .unwrap();
        s.object_mut(door).unwrap().triggers.push(Trigger::unconditional(
            EventKind::Click,
            vec![Action::GoTo("market".into())],
        ));
    }

    {
        let s = g.scenario_mut(market).unwrap();
        s.description = "A market stall selling computer parts.".into();
        let fan = s
            .add_object(
                "fan",
                ObjectKind::Item {
                    asset: "fan".into(),
                    description: "A replacement cooling fan.".into(),
                    takeable: true,
                },
                Rect::new(10, 10, 10, 8),
            )
            .unwrap();
        let obj = s.object_mut(fan).unwrap();
        // Once taken the stall is empty.
        obj.visible_when = Some(vgbl_script::parse_expr("!has(\"fan\")").unwrap());
        obj.triggers.push(Trigger::unconditional(
            EventKind::Drag,
            vec![Action::ShowText("You pick up the fan.".into())],
        ));

        let info = s
            .add_object(
                "spec_sheet",
                ObjectKind::Button { label: "Fan specs".into() },
                Rect::new(26, 10, 8, 6),
            )
            .unwrap();
        s.object_mut(info).unwrap().triggers.push(Trigger::unconditional(
            EventKind::Click,
            vec![Action::OpenUrl("https://example.edu/cooling-fans".into())],
        ));

        let door = s
            .add_object(
                "to_classroom",
                ObjectKind::Button { label: "Back to class".into() },
                Rect::new(40, 2, 8, 8),
            )
            .unwrap();
        s.object_mut(door).unwrap().triggers.push(Trigger::unconditional(
            EventKind::Click,
            vec![Action::GoTo("classroom".into())],
        ));
    }

    g
}

/// A tiny two-scenario loop used by micro-tests: `a` (button to `b`) and
/// `b` (button back to `a`, plus an end button).
pub fn two_room_loop() -> SceneGraph {
    let mut g = SceneGraph::new();
    let a = g.add_scenario("a", SegmentId(0)).unwrap();
    let b = g.add_scenario("b", SegmentId(1)).unwrap();
    {
        let s = g.scenario_mut(a).unwrap();
        let btn = s
            .add_object("to_b", ObjectKind::Button { label: "b".into() }, Rect::new(0, 0, 8, 8))
            .unwrap();
        s.object_mut(btn).unwrap().triggers.push(Trigger::unconditional(
            EventKind::Click,
            vec![Action::GoTo("b".into())],
        ));
    }
    {
        let s = g.scenario_mut(b).unwrap();
        let btn = s
            .add_object("to_a", ObjectKind::Button { label: "a".into() }, Rect::new(0, 0, 8, 8))
            .unwrap();
        s.object_mut(btn).unwrap().triggers.push(Trigger::unconditional(
            EventKind::Click,
            vec![Action::GoTo("a".into())],
        ));
        let end = s
            .add_object("finish", ObjectKind::Button { label: "end".into() }, Rect::new(20, 0, 8, 8))
            .unwrap();
        s.object_mut(end).unwrap().triggers.push(Trigger::unconditional(
            EventKind::Click,
            vec![Action::End("done".into())],
        ));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgbl_scene::validate::validate;

    #[test]
    fn fixture_games_validate_playable() {
        let report = validate(&fix_the_computer(), Some(FRAME));
        assert!(report.is_playable(), "errors: {:?}", report.issues);
        let report = validate(&two_room_loop(), Some(FRAME));
        assert!(report.is_playable(), "errors: {:?}", report.issues);
    }

    #[test]
    fn fix_the_computer_shape() {
        let g = fix_the_computer();
        assert_eq!(g.len(), 2);
        assert!(g.npc("teacher").is_some());
        assert_eq!(g.assets().len(), 4);
        assert_eq!(g.scenario_by_name("classroom").unwrap().objects().len(), 3);
        assert_eq!(g.scenario_by_name("market").unwrap().objects().len(), 3);
    }
}
