//! Runtime error type.

use std::fmt;

/// Errors from the gaming platform.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The scene graph failed validation with errors.
    UnplayableGame(String),
    /// A `goto` action targeted an unknown scenario at runtime.
    UnknownScenario(String),
    /// A script condition failed to evaluate.
    Script(vgbl_script::ScriptError),
    /// A scene-model lookup failed.
    Scene(vgbl_scene::SceneError),
    /// A media operation (playback/seek) failed.
    Media(vgbl_media::MediaError),
    /// Input arrived after the game ended.
    GameOver {
        /// The outcome the game ended with.
        outcome: String,
    },
    /// A single input caused more scenario transitions than the hop
    /// budget allows — almost certainly an `enter → goto` authoring loop.
    TransitionLoop {
        /// The scenario where the budget ran out.
        at: String,
    },
    /// A supervisor configuration or arrival plan failed validation.
    InvalidSupervisor(String),
    /// A save-game payload failed to parse.
    CorruptSave(String),
    /// The save game belongs to a different game (content mismatch).
    SaveMismatch(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnplayableGame(msg) => write!(f, "game failed validation: {msg}"),
            RuntimeError::UnknownScenario(name) => {
                write!(f, "goto targets unknown scenario `{name}` at runtime")
            }
            RuntimeError::Script(e) => write!(f, "script error: {e}"),
            RuntimeError::Scene(e) => write!(f, "scene error: {e}"),
            RuntimeError::Media(e) => write!(f, "media error: {e}"),
            RuntimeError::GameOver { outcome } => {
                write!(f, "the game already ended with outcome `{outcome}`")
            }
            RuntimeError::TransitionLoop { at } => {
                write!(f, "scenario transition loop detected at `{at}`")
            }
            RuntimeError::InvalidSupervisor(msg) => {
                write!(f, "invalid supervisor configuration: {msg}")
            }
            RuntimeError::CorruptSave(msg) => write!(f, "corrupt save game: {msg}"),
            RuntimeError::SaveMismatch(msg) => write!(f, "save game mismatch: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Script(e) => Some(e),
            RuntimeError::Scene(e) => Some(e),
            RuntimeError::Media(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vgbl_script::ScriptError> for RuntimeError {
    fn from(e: vgbl_script::ScriptError) -> Self {
        RuntimeError::Script(e)
    }
}

impl From<vgbl_scene::SceneError> for RuntimeError {
    fn from(e: vgbl_scene::SceneError) -> Self {
        RuntimeError::Scene(e)
    }
}

impl From<vgbl_media::MediaError> for RuntimeError {
    fn from(e: vgbl_media::MediaError) -> Self {
        RuntimeError::Media(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_source() {
        use std::error::Error;
        let e: RuntimeError = vgbl_script::ScriptError::DivisionByZero.into();
        assert!(e.source().is_some());
        let e: RuntimeError = vgbl_scene::SceneError::EmptyGraph.into();
        assert!(e.source().is_some());
        let e: RuntimeError =
            vgbl_media::MediaError::FrameOutOfRange { index: 1, len: 0 }.into();
        assert!(e.source().is_some());
        assert!(RuntimeError::GameOver { outcome: "win".into() }.source().is_none());
    }

    #[test]
    fn display_mentions_payload() {
        let e = RuntimeError::UnknownScenario("moon".into());
        assert!(e.to_string().contains("moon"));
        let e = RuntimeError::GameOver { outcome: "victory".into() };
        assert!(e.to_string().contains("victory"));
    }
}
