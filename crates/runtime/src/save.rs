//! Save games.
//!
//! A versioned, line-oriented text format persisting one player's
//! progress: flags, score, visit/examination history, backpack and
//! rewards, current scenario and clocks. Text was chosen over binary for
//! the same reason the `.vgp` project format is text: course designers
//! (and tests) can read and diff it.
//!
//! ```text
//! vgbl-save 1
//! game <content-hash>
//! scenario classroom
//! score 25
//! clock 6100 93400
//! avatar 25 20
//! flag diagnosed on
//! item fan 1
//! reward computer_medic
//! visited classroom
//! examined computer
//! ended fixed        (only when over)
//! ```

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

use vgbl_scene::SceneGraph;

use crate::error::RuntimeError;
use crate::inventory::Inventory;
use crate::state::GameState;
use crate::Result;

/// Format version written by this build.
pub const SAVE_VERSION: u32 = 1;

/// A serialisable snapshot of a session.
///
/// [`SaveGame::capture`] records only the durable player state (the
/// classic "save file"). [`crate::GameSession::checkpoint`] additionally
/// fills the two engine-transient fields — the open dialogue and the
/// already-fired timers — so a crashed session restored from a
/// checkpoint replays bit-identically instead of re-firing timers or
/// forgetting an open conversation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaveGame {
    /// Hash of the game content the save belongs to.
    pub game_hash: u64,
    /// The player's state.
    pub state: GameState,
    /// The player's backpack.
    pub inventory: Inventory,
    /// Open dialogue, as `(npc, node)` (checkpoint-only; `None` in a
    /// plain capture).
    pub dialogue: Option<(String, u32)>,
    /// Scenario-timer thresholds (ms) that already fired this scenario
    /// entry (checkpoint-only; empty in a plain capture).
    pub fired_timers: BTreeSet<u64>,
    /// Causal identity `(trace_id, span_id)` of the generation that
    /// checkpointed, when the save crossed a traced boundary. `None` in
    /// a plain capture; excluded from [`SaveGame::digest`] so traced and
    /// untraced serialisations of the same state verify equal.
    pub trace: Option<(u64, u64)>,
}

/// A stable hash of the game content (scenario names, in order, plus
/// object names) used to detect loading a save into the wrong game.
pub fn content_hash(graph: &SceneGraph) -> u64 {
    let mut h = DefaultHasher::new();
    for s in graph.scenarios() {
        s.name.hash(&mut h);
        for o in s.objects() {
            o.name.hash(&mut h);
        }
    }
    h.finish()
}

impl SaveGame {
    /// Snapshots a session's state against its graph.
    pub fn capture(graph: &SceneGraph, state: &GameState, inventory: &Inventory) -> SaveGame {
        SaveGame {
            game_hash: content_hash(graph),
            state: state.clone(),
            inventory: inventory.clone(),
            dialogue: None,
            fired_timers: BTreeSet::new(),
            trace: None,
        }
    }

    /// FNV-1a digest of the canonical text serialisation. Two saves with
    /// equal digests restore identical sessions, so the fleet verifies a
    /// migration handoff (checkpoint → restore → checkpoint on the
    /// destination shard) by digest equality instead of shipping the full
    /// text into every [`crate::fleet::MigrationRecord`]. The `trace`
    /// line is identity metadata, not state, so it is excluded: stamping
    /// a checkpoint with its causal identity never perturbs handoff
    /// verification.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.text(false).bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Serialises to the text format.
    pub fn to_text(&self) -> String {
        self.text(true)
    }

    fn text(&self, with_trace: bool) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!("vgbl-save {SAVE_VERSION}\n"));
        out.push_str(&format!("game {:016x}\n", self.game_hash));
        if with_trace {
            if let Some((trace_id, span_id)) = self.trace {
                out.push_str(&format!("trace {trace_id:016x} {span_id:016x}\n"));
            }
        }
        out.push_str(&format!("scenario {}\n", self.state.current_scenario));
        out.push_str(&format!("score {}\n", self.state.score));
        out.push_str(&format!(
            "clock {} {}\n",
            self.state.scenario_clock_ms, self.state.total_clock_ms
        ));
        out.push_str(&format!("avatar {} {}\n", self.state.avatar.0, self.state.avatar.1));
        for (name, on) in &self.state.flags {
            out.push_str(&format!("flag {name} {}\n", if *on { "on" } else { "off" }));
        }
        for (item, count) in self.inventory.items() {
            out.push_str(&format!("item {item} {count}\n"));
        }
        for reward in self.inventory.rewards() {
            out.push_str(&format!("reward {reward}\n"));
        }
        for v in &self.state.visited {
            out.push_str(&format!("visited {v}\n"));
        }
        for e in &self.state.examined {
            out.push_str(&format!("examined {e}\n"));
        }
        if let Some(outcome) = &self.state.ended {
            out.push_str(&format!("ended {outcome}\n"));
        }
        // Checkpoint-only engine transients. Node before npc: the npc
        // name may contain spaces, the node number never does.
        if let Some((npc, node)) = &self.dialogue {
            out.push_str(&format!("dialogue {node} {npc}\n"));
        }
        for ms in &self.fired_timers {
            out.push_str(&format!("fired {ms}\n"));
        }
        out
    }

    /// Parses the text format.
    ///
    /// # Errors
    /// [`RuntimeError::CorruptSave`] on any malformed line; unknown keys
    /// are rejected (they indicate a newer format).
    pub fn from_text(text: &str) -> Result<SaveGame> {
        let corrupt = |msg: &str| RuntimeError::CorruptSave(msg.to_owned());
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| corrupt("empty save"))?;
        let version: u32 = header
            .strip_prefix("vgbl-save ")
            .ok_or_else(|| corrupt("missing header"))?
            .trim()
            .parse()
            .map_err(|_| corrupt("bad version"))?;
        if version != SAVE_VERSION {
            return Err(corrupt(&format!("unsupported version {version}")));
        }

        let mut game_hash: Option<u64> = None;
        let mut state = GameState::default();
        let mut inventory = Inventory::new();
        let mut dialogue: Option<(String, u32)> = None;
        let mut fired_timers: BTreeSet<u64> = BTreeSet::new();
        let mut trace: Option<(u64, u64)> = None;
        state.visited.clear();

        for line in lines {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "game" => {
                    game_hash = Some(
                        u64::from_str_radix(rest.trim(), 16)
                            .map_err(|_| corrupt("bad game hash"))?,
                    );
                }
                "trace" => {
                    let (t, sp) =
                        rest.trim().split_once(' ').ok_or_else(|| corrupt("bad trace line"))?;
                    trace = Some((
                        u64::from_str_radix(t, 16).map_err(|_| corrupt("bad trace id"))?,
                        u64::from_str_radix(sp.trim(), 16)
                            .map_err(|_| corrupt("bad span id"))?,
                    ));
                }
                "scenario" => state.current_scenario = rest.trim().to_owned(),
                "score" => {
                    state.score = rest.trim().parse().map_err(|_| corrupt("bad score"))?;
                }
                "clock" => {
                    let mut parts = rest.split_whitespace();
                    state.scenario_clock_ms = parts
                        .next()
                        .and_then(|p| p.parse().ok())
                        .ok_or_else(|| corrupt("bad clock"))?;
                    state.total_clock_ms = parts
                        .next()
                        .and_then(|p| p.parse().ok())
                        .ok_or_else(|| corrupt("bad clock"))?;
                }
                "avatar" => {
                    let mut parts = rest.split_whitespace();
                    let x: i32 = parts
                        .next()
                        .and_then(|p| p.parse().ok())
                        .ok_or_else(|| corrupt("bad avatar"))?;
                    let y: i32 = parts
                        .next()
                        .and_then(|p| p.parse().ok())
                        .ok_or_else(|| corrupt("bad avatar"))?;
                    state.avatar = (x, y);
                }
                "flag" => {
                    let (name, val) = rest
                        .rsplit_once(' ')
                        .ok_or_else(|| corrupt("bad flag line"))?;
                    let on = match val {
                        "on" => true,
                        "off" => false,
                        _ => return Err(corrupt("bad flag value")),
                    };
                    state.set_flag(name, on);
                }
                "item" => {
                    let (name, count) = rest
                        .rsplit_once(' ')
                        .ok_or_else(|| corrupt("bad item line"))?;
                    let count: u32 = count.parse().map_err(|_| corrupt("bad item count"))?;
                    // O(1) bulk add: an adversarial `item x 4294967295`
                    // line must not cost four billion iterations.
                    inventory.add_many(name, count);
                }
                "reward" => {
                    inventory.award(rest.trim());
                }
                "visited" => {
                    state.visited.insert(rest.trim().to_owned());
                }
                "examined" => {
                    state.examined.insert(rest.trim().to_owned());
                }
                "ended" => state.ended = Some(rest.trim().to_owned()),
                "dialogue" => {
                    let (node, npc) = rest
                        .split_once(' ')
                        .ok_or_else(|| corrupt("bad dialogue line"))?;
                    let node: u32 = node.parse().map_err(|_| corrupt("bad dialogue node"))?;
                    if npc.is_empty() {
                        return Err(corrupt("bad dialogue npc"));
                    }
                    dialogue = Some((npc.to_owned(), node));
                }
                "fired" => {
                    let ms: u64 = rest.trim().parse().map_err(|_| corrupt("bad timer"))?;
                    fired_timers.insert(ms);
                }
                other => return Err(corrupt(&format!("unknown key `{other}`"))),
            }
        }

        let game_hash = game_hash.ok_or_else(|| corrupt("missing game hash"))?;
        if state.current_scenario.is_empty() {
            return Err(corrupt("missing scenario"));
        }
        Ok(SaveGame { game_hash, state, inventory, dialogue, fired_timers, trace })
    }

    /// Verifies the save belongs to `graph`.
    pub fn verify(&self, graph: &SceneGraph) -> Result<()> {
        let expected = content_hash(graph);
        if self.game_hash != expected {
            return Err(RuntimeError::SaveMismatch(format!(
                "save is for game {:016x}, current game is {expected:016x}",
                self.game_hash
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fix_the_computer;

    fn sample_save() -> SaveGame {
        let graph = fix_the_computer();
        let mut state = GameState::new("market");
        state.visited.insert("classroom".into());
        state.score = 5;
        state.scenario_clock_ms = 1234;
        state.total_clock_ms = 9876;
        state.avatar = (30, -2);
        state.set_flag("diagnosed", true);
        state.set_flag("greeted", false);
        state.examined.insert("computer".into());
        let mut inventory = Inventory::new();
        inventory.add("fan");
        inventory.add("coin");
        inventory.add("coin");
        inventory.award("computer_medic");
        SaveGame::capture(&graph, &state, &inventory)
    }

    #[test]
    fn roundtrip_is_lossless() {
        let save = sample_save();
        let text = save.to_text();
        let back = SaveGame::from_text(&text).unwrap();
        assert_eq!(back, save);
    }

    #[test]
    fn ended_state_roundtrips() {
        let mut save = sample_save();
        save.state.ended = Some("fixed".into());
        let back = SaveGame::from_text(&save.to_text()).unwrap();
        assert_eq!(back.state.ended.as_deref(), Some("fixed"));
    }

    #[test]
    fn verify_detects_wrong_game() {
        let save = sample_save();
        assert!(save.verify(&fix_the_computer()).is_ok());
        let other = crate::fixtures::two_room_loop();
        assert!(matches!(
            save.verify(&other),
            Err(RuntimeError::SaveMismatch(_))
        ));
    }

    #[test]
    fn rejects_malformed_saves() {
        for bad in [
            "",
            "not-a-save",
            "vgbl-save 99\ngame 0\nscenario x\n",
            "vgbl-save 1\nscenario x\n",                       // missing hash
            "vgbl-save 1\ngame zz\nscenario x\n",              // bad hash
            "vgbl-save 1\ngame 0\n",                           // missing scenario
            "vgbl-save 1\ngame 0\nscenario x\nscore abc\n",    // bad score
            "vgbl-save 1\ngame 0\nscenario x\nflag a maybe\n", // bad flag
            "vgbl-save 1\ngame 0\nscenario x\nitem fan x\n",   // bad count
            "vgbl-save 1\ngame 0\nscenario x\nwarp 1\n",       // unknown key
            "vgbl-save 1\ngame 0\nscenario x\nclock 5\n",      // short clock
        ] {
            assert!(SaveGame::from_text(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn checkpoint_fields_roundtrip() {
        let mut save = sample_save();
        save.dialogue = Some(("shop keeper".into(), 3));
        save.fired_timers.extend([5_000u64, 30_000]);
        let text = save.to_text();
        let back = SaveGame::from_text(&text).unwrap();
        assert_eq!(back, save);
        assert_eq!(back.dialogue.as_ref().unwrap().0, "shop keeper", "npc keeps its spaces");
        // And a plain capture stays free of transients.
        assert_eq!(sample_save().dialogue, None);
        assert!(sample_save().fired_timers.is_empty());
    }

    #[test]
    fn trace_line_roundtrips_without_perturbing_the_digest() {
        let mut save = sample_save();
        let untraced_text = save.to_text();
        let untraced_digest = save.digest();
        save.trace = Some((0xDEAD_BEEF_0000_0001, 0x0000_CAFE_0000_0002));
        let text = save.to_text();
        assert!(text.contains("trace deadbeef00000001 0000cafe00000002\n"));
        let back = SaveGame::from_text(&text).unwrap();
        assert_eq!(back, save, "trace survives the round trip");
        assert_eq!(
            save.digest(),
            untraced_digest,
            "identity metadata must not perturb handoff verification"
        );
        assert!(!untraced_text.contains("trace "), "untraced saves stay byte-identical");
        for bad in [
            "vgbl-save 1\ngame 0\ntrace 1\nscenario x\n",
            "vgbl-save 1\ngame 0\ntrace zz 1\nscenario x\n",
            "vgbl-save 1\ngame 0\ntrace 1 zz\nscenario x\n",
        ] {
            assert!(SaveGame::from_text(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn adversarial_item_count_parses_in_constant_space() {
        // Regression: `item x 4294967295` used to loop 4 billion times.
        let text = format!("vgbl-save 1\ngame 0\nscenario x\nitem x {}\n", u32::MAX);
        let save = SaveGame::from_text(&text).unwrap();
        assert_eq!(save.inventory.count("x"), u32::MAX);
        for bad in [
            "vgbl-save 1\ngame 0\nscenario x\ndialogue x npc\n", // bad node
            "vgbl-save 1\ngame 0\nscenario x\ndialogue 3\n",     // missing npc
            "vgbl-save 1\ngame 0\nscenario x\nfired later\n",    // bad timer
        ] {
            assert!(SaveGame::from_text(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn flag_names_with_spaces_are_not_ambiguous() {
        // rsplit_once keeps multi-word names intact (names can't contain
        // the on/off suffix).
        let mut save = sample_save();
        save.state.flags.clear();
        save.state.set_flag("multi word flag", true);
        let back = SaveGame::from_text(&save.to_text()).unwrap();
        assert!(back.state.flag("multi word flag"));
    }

    #[test]
    fn content_hash_is_stable_and_discriminating() {
        let a = content_hash(&fix_the_computer());
        let b = content_hash(&fix_the_computer());
        assert_eq!(a, b);
        let c = content_hash(&crate::fixtures::two_room_loop());
        assert_ne!(a, c);
    }

    #[test]
    fn engine_restore_from_save_resumes() {
        use crate::engine::{GameSession, SessionConfig};
        use crate::input::InputEvent;
        use std::sync::Arc;

        let graph = Arc::new(fix_the_computer());
        let config = SessionConfig::for_frame(64, 48);
        let (mut session, _) = GameSession::new(graph.clone(), config.clone()).unwrap();
        session.handle(InputEvent::click(25, 20)).unwrap(); // diagnose
        session.handle(InputEvent::click(42, 4)).unwrap(); // market
        session.handle(InputEvent::drag(12, 12, 60, 20)).unwrap(); // take fan

        let save = SaveGame::capture(&graph, session.state(), session.inventory());
        let text = save.to_text();

        // "Reload" later:
        let loaded = SaveGame::from_text(&text).unwrap();
        loaded.verify(&graph).unwrap();
        let mut resumed =
            GameSession::restore(graph, config, loaded.state, loaded.inventory).unwrap();
        resumed.handle(InputEvent::click(42, 4)).unwrap(); // back to class
        let fb = resumed.handle(InputEvent::apply("fan", 25, 20)).unwrap();
        assert!(fb.iter().any(|f| matches!(f, crate::feedback::Feedback::GameEnded(_))));
    }
}
