//! Tick-lockstep playback cohorts with **batched GOP decode**.
//!
//! [`crate::server::run_playback_cohort`] runs every session on its own
//! worker; the shared [`GopCache`] already deduplicates decode *work*
//! (miss-coalescing), but each tick still races N sessions into the
//! cache and blocks followers on the leader's condvar. This module runs
//! the same deterministic walks in lockstep instead: per tick it moves
//! every session first, collects the **union of GOPs the cohort is about
//! to need**, decodes the missing ones exactly once through the
//! work-stealing [`parallel_map_indexed`] pool, and only then serves —
//! every serve is a cache hit, no session ever blocks on another's
//! decode.
//!
//! The walks are byte-identical to the unbatched runner's: session `i`
//! seeds its RNG with the same constant, starts in the same segment and
//! draws the same switch/advance sequence, so the frames each session
//! sees — checksummed into [`BatchedCohortReport::session_checksums`] —
//! match a [`PlaybackController`] walking alone. Only *who pays for
//! decoding* changes, which is exactly what the report separates out as
//! [`BatchedCohortReport::prewarm_gops`].

use std::collections::BTreeSet;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vgbl_media::cache::{GopCache, VideoId};
use vgbl_media::codec::{Decoder, EncodedVideo};
use vgbl_media::parallel::parallel_map_indexed;
use vgbl_media::{SegmentId, SegmentTable};

use crate::analytics::DecodeReuse;
use crate::playback::PlaybackController;
use crate::server::SessionOutcome;
use crate::Result;

/// FNV-1a fold of `bytes` into `h`.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Aggregated outcome of a batched playback cohort run.
#[derive(Debug, Clone)]
pub struct BatchedCohortReport {
    /// Sessions that completed successfully.
    pub sessions: usize,
    /// Sessions that failed (structural playback errors).
    pub failed: usize,
    /// Per-session outcome, indexed by session number.
    pub outcomes: Vec<SessionOutcome>,
    /// Frames served to players, summed over completed sessions.
    pub frames_served: usize,
    /// Frames decoded in total: the batch prewarm's decodes plus any
    /// frames completed sessions decoded themselves (cold starts with a
    /// disabled cache, or a key that failed prewarm).
    pub frames_decoded: usize,
    /// Segment switches performed, summed over completed sessions.
    pub switches: usize,
    /// GOPs decoded by the batch prewarm phase (each exactly once per
    /// residency, however many sessions needed it that tick).
    pub prewarm_gops: usize,
    /// Per-session FNV-1a checksum over every frame the session was
    /// served, in serve order (failed sessions keep the prefix they saw
    /// before failing). Bit-identical to an unbatched walk of the same
    /// session index.
    pub session_checksums: Vec<u64>,
    /// One checksum over [`BatchedCohortReport::session_checksums`] in
    /// index order — a cohort-wide frame-identity fingerprint.
    pub served_checksum: u64,
    /// Decode-reuse counters of the shared cache after the run.
    pub reuse: DecodeReuse,
}

/// One session's lockstep state.
struct LockstepSession {
    player: Option<PlaybackController>,
    rng: StdRng,
    checksum: u64,
    failure: Option<String>,
}

impl LockstepSession {
    fn alive(&self) -> bool {
        self.failure.is_none() && self.player.is_some()
    }
}

/// Runs `n_sessions` deterministic playback walks in tick-lockstep,
/// decoding each needed GOP **once per tick** through the work-stealing
/// pool instead of once per session.
///
/// The walk of session `i` is identical to
/// [`crate::server::run_playback_cohort`]'s: start in segment
/// `i mod n_segments`, then per step either switch to a seeded-random
/// segment (1 in 4) or advance ~one frame of wall time; every step
/// serves exactly one frame. With a disabled cache (capacity 0) the
/// prewarm phase is skipped — there is nothing to share — and the run
/// degrades to per-session decoding, still bit-identical.
///
/// # Errors
/// Never fails on per-session problems (they become
/// [`SessionOutcome::Failed`] rows); the `Result` mirrors the unbatched
/// runner's signature.
pub fn run_playback_cohort_batched(
    video: Arc<EncodedVideo>,
    segments: &SegmentTable,
    cache: Arc<GopCache>,
    n_sessions: usize,
    workers: usize,
    steps_per_session: usize,
) -> Result<BatchedCohortReport> {
    let n_segments = segments.len().max(1) as u32;
    if n_sessions == 0 {
        return Ok(BatchedCohortReport {
            sessions: 0,
            failed: 0,
            outcomes: Vec::new(),
            frames_served: 0,
            frames_decoded: 0,
            switches: 0,
            prewarm_gops: 0,
            session_checksums: Vec::new(),
            served_checksum: 0xcbf2_9ce4_8422_2325,
            reuse: DecodeReuse::from_cache(&cache.stats()),
        });
    }
    let workers = workers.max(1);
    let video_id = VideoId::of(&video);
    let decoder = Decoder::default();

    let mut sessions: Vec<LockstepSession> = (0..n_sessions)
        .map(|i| {
            let initial = SegmentId(i as u32 % n_segments);
            let (player, failure) = match PlaybackController::shared(
                video.clone(),
                segments.clone(),
                initial,
                cache.clone(),
            ) {
                Ok(p) => (Some(p), None),
                Err(e) => (None, Some(e.to_string())),
            };
            LockstepSession {
                player,
                rng: StdRng::seed_from_u64(0x9e37_79b9 ^ i as u64),
                checksum: 0xcbf2_9ce4_8422_2325,
                failure,
            }
        })
        .collect();

    let mut prewarm_gops = 0usize;
    let mut prewarm_frames = 0usize;

    // Decodes the union of GOPs the cohort needs for its next serve,
    // each missing one exactly once, fanned over the decode pool. With
    // caching disabled there is no residency to share, so skip.
    let mut prewarm = |sessions: &[LockstepSession]| {
        if cache.capacity_gops() == 0 {
            return;
        }
        let needed: BTreeSet<usize> = sessions
            .iter()
            .filter(|s| s.alive())
            .filter_map(|s| s.player.as_ref().and_then(|p| p.pending_keyframe().ok()))
            .collect();
        let missing: Vec<usize> = needed
            .into_iter()
            .filter(|&k| !cache.contains(video_id, k))
            .collect();
        if missing.is_empty() {
            return;
        }
        let decoded: Vec<usize> = parallel_map_indexed(missing.len(), workers, |j| {
            let k = missing[j];
            // Failures are left for the sessions' own serve path, which
            // conceals (or fails) with the unbatched semantics.
            cache
                .get_or_decode(video_id, k, || decoder.decode_gop_at(&video, k))
                .map(|frames| frames.len())
                .unwrap_or(0)
        });
        prewarm_gops += decoded.iter().filter(|&&n| n > 0).count();
        prewarm_frames += decoded.iter().sum::<usize>();
    };

    // Serves one frame per live session, in index order, folding the
    // frame bytes into the session's checksum. A structural error ends
    // the session exactly like the unbatched runner's `?` would.
    fn serve(sessions: &mut [LockstepSession]) {
        for s in sessions.iter_mut() {
            if !s.alive() {
                continue;
            }
            let player = s.player.as_mut().expect("alive implies player");
            match player.current_frame() {
                Ok(frame) => s.checksum = fnv1a(s.checksum, frame.raw()),
                Err(e) => s.failure = Some(e.to_string()),
            }
        }
    }

    // Tick 0: every session renders its opening frame.
    prewarm(&sessions);
    serve(&mut sessions);
    for _ in 0..steps_per_session {
        // Move phase: same RNG draw order as the unbatched walk.
        for s in sessions.iter_mut() {
            if !s.alive() {
                continue;
            }
            let player = s.player.as_mut().expect("alive implies player");
            if s.rng.gen_range(0..4u32) == 0 {
                let target = SegmentId(s.rng.gen_range(0..n_segments));
                if let Err(e) = player.seek_segment(target) {
                    s.failure = Some(e.to_string());
                }
            } else {
                player.advance_ms(33);
            }
        }
        prewarm(&sessions);
        serve(&mut sessions);
    }

    let mut outcomes = Vec::with_capacity(n_sessions);
    let mut frames_served = 0usize;
    let mut frames_decoded = prewarm_frames;
    let mut switches = 0usize;
    let mut session_checksums = Vec::with_capacity(n_sessions);
    let mut served_checksum = 0xcbf2_9ce4_8422_2325u64;
    for s in &sessions {
        session_checksums.push(s.checksum);
        served_checksum = fnv1a(served_checksum, &s.checksum.to_le_bytes());
        match &s.failure {
            Some(reason) => outcomes.push(SessionOutcome::Failed { reason: reason.clone() }),
            None => {
                let stats =
                    s.player.as_ref().map(|p| p.stats()).unwrap_or_default();
                frames_served += stats.frames_served;
                frames_decoded += stats.frames_decoded;
                switches += stats.switches;
                outcomes.push(SessionOutcome::Completed);
            }
        }
    }
    Ok(BatchedCohortReport {
        sessions: outcomes.iter().filter(|o| o.is_completed()).count(),
        failed: outcomes.iter().filter(|o| o.is_failed()).count(),
        outcomes,
        frames_served,
        frames_decoded,
        switches,
        prewarm_gops,
        session_checksums,
        served_checksum,
        reuse: DecodeReuse::from_cache(&cache.stats()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgbl_media::codec::{EncodeConfig, Encoder};
    use vgbl_media::color::Rgb;
    use vgbl_media::synth::{FootageSpec, ShotSpec};
    use vgbl_media::timeline::FrameRate;

    fn cohort_video() -> (Arc<EncodedVideo>, SegmentTable) {
        let footage = FootageSpec {
            width: 32,
            height: 24,
            rate: FrameRate::FPS30,
            shots: vec![
                ShotSpec::plain(12, Rgb::new(210, 40, 40)),
                ShotSpec::plain(12, Rgb::new(40, 210, 40)),
                ShotSpec::plain(12, Rgb::new(40, 40, 210)),
            ],
            noise_seed: 77,
        }
        .render()
        .unwrap();
        let video = Encoder::new(EncodeConfig { gop: 6, ..Default::default() })
            .encode(&footage.frames, footage.rate)
            .unwrap();
        let table = SegmentTable::from_cuts(36, &[12, 24]).unwrap();
        (Arc::new(video), table)
    }

    /// Replays session `i`'s walk with a lone [`PlaybackController`]
    /// (the unbatched semantics) and returns its served-frame checksum.
    fn reference_walk(
        video: Arc<EncodedVideo>,
        segments: &SegmentTable,
        i: usize,
        n_segments: u32,
        steps: usize,
    ) -> u64 {
        let initial = SegmentId(i as u32 % n_segments);
        let cache = Arc::new(GopCache::new(16));
        let mut player =
            PlaybackController::shared(video, segments.clone(), initial, cache).unwrap();
        let mut rng = StdRng::seed_from_u64(0x9e37_79b9 ^ i as u64);
        let mut sum = 0xcbf2_9ce4_8422_2325u64;
        sum = fnv1a(sum, player.current_frame().unwrap().raw());
        for _ in 0..steps {
            if rng.gen_range(0..4u32) == 0 {
                let target = SegmentId(rng.gen_range(0..n_segments));
                player.seek_segment(target).unwrap();
            } else {
                player.advance_ms(33);
            }
            sum = fnv1a(sum, player.current_frame().unwrap().raw());
        }
        sum
    }

    #[test]
    fn batched_frames_are_bit_identical_to_solo_walks() {
        let (video, table) = cohort_video();
        let report = run_playback_cohort_batched(
            video.clone(),
            &table,
            Arc::new(GopCache::new(16)),
            6,
            3,
            25,
        )
        .unwrap();
        assert_eq!(report.sessions, 6);
        assert_eq!(report.failed, 0);
        for (i, &sum) in report.session_checksums.iter().enumerate() {
            let expect = reference_walk(video.clone(), &table, i, 3, 25);
            assert_eq!(sum, expect, "session {i} diverged from its solo walk");
        }
    }

    #[test]
    fn batched_matches_unbatched_cohort_accounting() {
        let (video, table) = cohort_video();
        let batched = run_playback_cohort_batched(
            video.clone(),
            &table,
            Arc::new(GopCache::new(16)),
            12,
            4,
            30,
        )
        .unwrap();
        let unbatched = crate::server::run_playback_cohort(
            video.clone(),
            &table,
            Arc::new(GopCache::new(16)),
            12,
            4,
            30,
        )
        .unwrap();
        assert_eq!(batched.frames_served, unbatched.frames_served);
        assert_eq!(batched.switches, unbatched.switches);
        // Both decode each GOP exactly once in total; the batched run
        // attributes that work to the prewarm phase.
        assert_eq!(batched.frames_decoded, unbatched.frames_decoded);
        assert_eq!(batched.prewarm_gops as u64, batched.reuse.misses);
        assert!(batched.prewarm_gops <= video.keyframes().len());
        assert_eq!(batched.reuse.misses, unbatched.reuse.misses);
    }

    #[test]
    fn batched_is_deterministic_across_worker_counts() {
        let (video, table) = cohort_video();
        let run = |workers: usize| {
            run_playback_cohort_batched(
                video.clone(),
                &table,
                Arc::new(GopCache::new(16)),
                8,
                workers,
                20,
            )
            .unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.served_checksum, b.served_checksum);
        assert_eq!(a.frames_served, b.frames_served);
        assert_eq!(a.switches, b.switches);
        assert_eq!(a.prewarm_gops, b.prewarm_gops);
    }

    #[test]
    fn disabled_cache_degrades_without_prewarm() {
        let (video, table) = cohort_video();
        let report = run_playback_cohort_batched(
            video.clone(),
            &table,
            Arc::new(GopCache::new(0)),
            4,
            2,
            10,
        )
        .unwrap();
        assert_eq!(report.prewarm_gops, 0, "capacity 0 must skip prewarm");
        assert_eq!(report.failed, 0);
        // Frames still bit-identical to solo walks.
        for (i, &sum) in report.session_checksums.iter().enumerate() {
            let expect = reference_walk(video.clone(), &table, i, 3, 10);
            assert_eq!(sum, expect, "session {i}");
        }
    }

    #[test]
    fn corrupt_keyframe_fails_only_affected_sessions() {
        let (video, table) = cohort_video();
        let mut broken = (*video).clone();
        assert!(broken.frames[0].data.len() > 4);
        broken.frames[0].data.truncate(3);
        let report = run_playback_cohort_batched(
            Arc::new(broken),
            &table,
            Arc::new(GopCache::new(16)),
            12,
            4,
            30,
        )
        .unwrap();
        // Sessions starting in segment 0 (i % 3 == 0) have nothing to
        // freeze on and fail — identical to the unbatched cohort.
        assert_eq!(report.failed, 4, "{:?}", report.outcomes);
        assert_eq!(report.sessions, 8);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.is_failed(), i % 3 == 0, "session {i}: {o:?}");
        }
    }

    #[test]
    fn empty_cohort_is_fine() {
        let (video, table) = cohort_video();
        let report = run_playback_cohort_batched(
            video,
            &table,
            Arc::new(GopCache::new(4)),
            0,
            4,
            10,
        )
        .unwrap();
        assert_eq!(report.sessions, 0);
        assert_eq!(report.frames_served, 0);
    }
}
