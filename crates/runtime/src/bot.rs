//! Simulated players.
//!
//! Real students are not available to this reproduction, so EXP-9 drives
//! the platform with bots: [`ScriptedBot`] replays a fixed input list,
//! [`RandomBot`] flails like a curious but unguided learner,
//! [`GuidedBot`] plays efficiently toward an ending, and [`ExplorerBot`]
//! reads *everything* (every object, every dialogue branch, every
//! scenario) before finishing. Comparing their analytics quantifies how
//! much of the game's knowledge content each play style surfaces.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use rand::Rng;
use vgbl_obs::{Obs, SpanRecorder};
use vgbl_scene::{ObjectKind, SceneGraph};
use vgbl_script::EventKind;

use crate::analytics::SessionLog;
use crate::engine::{GameSession, SessionConfig};
use crate::error::RuntimeError;
use crate::input::InputEvent;
use crate::inventory::Inventory;
use crate::state::GameState;
use crate::Result;

/// A strategy producing the next input for a session.
pub trait Bot {
    /// The next input, or `None` when the bot gives up.
    fn next_input(&mut self, session: &GameSession) -> Result<Option<InputEvent>>;
}

/// Replays a fixed input sequence.
#[derive(Debug, Clone)]
pub struct ScriptedBot {
    inputs: VecDeque<InputEvent>,
}

impl ScriptedBot {
    /// Creates a bot replaying `inputs` in order.
    pub fn new(inputs: impl IntoIterator<Item = InputEvent>) -> ScriptedBot {
        ScriptedBot { inputs: inputs.into_iter().collect() }
    }
}

impl Bot for ScriptedBot {
    fn next_input(&mut self, _session: &GameSession) -> Result<Option<InputEvent>> {
        Ok(self.inputs.pop_front())
    }
}

/// Clicks, drags and applies at random — the unguided learner.
#[derive(Debug)]
pub struct RandomBot<R: Rng> {
    rng: R,
}

impl<R: Rng> RandomBot<R> {
    /// Creates a random bot over the given RNG.
    pub fn new(rng: R) -> RandomBot<R> {
        RandomBot { rng }
    }
}

impl<R: Rng> Bot for RandomBot<R> {
    fn next_input(&mut self, session: &GameSession) -> Result<Option<InputEvent>> {
        // Mid-conversation: pick a random response (or occasionally walk
        // off, as real students do).
        if session.dialogue().is_some() {
            let choices = session.dialogue_choices();
            if !choices.is_empty() && self.rng.gen_bool(0.8) {
                return Ok(Some(InputEvent::Choose(self.rng.gen_range(0..choices.len()))));
            }
        }
        let (fw, fh) = session.config().frame_size;
        let objects = session.visible_objects()?;
        let inv_centre = session.config().inventory_window.center();
        let choice = self.rng.gen_range(0..100);
        let input = if choice < 45 && !objects.is_empty() {
            // Click a random object's centre.
            let o = &objects[self.rng.gen_range(0..objects.len())];
            let c = o.bounds.center();
            InputEvent::click(c.x, c.y)
        } else if choice < 60 && !objects.is_empty() {
            // Drag a random object to the inventory window.
            let o = &objects[self.rng.gen_range(0..objects.len())];
            let c = o.bounds.center();
            InputEvent::drag(c.x, c.y, inv_centre.x, inv_centre.y)
        } else if choice < 75 {
            // Apply a random held item to a random object.
            let items: Vec<&str> = session.inventory().items().map(|(n, _)| n).collect();
            if items.is_empty() || objects.is_empty() {
                InputEvent::click(
                    self.rng.gen_range(0..fw as i32),
                    self.rng.gen_range(0..fh as i32),
                )
            } else {
                let item = items[self.rng.gen_range(0..items.len())].to_owned();
                let o = &objects[self.rng.gen_range(0..objects.len())];
                let c = o.bounds.center();
                InputEvent::apply(item, c.x, c.y)
            }
        } else {
            // Click somewhere random (often empty video).
            InputEvent::click(
                self.rng.gen_range(0..fw as i32),
                self.rng.gen_range(0..fh as i32),
            )
        };
        Ok(Some(input))
    }
}

/// Plays systematically: take items, try held items on `use` listeners,
/// examine everything once, then follow transitions toward an ending.
#[derive(Debug, Default)]
pub struct GuidedBot {
    /// `(scenario, object, action-tag)` combinations already tried since
    /// the last observable state change.
    tried: HashSet<(String, String, &'static str)>,
    last_signature: u64,
}

impl GuidedBot {
    /// Creates a fresh guided bot.
    pub fn new() -> GuidedBot {
        GuidedBot::default()
    }

    fn signature(session: &GameSession) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        session.state().current_scenario.hash(&mut h);
        session.state().score.hash(&mut h);
        for (k, v) in &session.state().flags {
            k.hash(&mut h);
            v.hash(&mut h);
        }
        for (item, count) in session.inventory().items() {
            item.hash(&mut h);
            count.hash(&mut h);
        }
        h.finish()
    }

    /// BFS from the current scenario toward any scenario containing an
    /// `end` action; returns the name of the next scenario on that path.
    fn next_toward_end(session: &GameSession) -> Option<String> {
        let graph = session.graph();
        let start = &session.state().current_scenario;
        let mut prev: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(start.as_str());
        let mut goal: Option<&str> = None;
        let start_scenario = graph.scenario_by_name(start)?;
        if start_scenario.has_end() {
            return None; // already here; no movement needed
        }
        'bfs: while let Some(name) = queue.pop_front() {
            let scenario = graph.scenario_by_name(name)?;
            for target in scenario.goto_targets() {
                if target == start || prev.contains_key(target) {
                    continue;
                }
                if graph.scenario_by_name(target).is_none() {
                    continue;
                }
                prev.insert(target, name);
                if graph.scenario_by_name(target).map(|s| s.has_end()) == Some(true) {
                    goal = Some(target);
                    break 'bfs;
                }
                queue.push_back(target);
            }
        }
        let goal = goal?;
        // Walk back to the step right after `start`.
        let mut cur = goal;
        while prev.get(cur).copied() != Some(start.as_str()) {
            cur = prev.get(cur)?;
        }
        Some(cur.to_owned())
    }
}

impl Bot for GuidedBot {
    fn next_input(&mut self, session: &GameSession) -> Result<Option<InputEvent>> {
        // In a conversation: take the polite exit when offered, otherwise
        // explore the first option (loops are cut by the step budget).
        if session.dialogue().is_some() {
            let choices = session.dialogue_choices();
            let npc = session.dialogue().map(|d| d.npc.clone()).unwrap_or_default();
            let node = session.dialogue().map(|d| d.node).unwrap_or(0);
            let exit = session
                .graph()
                .npc(&npc)
                .and_then(|n| n.dialogue.get(node))
                .and_then(|n| n.choices.iter().position(|c| c.next.is_none()));
            let pick = exit.unwrap_or(0).min(choices.len().saturating_sub(1));
            return Ok(Some(InputEvent::Choose(pick)));
        }
        let sig = Self::signature(session);
        if sig != self.last_signature {
            self.tried.clear();
            self.last_signature = sig;
        }
        let scenario_name = session.state().current_scenario.clone();
        let objects = session.visible_objects()?;
        let inv_centre = session.config().inventory_window.center();

        // 1. Collect any takeable item.
        for o in &objects {
            if o.is_takeable() && !session.inventory().has(&o.name) {
                let key = (scenario_name.clone(), o.name.clone(), "take");
                if !self.tried.contains(&key) {
                    self.tried.insert(key);
                    let c = o.bounds.center();
                    return Ok(Some(InputEvent::drag(c.x, c.y, inv_centre.x, inv_centre.y)));
                }
            }
        }

        // 2. Try held items on objects that listen for them.
        for o in &objects {
            for (item, _) in session.inventory().items() {
                if o.listens_for(&EventKind::Use(item.to_owned())) {
                    let key = (scenario_name.clone(), o.name.clone(), "apply");
                    if !self.tried.contains(&key) {
                        self.tried.insert(key);
                        let c = o.bounds.center();
                        return Ok(Some(InputEvent::apply(item.to_owned(), c.x, c.y)));
                    }
                }
            }
        }

        // 3. Examine anything unexamined (click listeners, items, NPCs) —
        //    but not pure navigation buttons; those come last.
        for o in &objects {
            let is_nav = matches!(o.kind, ObjectKind::Button { .. });
            if is_nav {
                continue;
            }
            let key = (scenario_name.clone(), o.name.clone(), "click");
            if !self.tried.contains(&key) {
                self.tried.insert(key);
                let c = o.bounds.center();
                return Ok(Some(InputEvent::click(c.x, c.y)));
            }
        }

        // 4. Move toward an ending; prefer the BFS-chosen next scenario.
        let preferred = Self::next_toward_end(session);
        let mut fallback: Option<InputEvent> = None;
        for o in &objects {
            let targets: Vec<String> = o
                .triggers
                .triggers()
                .iter()
                .flat_map(|t| t.actions.iter())
                .filter_map(|a| match a {
                    vgbl_script::Action::GoTo(t) => Some(t.clone()),
                    _ => None,
                })
                .collect();
            if targets.is_empty() {
                // An object whose *click* ends the game counts as the
                // destination itself.
                let ends_on_click = o.triggers.triggers().iter().any(|t| {
                    t.event == EventKind::Click
                        && t.actions.iter().any(|a| matches!(a, vgbl_script::Action::End(_)))
                });
                if ends_on_click {
                    let c = o.bounds.center();
                    return Ok(Some(InputEvent::click(c.x, c.y)));
                }
                continue;
            }
            let c = o.bounds.center();
            let click = InputEvent::click(c.x, c.y);
            if let Some(p) = &preferred {
                if targets.iter().any(|t| t == p) {
                    let key = (scenario_name.clone(), o.name.clone(), "nav");
                    self.tried.insert(key);
                    return Ok(Some(click));
                }
            }
            let key = (scenario_name.clone(), o.name.clone(), "nav");
            if fallback.is_none() && !self.tried.contains(&key) {
                self.tried.insert(key);
                fallback = Some(click);
            }
        }
        if let Some(f) = fallback {
            return Ok(Some(f));
        }

        // 5. Everything tried: wait a bit (timers may open paths), then
        //    give up after the runner's step budget expires.
        Ok(Some(InputEvent::Tick(500)))
    }
}

/// Explores exhaustively before finishing: examines every object, walks
/// every dialogue branch once, visits every reachable scenario, and only
/// then heads for an ending — the learner who reads *everything*.
#[derive(Debug, Default)]
pub struct ExplorerBot {
    /// `(npc, node, choice)` dialogue branches already taken.
    chosen: HashSet<(String, u32, usize)>,
    /// Inner guided bot used once exploration is exhausted.
    closer: GuidedBot,
    /// `(scenario, object)` pairs already examined by this bot.
    examined: HashSet<(String, String)>,
    /// Navigation edges `(scenario, object)` already taken while exploring.
    nav_taken: HashSet<(String, String)>,
}

impl ExplorerBot {
    /// Creates a fresh explorer.
    pub fn new() -> ExplorerBot {
        ExplorerBot::default()
    }

    fn all_scenarios_visited(session: &GameSession) -> bool {
        session
            .graph()
            .scenarios()
            .iter()
            .all(|s| session.state().visited.contains(&s.name))
    }
}

impl Bot for ExplorerBot {
    fn next_input(&mut self, session: &GameSession) -> Result<Option<InputEvent>> {
        // Dialogue: take an untried branch; exit when all are known.
        if let Some(d) = session.dialogue() {
            let npc = d.npc.clone();
            let node_id = d.node;
            let node = session.graph().npc(&npc).and_then(|n| n.dialogue.get(node_id));
            if let Some(node) = node {
                for (i, _) in node.choices.iter().enumerate() {
                    let key = (npc.clone(), node_id, i);
                    if !self.chosen.contains(&key) {
                        self.chosen.insert(key);
                        return Ok(Some(InputEvent::Choose(i)));
                    }
                }
                // All branches known: take the exit (or the first).
                let exit = node.choices.iter().position(|c| c.next.is_none()).unwrap_or(0);
                return Ok(Some(InputEvent::Choose(exit)));
            }
        }

        let scenario_name = session.state().current_scenario.clone();
        let objects = session.visible_objects()?;
        let inv_centre = session.config().inventory_window.center();

        // 1. Examine anything this bot has not yet clicked here (items,
        //    NPCs, info buttons — everything delivers knowledge).
        for o in &objects {
            let is_end_button = o.triggers.triggers().iter().any(|t| {
                t.actions.iter().any(|a| matches!(a, vgbl_script::Action::End(_)))
            });
            let is_nav = !o
                .triggers
                .triggers()
                .iter()
                .flat_map(|t| t.actions.iter())
                .filter(|a| matches!(a, vgbl_script::Action::GoTo(_)))
                .collect::<Vec<_>>()
                .is_empty();
            if is_end_button || is_nav {
                continue; // endings and navigation come last
            }
            let key = (scenario_name.clone(), o.name.clone());
            if !self.examined.contains(&key) {
                self.examined.insert(key);
                let c = o.bounds.center();
                return Ok(Some(InputEvent::click(c.x, c.y)));
            }
        }

        // 2. Collect items.
        for o in &objects {
            if o.is_takeable() && !session.inventory().has(&o.name) {
                let c = o.bounds.center();
                return Ok(Some(InputEvent::drag(c.x, c.y, inv_centre.x, inv_centre.y)));
            }
        }

        // 3. Try held items wherever they are listened for.
        for o in &objects {
            for (item, _) in session.inventory().items() {
                if o.listens_for(&EventKind::Use(item.to_owned())) {
                    let key = (scenario_name.clone(), format!("use:{}:{}", o.name, item));
                    if !self.examined.contains(&key) {
                        self.examined.insert(key);
                        let c = o.bounds.center();
                        return Ok(Some(InputEvent::apply(item.to_owned(), c.x, c.y)));
                    }
                }
            }
        }

        // 4. Still unexplored scenarios? Take a navigation edge not yet
        //    travelled (preferring targets not yet visited).
        if !Self::all_scenarios_visited(session) {
            let mut fallback: Option<InputEvent> = None;
            for o in &objects {
                let targets: Vec<String> = o
                    .triggers
                    .triggers()
                    .iter()
                    .flat_map(|t| t.actions.iter())
                    .filter_map(|a| match a {
                        vgbl_script::Action::GoTo(t) => Some(t.clone()),
                        _ => None,
                    })
                    .collect();
                if targets.is_empty() {
                    continue;
                }
                let c = o.bounds.center();
                let click = InputEvent::click(c.x, c.y);
                if targets
                    .iter()
                    .any(|t| !session.state().visited.contains(t))
                {
                    return Ok(Some(click));
                }
                let key = (scenario_name.clone(), o.name.clone());
                if fallback.is_none() && !self.nav_taken.contains(&key) {
                    self.nav_taken.insert(key);
                    fallback = Some(click);
                }
            }
            if let Some(f) = fallback {
                return Ok(Some(f));
            }
        }

        // 5. Everything seen: let the guided closer finish the game.
        self.closer.next_input(session)
    }
}

/// Outcome of a bot run.
#[derive(Debug, Clone)]
pub struct BotRun {
    /// Final game state.
    pub state: GameState,
    /// The full session log.
    pub log: SessionLog,
    /// Final backpack.
    pub inventory: Inventory,
    /// Decisions actually submitted.
    pub steps: usize,
}

/// Drives one session with a bot for at most `max_steps` inputs; a
/// `tick_ms` tick is injected after every input to advance game time.
pub fn run_session(
    graph: Arc<SceneGraph>,
    config: SessionConfig,
    bot: &mut dyn Bot,
    max_steps: usize,
    tick_ms: u64,
) -> Result<BotRun> {
    run_session_observed(graph, config, bot, max_steps, tick_ms, &Obs::noop(), "")
}

/// [`run_session`] with observability: engine counters flow into `obs`
/// and the playthrough is recorded as one trace labelled `label` — a
/// root `session` span over the game clock with an `input` event per
/// decision. Timestamps are the session's **simulated** game clock in
/// microseconds, so identical bot runs export identical traces.
///
/// The trace is attached even when the run errors mid-way (the root
/// span is closed at the last decision's timestamp), so a failed
/// session still tells its story.
pub fn run_session_observed(
    graph: Arc<SceneGraph>,
    config: SessionConfig,
    bot: &mut dyn Bot,
    max_steps: usize,
    tick_ms: u64,
    obs: &Obs,
    label: &str,
) -> Result<BotRun> {
    let mut rec = if obs.enabled() {
        SpanRecorder::new(label.to_owned())
    } else {
        SpanRecorder::disabled()
    };
    let result = run_session_core(graph, config, bot, max_steps, tick_ms, obs, &mut rec);
    obs.attach(rec);
    result
}

fn run_session_core(
    graph: Arc<SceneGraph>,
    config: SessionConfig,
    bot: &mut dyn Bot,
    max_steps: usize,
    tick_ms: u64,
    obs: &Obs,
    rec: &mut SpanRecorder,
) -> Result<BotRun> {
    let (mut session, _) = GameSession::new(graph, config)?;
    session.set_obs(obs);
    rec.enter("session", 0);
    let mut steps = 0usize;
    while steps < max_steps && !session.state().is_over() {
        let Some(input) = bot.next_input(&session)? else {
            break;
        };
        steps += 1;
        rec.event("input", steps as u64, session.state().total_clock_ms.saturating_mul(1000));
        match session.handle(input) {
            Ok(_) => {}
            Err(RuntimeError::GameOver { .. }) => break,
            Err(e) => return Err(e),
        }
        if !session.state().is_over() && tick_ms > 0 {
            session.handle(InputEvent::Tick(tick_ms))?;
        }
    }
    // Saturating: a pathological session clock must pin the span's end
    // at the u64 horizon, not wrap it before its start.
    rec.exit(session.state().total_clock_ms.saturating_mul(1000));
    Ok(BotRun {
        state: session.state().clone(),
        log: session.log().clone(),
        inventory: session.inventory().clone(),
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{fix_the_computer, two_room_loop, FRAME};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config() -> SessionConfig {
        SessionConfig::for_frame(FRAME.0, FRAME.1)
    }

    #[test]
    fn scripted_bot_replays_solution() {
        let mut bot = ScriptedBot::new(vec![
            InputEvent::click(25, 20),          // diagnose
            InputEvent::click(42, 4),           // market
            InputEvent::drag(12, 12, 60, 20),   // take fan
            InputEvent::click(42, 4),           // back
            InputEvent::apply("fan", 25, 20),   // fix
        ]);
        let run = run_session(Arc::new(fix_the_computer()), config(), &mut bot, 20, 100).unwrap();
        assert_eq!(run.state.ended.as_deref(), Some("fixed"));
        assert_eq!(run.state.score, 25);
        assert_eq!(run.steps, 5);
        assert!(run.inventory.has_reward("computer_medic"));
    }

    #[test]
    fn guided_bot_solves_the_paper_game() {
        let mut bot = GuidedBot::new();
        let run =
            run_session(Arc::new(fix_the_computer()), config(), &mut bot, 100, 100).unwrap();
        assert_eq!(run.state.ended.as_deref(), Some("fixed"), "log: {:?}", run.log.events());
        assert!(run.steps < 30, "guided bot took {} steps", run.steps);
        assert!(run.log.knowledge_events() >= 2);
    }

    #[test]
    fn guided_bot_solves_two_room_loop() {
        let mut bot = GuidedBot::new();
        let run = run_session(Arc::new(two_room_loop()), config(), &mut bot, 50, 0).unwrap();
        assert_eq!(run.state.ended.as_deref(), Some("done"));
    }

    #[test]
    fn random_bot_eventually_does_things() {
        let mut bot = RandomBot::new(StdRng::seed_from_u64(7));
        let run =
            run_session(Arc::new(fix_the_computer()), config(), &mut bot, 300, 50).unwrap();
        // It must at least have made decisions and triggered something.
        assert!(run.log.decisions() > 100 || run.state.is_over());
        assert!(!run.log.is_empty());
    }

    #[test]
    fn random_bot_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut bot = RandomBot::new(StdRng::seed_from_u64(seed));
            run_session(Arc::new(fix_the_computer()), config(), &mut bot, 100, 50)
                .unwrap()
                .log
                .events()
                .to_vec()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn guided_beats_random_on_completion() {
        // The EXP-9 headline: guided players complete; random ones rarely
        // do within the same budget.
        let graph = Arc::new(fix_the_computer());
        let mut guided_done = 0;
        let mut random_done = 0;
        for seed in 0..10u64 {
            let mut g = GuidedBot::new();
            if run_session(graph.clone(), config(), &mut g, 60, 50)
                .unwrap()
                .state
                .is_over()
            {
                guided_done += 1;
            }
            let mut r = RandomBot::new(StdRng::seed_from_u64(seed));
            if run_session(graph.clone(), config(), &mut r, 60, 50)
                .unwrap()
                .state
                .is_over()
            {
                random_done += 1;
            }
        }
        assert_eq!(guided_done, 10);
        assert!(random_done < guided_done, "random {random_done} vs guided {guided_done}");
    }

    #[test]
    fn obs_observed_run_matches_plain_run_and_exports_one_trace() {
        let obs = Obs::recording();
        let mut bot = GuidedBot::new();
        let observed = run_session_observed(
            Arc::new(fix_the_computer()),
            config(),
            &mut bot,
            100,
            50,
            &obs,
            "bot-0000",
        )
        .unwrap();
        // Observation does not perturb the run.
        let mut bot2 = GuidedBot::new();
        let plain =
            run_session(Arc::new(fix_the_computer()), config(), &mut bot2, 100, 50).unwrap();
        assert_eq!(observed.steps, plain.steps);
        assert_eq!(observed.state.score, plain.state.score);
        assert_eq!(observed.state.ended, plain.state.ended);
        let snap = obs.snapshot();
        // One `input` event per decision, one trace for the session.
        assert_eq!(snap.span_count("input"), observed.steps);
        assert_eq!(snap.traces.len(), 1);
        assert_eq!(snap.traces[0].label, "bot-0000");
        assert_eq!(snap.traces[0].spans[0].name, "session");
        // Engine counters flowed into the same registry: every decision
        // plus the interleaved clock ticks went through `handle`.
        let inputs = snap.counter_total("engine.inputs");
        assert!(inputs >= observed.steps as u64, "{inputs} < {}", observed.steps);
        assert!(inputs <= observed.steps as u64 * 2, "{inputs} > 2x steps");
    }

    #[test]
    fn run_session_respects_step_budget() {
        let mut bot = ScriptedBot::new(std::iter::repeat_n(InputEvent::click(0, 0), 500));
        let run = run_session(Arc::new(two_room_loop()), config(), &mut bot, 10, 0).unwrap();
        assert_eq!(run.steps, 10);
    }
}

#[cfg(test)]
mod explorer_tests {
    use super::*;
    use crate::fixtures::{fix_the_computer, FRAME};

    fn config() -> SessionConfig {
        SessionConfig::for_frame(FRAME.0, FRAME.1)
    }

    #[test]
    fn explorer_completes_and_sees_more_than_guided() {
        let graph = Arc::new(fix_the_computer());
        let mut guided = GuidedBot::new();
        let g = run_session(graph.clone(), config(), &mut guided, 150, 50).unwrap();
        let mut explorer = ExplorerBot::new();
        let e = run_session(graph, config(), &mut explorer, 150, 50).unwrap();
        assert_eq!(e.state.ended.as_deref(), Some("fixed"), "log: {:?}", e.log.events());
        assert!(
            e.log.knowledge_events() >= g.log.knowledge_events(),
            "explorer {} vs guided {}",
            e.log.knowledge_events(),
            g.log.knowledge_events()
        );
        // The explorer walked dialogue branches the guided bot skipped.
        assert!(e.log.knowledge_events() > 3);
    }

    #[test]
    fn explorer_visits_every_scenario() {
        let graph = Arc::new(fix_the_computer());
        let mut explorer = ExplorerBot::new();
        let run = run_session(graph.clone(), config(), &mut explorer, 150, 50).unwrap();
        for s in graph.scenarios() {
            assert!(run.state.visited.contains(&s.name), "missed {}", s.name);
        }
    }

    #[test]
    fn explorer_is_deterministic() {
        let graph = Arc::new(fix_the_computer());
        let run = |_: ()| {
            let mut bot = ExplorerBot::new();
            run_session(graph.clone(), config(), &mut bot, 150, 50)
                .unwrap()
                .log
                .events()
                .to_vec()
        };
        assert_eq!(run(()), run(()));
    }
}
