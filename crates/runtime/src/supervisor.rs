//! Supervised session hosting: admission control, load shedding,
//! circuit breaking and checkpoint-based crash recovery.
//!
//! The plain cohort servers in [`crate::server`] accept every session and
//! let failures stand. A distance-learning deployment cannot: when a
//! lecture ends and a whole class logs in at once, the server must *shed*
//! load it cannot serve in time rather than queue unboundedly, *degrade*
//! service gracefully before that point, stop hammering a sick stream
//! link (circuit breaking), and bring crashed sessions back from their
//! last checkpoint instead of throwing the student's progress away.
//!
//! Everything here is a deterministic discrete-event simulation on
//! simulated millisecond clocks — no wall time, no OS threads — so two
//! identical runs produce byte-identical [`SupervisorReport`]s and obs
//! exports, which is what the EXP-14 replay cross-check asserts.
//!
//! The moving parts:
//!
//! * [`ArrivalPlan`] — a seeded exponential arrival process, optionally
//!   modulated by a [`LoadSpike`] (the after-lecture rush).
//! * Admission control — a bounded queue ([`SupervisorConfig::queue_capacity`]);
//!   arrivals beyond capacity are shed immediately, and queued sessions
//!   whose wait exceeds [`SupervisorConfig::queue_deadline_ms`] are shed
//!   when a slot would finally pick them up.
//! * Degradation ladder — a [`LadderPolicy`] picks a [`ServiceMode`] at
//!   admission: full service, skip prefetch warming, or concealment-only
//!   playback at half the per-step cost. [`LadderPolicy::Occupancy`]
//!   thresholds instantaneous queue occupancy;
//!   [`LadderPolicy::SloDriven`] thresholds the *burn rate* of the
//!   shed-rate and admission-wait objectives over ring-buffer time
//!   series, so degradation starts when user-visible health slips
//!   (waits blowing past target) rather than when the queue is already
//!   nearly full — and stays on while the long window still remembers
//!   the incident, instead of flapping back to expensive full service
//!   the moment the queue momentarily drains.
//! * SLO telemetry — every run (whatever the ladder) feeds arrival,
//!   shed, and wait series into an [`SloEvaluator`] and reports a
//!   deterministic [`AlertTimeline`] plus exact [`BudgetLedger`]s,
//!   which EXP-15 cross-checks against the report's own accounting.
//! * Circuit breaker — prefetch warming runs through one shared
//!   [`CircuitBreaker`] over the session's [`FaultPlan`]; an open breaker
//!   fails fast instead of burning the [`RetryPolicy`] budget.
//! * Checkpoint recovery — sessions checkpoint every
//!   [`SupervisorConfig::checkpoint_every`] decisions via
//!   [`GameSession::checkpoint`]; a panicking session restarts from its
//!   last checkpoint with exponential backoff until
//!   [`SupervisorConfig::restart_budget`] runs out.
//! * Durable checkpoints — with [`SupervisorConfig::store`] set, every
//!   checkpoint is also appended to a [`DurableStore`] (canonical
//!   save-game text, checksummed, flushed through the simulated WAL),
//!   so progress survives losing the whole *process*, not just one
//!   session's slot. [`run_supervised_cohort_durable`] hands the store
//!   back for cold-restart recovery via [`DurableStore::recover`] +
//!   [`resume_session`].

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use vgbl_obs::{
    us_from_ms, AlertTimeline, BudgetLedger, BurnRule, Counter, Gauge, Histogram, Objective, Obs,
    Series, SeriesSpec, SloEvaluator, SpanRecorder, TraceCtx,
};
use vgbl_scene::SceneGraph;
use vgbl_stream::{
    BreakerConfig, BreakerStats, ChunkId, CircuitBreaker, FaultPlan, LoadSpike, RetryPolicy,
};
use vgbl_store::{CheckpointRecord, DurableStore, StoreConfig, StoreStats};

use crate::analytics::{LatencySummary, LearningReport, LogEvent, SessionLog};
use crate::bot::{Bot, BotRun};
use crate::engine::{GameSession, SessionConfig};
use crate::error::RuntimeError;
use crate::executor::EventQueue;
use crate::input::InputEvent;
use crate::save::SaveGame;
use crate::server::{panic_reason, SessionOutcome};
use crate::state::GameState;
use crate::Result;

/// Event-type salts keeping the arrival and warm-jitter streams of one
/// seed statistically independent (same scheme as `vgbl_stream::fault`).
const SALT_ARRIVAL: u64 = 0x5000_0005;
const SALT_WARM_JITTER: u64 = 0x6000_0006;

/// splitmix64 finaliser: a well-mixed 64-bit hash of its input.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform `f64` in `[0, 1)`.
pub(crate) fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Ceiling on any single restart backoff, ms (~31 simulated years).
/// Doubling backoff overflows `f64` past ~2^1024; an INF backoff would
/// poison every later timestamp on the simulated clock (INF - INF =
/// NaN), so the doubling saturates here instead — the same overflow
/// class PR 8 fixed in the clock conversions.
pub(crate) const MAX_BACKOFF_MS: f64 = 1e15;

/// The doubling restart backoff for restart number `restarts` (1-based),
/// saturated at [`MAX_BACKOFF_MS`]. The exponent is clamped before
/// `powi` so even a `u32::MAX` restart budget stays finite.
pub(crate) fn restart_backoff(base_ms: f64, restarts: u32) -> f64 {
    // 2^1023 is the largest finite power of two; keeping powi itself
    // finite means a zero base stays exactly zero (0 × INF is NaN).
    let exp = restarts.saturating_sub(1).min(1_023) as i32;
    (base_ms * 2f64.powi(exp)).min(MAX_BACKOFF_MS)
}

/// A deterministic session-arrival process: exponential inter-arrival
/// gaps around a mean, hashed from a seed, optionally compressed inside
/// a [`LoadSpike`] window (a spike factor of 4 quadruples the arrival
/// rate while the window is open).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalPlan {
    seed: u64,
    mean_gap_ms: f64,
    spike: Option<LoadSpike>,
}

impl ArrivalPlan {
    /// A plan with exponential gaps averaging `mean_gap_ms`.
    ///
    /// # Errors
    /// [`RuntimeError::InvalidSupervisor`] when `mean_gap_ms` is not a
    /// positive finite number.
    pub fn new(seed: u64, mean_gap_ms: f64) -> Result<ArrivalPlan> {
        if !mean_gap_ms.is_finite() || mean_gap_ms <= 0.0 {
            return Err(RuntimeError::InvalidSupervisor(
                "mean arrival gap must be positive and finite".into(),
            ));
        }
        Ok(ArrivalPlan { seed, mean_gap_ms, spike: None })
    }

    /// Compresses arrivals inside the spike window by its factor.
    #[must_use]
    pub fn with_spike(mut self, spike: LoadSpike) -> ArrivalPlan {
        self.spike = Some(spike);
        self
    }

    /// The first `n` arrival times in ms, strictly non-decreasing.
    /// Deterministic in `(seed, mean_gap_ms, spike, n)`.
    pub fn arrival_times(&self, n: usize) -> Vec<f64> {
        let mut t = 0.0f64;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let u = unit(mix(self.seed ^ SALT_ARRIVAL ^ mix(i as u64)));
            // Inverse-CDF exponential draw; u < 1 keeps it finite.
            let gap = self.mean_gap_ms * -(1.0 - u).ln();
            let factor = self.spike.as_ref().map_or(1.0, |s| s.factor_at(t));
            t += gap / factor;
            out.push(t);
        }
        out
    }
}

/// The degradation ladder: what level of service an admitted session
/// gets, chosen from queue occupancy at admission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceMode {
    /// Full service: prefetch warming plus full-quality playback.
    Full,
    /// Skip prefetch warming; playback still runs at full quality.
    SkipWarm,
    /// Concealment-only playback at half the per-step service cost —
    /// the cheapest way to keep serving rather than shedding.
    ConcealOnly,
}

impl ServiceMode {
    /// The mode for queue occupancy `occ` (a fraction of capacity,
    /// counting the arriving session itself). Shared with the fleet's
    /// per-shard admission ladder.
    pub(crate) fn for_occupancy(occ: f64, cfg: &SupervisorConfig) -> ServiceMode {
        if occ >= cfg.conceal_at {
            ServiceMode::ConcealOnly
        } else if occ >= cfg.degrade_at {
            ServiceMode::SkipWarm
        } else {
            ServiceMode::Full
        }
    }
}

/// How the degradation ladder picks a [`ServiceMode`] at admission.
#[derive(Debug, Clone, PartialEq)]
pub enum LadderPolicy {
    /// Threshold instantaneous queue occupancy against
    /// [`SupervisorConfig::degrade_at`] / [`SupervisorConfig::conceal_at`]
    /// (the PR-4 behaviour, and the default).
    Occupancy,
    /// Threshold the worst current SLO burn rate: degrade at
    /// [`SloLadderConfig::degrade_burn`], conceal at
    /// [`SloLadderConfig::conceal_burn`]. Reacts to user-visible health
    /// (waits over target, sheds) instead of raw queue depth, and the
    /// burn windows give it memory: service stays cheap while the long
    /// window still sees the incident, so slots drain faster and fewer
    /// arrivals meet a full queue.
    SloDriven(SloLadderConfig),
}

/// Tuning of [`LadderPolicy::SloDriven`] — and of the SLO telemetry
/// every run produces regardless of policy. All clocks simulated ms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloLadderConfig {
    /// Error budget for the shed-rate objective (fraction of arrivals
    /// that may be shed; the ISSUE's `shed_rate < 0.5%` is 0.005).
    pub shed_budget: f64,
    /// Queue waits above this are bad events for the admission-wait
    /// objective.
    pub wait_target_ms: f64,
    /// Error budget for the admission-wait objective (fraction of served
    /// sessions that may wait beyond target).
    pub wait_budget: f64,
    /// Short burn window ("is it still happening?").
    pub short_ms: f64,
    /// Long burn window ("is it sustained?"). The alert rules also use
    /// `4 × long_ms` as their slow window.
    pub long_ms: f64,
    /// Worst burn rate at which warming is skipped.
    pub degrade_burn: f64,
    /// Worst burn rate at which playback degrades to concealment-only.
    pub conceal_burn: f64,
}

impl Default for SloLadderConfig {
    fn default() -> SloLadderConfig {
        SloLadderConfig {
            shed_budget: 0.005,
            wait_target_ms: 500.0,
            wait_budget: 0.05,
            short_ms: 500.0,
            long_ms: 5_000.0,
            degrade_burn: 1.0,
            conceal_burn: 4.0,
        }
    }
}

impl SloLadderConfig {
    fn validate(&self) -> Result<()> {
        let bad = |msg: &str| RuntimeError::InvalidSupervisor(msg.into());
        for (name, v) in [("shed_budget", self.shed_budget), ("wait_budget", self.wait_budget)] {
            if !v.is_finite() || v <= 0.0 || v > 1.0 {
                return Err(bad(&format!("{name} must be in (0, 1]")));
            }
        }
        for (name, v) in [
            ("wait_target_ms", self.wait_target_ms),
            ("short_ms", self.short_ms),
            ("long_ms", self.long_ms),
            ("degrade_burn", self.degrade_burn),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(bad(&format!("{name} must be positive and finite")));
            }
        }
        if self.long_ms < self.short_ms {
            return Err(bad("long_ms must not be below short_ms"));
        }
        if !self.conceal_burn.is_finite() || self.conceal_burn < self.degrade_burn {
            return Err(bad("conceal_burn must not be below degrade_burn"));
        }
        Ok(())
    }
}

/// Tuning of the supervised server. All clocks are simulated ms.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Bounded admission-queue capacity; arrivals past it are shed.
    pub queue_capacity: usize,
    /// A queued session waiting longer than this is shed when a slot
    /// would pick it up (its player has long since given up).
    pub queue_deadline_ms: f64,
    /// Concurrent service slots (simulated workers).
    pub slots: usize,
    /// Occupancy fraction at which warming is skipped ([`ServiceMode::SkipWarm`]).
    pub degrade_at: f64,
    /// Occupancy fraction at which playback degrades to concealment-only.
    pub conceal_at: f64,
    /// Checkpoint every this many decisions (0 = never checkpoint).
    pub checkpoint_every: usize,
    /// Restarts allowed per session before giving up.
    pub restart_budget: u32,
    /// Backoff before the first restart; doubles per further restart.
    pub restart_backoff_ms: f64,
    /// Prefetch-warming fetches per full-service session.
    pub warm_fetches: u32,
    /// Cost of one delivered warm fetch, ms.
    pub warm_fetch_ms: f64,
    /// Service cost per decision step, ms (halved under concealment).
    pub step_ms: f64,
    /// Decision budget per session (as in [`crate::bot::run_session`]).
    pub max_steps: usize,
    /// Clock tick injected after each decision, ms of game time.
    pub tick_ms: u64,
    /// Fault schedule the warm fetches run against.
    pub warm_faults: FaultPlan,
    /// Retry policy for warm fetches (deadlines burn simulated time).
    pub retry: RetryPolicy,
    /// Circuit breaker over the warm-fetch link, shared by all sessions.
    pub breaker: BreakerConfig,
    /// How the degradation ladder picks the service mode.
    pub ladder: LadderPolicy,
    /// Durable checkpoint store; `None` keeps checkpoints in process
    /// memory only (the pre-PR-9 behaviour).
    pub store: Option<StoreConfig>,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            queue_capacity: 8,
            queue_deadline_ms: 5_000.0,
            slots: 2,
            degrade_at: 0.5,
            conceal_at: 0.85,
            checkpoint_every: 5,
            restart_budget: 2,
            restart_backoff_ms: 250.0,
            warm_fetches: 4,
            warm_fetch_ms: 10.0,
            step_ms: 25.0,
            max_steps: 100,
            tick_ms: 50,
            warm_faults: FaultPlan::new(0x00C0_FFEE),
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            ladder: LadderPolicy::Occupancy,
            store: None,
        }
    }
}

impl SupervisorConfig {
    pub(crate) fn validate(&self) -> Result<()> {
        let bad = |msg: &str| RuntimeError::InvalidSupervisor(msg.into());
        if self.queue_capacity == 0 {
            return Err(bad("queue capacity must be at least 1"));
        }
        if self.slots == 0 {
            return Err(bad("at least one service slot is required"));
        }
        if !self.queue_deadline_ms.is_finite() || self.queue_deadline_ms <= 0.0 {
            return Err(bad("queue deadline must be positive and finite"));
        }
        for (name, v) in [("degrade_at", self.degrade_at), ("conceal_at", self.conceal_at)] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(bad(&format!("{name} must be in [0, 1]")));
            }
        }
        if self.conceal_at < self.degrade_at {
            return Err(bad("conceal_at must not be below degrade_at"));
        }
        if !self.restart_backoff_ms.is_finite() || self.restart_backoff_ms < 0.0 {
            return Err(bad("restart backoff must be non-negative and finite"));
        }
        if !self.warm_fetch_ms.is_finite() || self.warm_fetch_ms < 0.0 {
            return Err(bad("warm fetch cost must be non-negative and finite"));
        }
        if !self.step_ms.is_finite() || self.step_ms <= 0.0 {
            return Err(bad("step cost must be positive and finite"));
        }
        if self.max_steps == 0 {
            return Err(bad("the step budget must be at least 1"));
        }
        if let LadderPolicy::SloDriven(slo) = &self.ladder {
            slo.validate()?;
        }
        Ok(())
    }

    /// The SLO telemetry shape this run evaluates with: the ladder's own
    /// config under [`LadderPolicy::SloDriven`], the defaults otherwise
    /// (occupancy runs still report alerts and ledgers, so the two
    /// policies stay comparable in EXP-15).
    pub(crate) fn slo_config(&self) -> SloLadderConfig {
        match &self.ladder {
            LadderPolicy::SloDriven(slo) => *slo,
            LadderPolicy::Occupancy => SloLadderConfig::default(),
        }
    }
}

/// What the supervisor runs per admitted session: a factory producing a
/// bot for session `i`, incarnation `r` (0 on first start, `k` after the
/// `k`-th restart). Must be `Sync` to match the plain-server factories.
pub type SupervisedBotFactory = dyn Fn(usize, u32) -> Box<dyn Bot> + Sync;

/// One checkpoint held by the supervisor's in-memory store: the
/// resumable save plus the step count and the stitched log prefix at
/// capture time.
#[derive(Debug, Clone)]
struct Checkpoint {
    save: SaveGame,
    step: usize,
    log: SessionLog,
}

/// Flush attempts per durable checkpoint write. A lost flush is
/// detected (the store reports it, like a failed fsync) and retried with
/// a fresh fault draw; past the budget the record stays staged and rides
/// the next checkpoint's flush — never silently acknowledged.
const FLUSH_RETRIES: u32 = 3;

/// Appends `record` and flushes, retrying lost flushes up to
/// [`FLUSH_RETRIES`] times. Returns the record's WAL sequence number
/// when the flush was acknowledged durable, `None` when every attempt
/// was lost (the record stays staged for the next flush). Shared by the
/// supervisor's checkpoint hook and the fleet's segment-boundary commit
/// path.
pub(crate) fn persist_checkpoint(
    store: &mut DurableStore,
    record: &CheckpointRecord,
) -> Option<u64> {
    let seq = store.append(record);
    for _ in 0..=FLUSH_RETRIES {
        if store.flush().is_ok() {
            return Some(seq);
        }
    }
    None
}

/// The audit trail of one recovered session — enough to replay the
/// post-restore tail independently and verify it bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryRecord {
    /// Session index within the cohort.
    pub session: usize,
    /// Restarts spent before it completed.
    pub restarts: u32,
    /// The decision step the final restart resumed from.
    pub resumed_at_step: usize,
    /// The restored checkpoint as save-game text; `None` when the crash
    /// preceded the first checkpoint and the restart began from scratch.
    pub checkpoint: Option<String>,
    /// The final incarnation's own log (post-restore events only).
    pub tail: Vec<LogEvent>,
}

/// Aggregated outcome of a supervised cohort run. Derives `PartialEq`
/// so determinism tests can compare whole reports.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorReport {
    /// Sessions that arrived (admitted + shed).
    pub sessions: usize,
    /// Sessions a slot actually served.
    pub admitted: usize,
    /// Sessions rejected by admission control (queue full or deadline).
    pub shed: usize,
    /// Admitted sessions served below [`ServiceMode::Full`].
    pub degraded: usize,
    /// Sessions that completed without any restart.
    pub completed: usize,
    /// Sessions that completed after at least one checkpoint restart.
    pub recovered: usize,
    /// Sessions that failed with a typed error (never restarted).
    pub failed: usize,
    /// Sessions that exhausted their restart budget.
    pub gave_up: usize,
    /// Total restarts across the cohort.
    pub restarts: u64,
    /// The shared circuit breaker's counters after the run.
    pub breaker: BreakerStats,
    /// Warm fetches attempted (breaker allowed them).
    pub warm_attempted: u64,
    /// Warm fetches skipped because the breaker was open.
    pub warm_skipped: u64,
    /// Deepest the admission queue ever got.
    pub peak_queue_depth: usize,
    /// When the last slot went idle, simulated ms.
    pub makespan_ms: f64,
    /// Queue-wait statistics over served sessions.
    pub queue_wait: LatencySummary,
    /// Restart-backoff statistics over all restarts.
    pub recovery_latency: LatencySummary,
    /// Per-session outcome, indexed by arrival order.
    pub outcomes: Vec<SessionOutcome>,
    /// Learning metrics over completed and recovered sessions.
    pub learning: LearningReport,
    /// Decisions submitted across completed and recovered sessions.
    pub total_steps: usize,
    /// One record per recovered session, in service order.
    pub recoveries: Vec<RecoveryRecord>,
    /// Every alert transition of the run's SLO rules, in tick order —
    /// deterministic, so reruns compare byte-identically.
    pub alerts: AlertTimeline,
    /// Whole-run error-budget ledgers, `shed_rate` first then
    /// `admission_wait`; their `bad`/`total` match this report's own
    /// counts exactly (the EXP-15 cross-check).
    pub ledgers: Vec<BudgetLedger>,
    /// Durable-store counters when [`SupervisorConfig::store`] was set
    /// (appends, acknowledged/lost flushes, snapshots); `None` when
    /// checkpoints stayed in process memory.
    pub durability: Option<StoreStats>,
}

impl SupervisorReport {
    /// The accounting identity every run must satisfy exactly:
    /// `sessions = admitted + shed` and
    /// `admitted = completed + failed + recovered + gave_up`.
    pub fn accounts_exactly(&self) -> bool {
        self.sessions == self.admitted + self.shed
            && self.admitted == self.completed + self.failed + self.recovered + self.gave_up
    }

    /// Count outcome rows of each kind: `(completed, failed, shed,
    /// recovered, gave_up)`. Fleet aggregation sums these across shards,
    /// so they must mirror the scalar counters exactly.
    pub fn outcome_counts(&self) -> (usize, usize, usize, usize, usize) {
        let mut c = (0usize, 0usize, 0usize, 0usize, 0usize);
        for o in &self.outcomes {
            match o {
                SessionOutcome::Completed => c.0 += 1,
                SessionOutcome::Failed { .. } => c.1 += 1,
                SessionOutcome::Shed { .. } => c.2 += 1,
                SessionOutcome::Recovered { .. } => c.3 += 1,
                SessionOutcome::GaveUp { .. } => c.4 += 1,
            }
        }
        c
    }

    /// Debug-build consistency check, asserted at report construction so
    /// fleet aggregation can never silently miscount Shed/Recovered/GaveUp
    /// rows: the accounting identity, outcome-row counts vs the scalar
    /// counters, one [`RecoveryRecord`] per recovered session, and the
    /// shed ledger mirroring `shed`.
    pub(crate) fn debug_assert_consistent(&self) {
        if !cfg!(debug_assertions) {
            return;
        }
        debug_assert!(self.accounts_exactly(), "admission accounting must balance: {self:?}");
        debug_assert_eq!(self.outcomes.len(), self.sessions, "one outcome row per arrival");
        let (completed, failed, shed, recovered, gave_up) = self.outcome_counts();
        debug_assert_eq!(completed, self.completed, "Completed rows must match the counter");
        debug_assert_eq!(failed, self.failed, "Failed rows must match the counter");
        debug_assert_eq!(shed, self.shed, "Shed rows must match the counter");
        debug_assert_eq!(recovered, self.recovered, "Recovered rows must match the counter");
        debug_assert_eq!(gave_up, self.gave_up, "GaveUp rows must match the counter");
        debug_assert_eq!(
            self.recoveries.len(),
            self.recovered,
            "one recovery record per recovered session"
        );
        if let Some(ledger) = self.ledgers.first() {
            debug_assert_eq!(ledger.bad as usize, self.shed, "shed ledger must mirror the report");
        }
    }
}

/// Restores a session from `save` and drives `bot` from `start_step`
/// until the step budget, the game's end, or the bot giving up — exactly
/// the loop the supervisor runs after a restart, so a recovered
/// session's [`RecoveryRecord::tail`] can be reproduced independently.
/// The returned [`BotRun::steps`] counts post-restore decisions only.
pub fn resume_session(
    graph: Arc<SceneGraph>,
    config: SessionConfig,
    save: &SaveGame,
    bot: &mut dyn Bot,
    start_step: usize,
    max_steps: usize,
    tick_ms: u64,
) -> Result<BotRun> {
    let mut session = GameSession::restore_checkpoint(graph, config, save)?;
    let steps = drive(&mut session, bot, start_step, max_steps, tick_ms, |_, _| {})?;
    Ok(BotRun {
        state: session.state().clone(),
        log: session.log().clone(),
        inventory: session.inventory().clone(),
        steps: steps - start_step,
    })
}

/// The shared session loop: identical decision/tick cadence to
/// [`crate::bot::run_session`], with a per-step hook for checkpointing.
/// The fleet's segment runner reuses it so migrated sessions step with
/// exactly the supervisor's cadence.
pub(crate) fn drive(
    session: &mut GameSession,
    bot: &mut dyn Bot,
    start_step: usize,
    max_steps: usize,
    tick_ms: u64,
    mut after_step: impl FnMut(&GameSession, usize),
) -> Result<usize> {
    let mut steps = start_step;
    while steps < max_steps && !session.state().is_over() {
        let Some(input) = bot.next_input(session)? else {
            break;
        };
        steps += 1;
        match session.handle(input) {
            Ok(_) => {}
            Err(RuntimeError::GameOver { .. }) => break,
            Err(e) => return Err(e),
        }
        if !session.state().is_over() && tick_ms > 0 {
            session.handle(InputEvent::Tick(tick_ms))?;
        }
        after_step(session, steps);
    }
    Ok(steps)
}

/// Trace-context seed for the standalone supervisor path, which has no
/// fleet router seed to inherit. Fixed so standalone-run checkpoints
/// carry stable, rerun-identical trace identities.
pub(crate) const SUPERVISOR_TRACE_SEED: u64 = 0x10AD_5EED;

pub(crate) fn stitch(prefix: &SessionLog, tail: &SessionLog) -> SessionLog {
    let mut log = prefix.clone();
    for e in tail.events() {
        log.push(e.clone());
    }
    log
}

/// One incarnation of a session: fresh or restored from `resume`,
/// checkpointing into `store` as it goes. The checkpoint store is
/// written *through* the unwind boundary, so checkpoints taken before a
/// panic survive it.
#[allow(clippy::too_many_arguments)]
fn run_incarnation(
    graph: &Arc<SceneGraph>,
    config: &SessionConfig,
    sup: &SupervisorConfig,
    factory: &SupervisedBotFactory,
    i: usize,
    incarnation: u32,
    resume: Option<&Checkpoint>,
    store: &mut Option<Checkpoint>,
    durable: &mut Option<DurableStore>,
) -> Result<(GameState, SessionLog, usize)> {
    let mut session = match resume {
        None => GameSession::new(graph.clone(), config.clone())?.0,
        Some(c) => GameSession::restore_checkpoint(graph.clone(), config.clone(), &c.save)?,
    };
    let mut bot = factory(i, incarnation);
    let start = resume.map_or(0, |c| c.step);
    let every = sup.checkpoint_every;
    let steps = drive(&mut session, &mut *bot, start, sup.max_steps, sup.tick_ms, |s, n| {
        if every > 0 && n % every == 0 && !s.state().is_over() {
            let log = match resume {
                Some(c) => stitch(&c.log, s.log()),
                None => s.log().clone(),
            };
            let mut save = s.checkpoint();
            if let Some(d) = durable.as_mut() {
                // Written through the unwind boundary, like the
                // in-memory store: a checkpoint flushed before a panic
                // (or a whole-process loss) stays durable.
                let ctx = TraceCtx::mint(SUPERVISOR_TRACE_SEED, i as u64, incarnation);
                save.trace = Some((ctx.trace_id, ctx.span_id));
                persist_checkpoint(
                    d,
                    &CheckpointRecord {
                        session: i as u64,
                        step: n as u64,
                        generation: incarnation,
                        digest: save.digest(),
                        trace_id: ctx.trace_id,
                        span_id: ctx.span_id,
                        payload: save.to_text().into_bytes(),
                    },
                );
            }
            *store = Some(Checkpoint { save, step: n, log });
        }
    })?;
    Ok((session.state().clone(), session.log().clone(), steps))
}

/// What one admitted session contributed to the report.
struct Played {
    outcome: SessionOutcome,
    steps: usize,
    log: Option<SessionLog>,
    score: i64,
    recovery: Option<RecoveryRecord>,
    backoffs_ms: Vec<f64>,
}

/// Runs one session under supervision: checkpoint, catch panics, restart
/// from the last checkpoint with doubled backoff, give up at the budget.
fn play_supervised(
    graph: &Arc<SceneGraph>,
    config: &SessionConfig,
    sup: &SupervisorConfig,
    factory: &SupervisedBotFactory,
    i: usize,
    durable: &mut Option<DurableStore>,
) -> Played {
    let mut latest: Option<Checkpoint> = None;
    let mut restarts: u32 = 0;
    let mut backoffs = Vec::new();
    loop {
        let resume = latest.clone();
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            run_incarnation(
                graph,
                config,
                sup,
                factory,
                i,
                restarts,
                resume.as_ref(),
                &mut latest,
                durable,
            )
        }));
        match attempt {
            Ok(Ok((state, tail, steps))) => {
                let resumed_at_step = resume.as_ref().map_or(0, |c| c.step);
                let full = match &resume {
                    Some(c) => stitch(&c.log, &tail),
                    None => tail.clone(),
                };
                let outcome = if restarts == 0 {
                    SessionOutcome::Completed
                } else {
                    SessionOutcome::Recovered { resumed_at_step, restarts }
                };
                let recovery = (restarts > 0).then(|| RecoveryRecord {
                    session: i,
                    restarts,
                    resumed_at_step,
                    checkpoint: resume.as_ref().map(|c| c.save.to_text()),
                    tail: tail.events().to_vec(),
                });
                return Played {
                    outcome,
                    steps,
                    log: Some(full),
                    score: state.score,
                    recovery,
                    backoffs_ms: backoffs,
                };
            }
            // Typed errors are the game refusing, not the host crashing:
            // a restart would hit the same wall, so fail immediately.
            Ok(Err(e)) => {
                return Played {
                    outcome: SessionOutcome::Failed { reason: e.to_string() },
                    steps: 0,
                    log: None,
                    score: 0,
                    recovery: None,
                    backoffs_ms: backoffs,
                };
            }
            Err(payload) => {
                let reason = panic_reason(payload);
                if restarts >= sup.restart_budget {
                    return Played {
                        outcome: SessionOutcome::GaveUp { restarts, reason },
                        steps: 0,
                        log: None,
                        score: 0,
                        recovery: None,
                        backoffs_ms: backoffs,
                    };
                }
                restarts += 1;
                backoffs.push(restart_backoff(sup.restart_backoff_ms, restarts));
            }
        }
    }
}

/// Warm-phase outcome: where the clock ended up plus fetch accounting.
pub(crate) struct Warmed {
    pub(crate) t: f64,
    pub(crate) attempted: u64,
    pub(crate) skipped: u64,
}

/// Prefetch warming for one full-service session: synthetic chunk
/// fetches against `faults` (the supervisor passes its configured plan;
/// the fleet passes the shard's *current* plan, which a degraded-link
/// fault may have swapped for a lossier one), retried under the policy,
/// gated by the shared breaker. An open breaker fails the whole
/// remaining warm phase fast — the session still plays, just cold.
pub(crate) fn warm_session(
    i: usize,
    start_ms: f64,
    sup: &SupervisorConfig,
    faults: &FaultPlan,
    breaker: &mut CircuitBreaker,
) -> Warmed {
    let mut t = start_ms;
    let (mut attempted, mut skipped) = (0u64, 0u64);
    'fetches: for f in 0..sup.warm_fetches {
        if !breaker.allow(t) {
            skipped += u64::from(sup.warm_fetches - f);
            break;
        }
        attempted += 1;
        let chunk = ChunkId((i as u32).wrapping_mul(131).wrapping_add(f));
        for attempt in 0..=sup.retry.max_retries {
            if attempt > 0 && !breaker.allow(t) {
                skipped += u64::from(sup.warm_fetches - f - 1);
                break 'fetches;
            }
            let fault = faults.chunk_fault_at(chunk, attempt, t);
            if fault.lost {
                let key = ((i as u64) << 24) ^ (u64::from(f) << 8) ^ u64::from(attempt);
                let jitter = unit(mix(faults.seed() ^ SALT_WARM_JITTER ^ mix(key)));
                t += sup.retry.deadline_ms(attempt, jitter);
                breaker.on_failure(t);
            } else if fault.corrupted {
                t += sup.warm_fetch_ms;
                breaker.on_failure(t);
            } else {
                t += sup.warm_fetch_ms;
                breaker.on_success(t);
                break;
            }
        }
    }
    Warmed { t, attempted, skipped }
}

/// Obs handles for the supervisor's metric families.
struct SupObs {
    admitted: Counter,
    shed_full: Counter,
    shed_deadline: Counter,
    degraded: Counter,
    completed: Counter,
    recovered: Counter,
    failed: Counter,
    gave_up: Counter,
    restarts: Counter,
    warm_attempted: Counter,
    warm_skipped: Counter,
    queue_wait_us: Histogram,
    recovery_latency_us: Histogram,
    queue_depth_peak: Gauge,
}

impl SupObs {
    fn new(obs: &Obs) -> SupObs {
        let l: &[(&'static str, &'static str)] = &[("pillar", "runtime")];
        SupObs {
            admitted: obs.counter("supervisor.admitted", l),
            shed_full: obs.counter(
                "supervisor.shed",
                &[("pillar", "runtime"), ("reason", "queue_full")],
            ),
            shed_deadline: obs.counter(
                "supervisor.shed",
                &[("pillar", "runtime"), ("reason", "deadline")],
            ),
            degraded: obs.counter("supervisor.degraded", l),
            completed: obs.counter("supervisor.completed", l),
            recovered: obs.counter("supervisor.recovered", l),
            failed: obs.counter("supervisor.failed", l),
            gave_up: obs.counter("supervisor.gave_up", l),
            restarts: obs.counter("supervisor.restarts", l),
            warm_attempted: obs.counter("supervisor.warm_attempted", l),
            warm_skipped: obs.counter("supervisor.warm_skipped", l),
            queue_wait_us: obs.histogram("supervisor.queue_wait_us", l),
            recovery_latency_us: obs.histogram("supervisor.recovery_latency_us", l),
            queue_depth_peak: obs.gauge("supervisor.queue_depth_peak", l),
        }
    }
}

/// Registry tap names for one [`SupSlo`] instance: the arrival counter,
/// the shed counter, and the queue-wait histogram series.
pub(crate) type SloTapNames = [&'static str; 3];

/// The supervisor's SLO telemetry: standalone control series (live even
/// under [`Obs::noop`], because the SLO-driven ladder reads them) plus
/// registry-tapped mirrors for export, and the evaluator that turns
/// them into the alert timeline. The fleet reuses it per shard (with a
/// noop obs — shard control series never hit the registry) and once
/// fleet-wide under `fleet.*` tap names.
pub(crate) struct SupSlo {
    cfg: SloLadderConfig,
    /// Arrivals (all of them, shed included) — the shed objective's
    /// denominator.
    arrivals: Series,
    /// Shed events (queue-full and deadline).
    sheds: Series,
    /// Served sessions whose wait exceeded the target.
    wait_bad: Series,
    /// All served sessions — the wait objective's denominator.
    wait_all: Series,
    /// Export taps into the obs series registry (noop when obs is).
    arrivals_tap: Series,
    sheds_tap: Series,
    wait_tap: Series,
    eval: SloEvaluator,
}

impl SupSlo {
    fn new(obs: &Obs, cfg: SloLadderConfig) -> SupSlo {
        SupSlo::with_taps(
            obs,
            cfg,
            ["supervisor.arrivals", "supervisor.shed", "supervisor.queue_wait_us"],
        )
    }

    pub(crate) fn with_taps(obs: &Obs, cfg: SloLadderConfig, taps: SloTapNames) -> SupSlo {
        // Bins at a quarter of the short window give the burn queries
        // sub-window resolution; the ring retains the slow rules' 4×long
        // window with slack.
        let bin_us = (us_from_ms(cfg.short_ms) / 4).max(1);
        let long_us = us_from_ms(cfg.long_ms).max(1);
        let bins = ((4 * long_us).div_ceil(bin_us) as usize + 2).min(8_192);
        let mk = |name| Series::standalone(SeriesSpec::counter(name, bin_us, bins));
        let (arrivals, sheds) = (mk("arrivals"), mk("sheds"));
        let (wait_bad, wait_all) = (mk("wait_bad"), mk("wait_all"));
        let rules = |short_us: u64| {
            vec![
                BurnRule {
                    label: "fast",
                    long_us,
                    short_us,
                    burn: cfg.conceal_burn,
                    pending_us: 0,
                },
                BurnRule {
                    label: "slow",
                    long_us: 4 * long_us,
                    short_us: long_us,
                    burn: cfg.degrade_burn,
                    pending_us: 0,
                },
            ]
        };
        let short_us = us_from_ms(cfg.short_ms).max(1);
        let mut eval = SloEvaluator::new();
        eval.add(Objective::event_ratio(
            "shed_rate",
            cfg.shed_budget,
            sheds.clone(),
            arrivals.clone(),
            rules(short_us),
        ));
        eval.add(Objective::event_ratio(
            "admission_wait",
            cfg.wait_budget,
            wait_bad.clone(),
            wait_all.clone(),
            rules(short_us),
        ));
        SupSlo {
            cfg,
            arrivals,
            sheds,
            wait_bad,
            wait_all,
            arrivals_tap: obs.series(SeriesSpec::counter(taps[0], bin_us, bins)),
            sheds_tap: obs.series(SeriesSpec::counter(taps[1], bin_us, bins)),
            wait_tap: obs.series(SeriesSpec::histogram(taps[2], bin_us, bins)),
            eval,
        }
    }

    /// Records an arrival at `t_ms` and evaluates the alert rules — the
    /// supervisor's evaluation tick is the arrival itself.
    pub(crate) fn on_arrival(&mut self, t_ms: f64) {
        let t = us_from_ms(t_ms);
        self.arrivals.record(t, 1);
        self.arrivals_tap.record(t, 1);
        self.eval.tick(t);
    }

    /// Records a shed (queue-full or deadline) at `t_ms`.
    pub(crate) fn on_shed(&mut self, t_ms: f64) {
        let t = us_from_ms(t_ms);
        self.sheds.record(t, 1);
        self.sheds_tap.record(t, 1);
    }

    /// Records a served session's queue wait, stamped at pickup time.
    pub(crate) fn on_wait(&mut self, pickup_ms: f64, wait_ms: f64) {
        let t = us_from_ms(pickup_ms);
        self.wait_all.record(t, 1);
        if wait_ms > self.cfg.wait_target_ms {
            self.wait_bad.record(t, 1);
        }
        self.wait_tap.record(t, us_from_ms(wait_ms));
    }

    /// Worst burn rate across both objectives and both ladder windows at
    /// `t_ms` — what [`LadderPolicy::SloDriven`] thresholds.
    pub(crate) fn worst_burn(&self, t_ms: f64) -> f64 {
        let t = us_from_ms(t_ms);
        let short_us = us_from_ms(self.cfg.short_ms).max(1);
        let long_us = us_from_ms(self.cfg.long_ms).max(1);
        let mut burn = 0.0f64;
        for obj in self.eval.objectives() {
            burn = burn.max(obj.burn_over(t, short_us)).max(obj.burn_over(t, long_us));
        }
        burn
    }

    /// The SLO-driven ladder: mode from the worst current burn rate.
    pub(crate) fn mode_for_burn(&self, t_ms: f64) -> ServiceMode {
        let burn = self.worst_burn(t_ms);
        if burn >= self.cfg.conceal_burn {
            ServiceMode::ConcealOnly
        } else if burn >= self.cfg.degrade_burn {
            ServiceMode::SkipWarm
        } else {
            ServiceMode::Full
        }
    }

    /// Final tick at makespan (resolves anything still pending/firing
    /// into the timeline deterministically), then timeline + ledgers.
    pub(crate) fn finish(mut self, makespan_ms: f64) -> (AlertTimeline, Vec<BudgetLedger>) {
        let end = us_from_ms(makespan_ms);
        self.eval.tick(end);
        let ledgers = self.eval.ledgers(end);
        (self.eval.into_timeline(), ledgers)
    }
}

/// One entry of the bounded admission queue.
#[derive(Debug, Clone)]
struct Queued {
    idx: usize,
    arrival_ms: f64,
    mode: ServiceMode,
}

/// The single-threaded discrete-event state of one supervised run.
struct Sim<'a> {
    graph: Arc<SceneGraph>,
    config: SessionConfig,
    sup: &'a SupervisorConfig,
    factory: &'a SupervisedBotFactory,
    breaker: CircuitBreaker,
    queue: VecDeque<Queued>,
    /// Free-at time per slot, mirrored for makespan reporting; the
    /// scheduling decision itself comes from `slot_q`.
    slots: Vec<f64>,
    /// Slots ordered by `(free_at, slot index)` — popping the head is
    /// exactly the strict-argmin-lowest-index scan the supervisor
    /// originally did, so replays stay byte-identical.
    slot_q: EventQueue<f64, usize>,
    outcomes: Vec<Option<SessionOutcome>>,
    queue_waits: Vec<f64>,
    recovery_lat: Vec<f64>,
    peak_depth: usize,
    admitted: usize,
    shed: usize,
    degraded: usize,
    completed: usize,
    recovered: usize,
    failed: usize,
    gave_up: usize,
    restarts_total: u64,
    warm_attempted: u64,
    warm_skipped: u64,
    session_logs: Vec<(SessionLog, i64)>,
    recoveries: Vec<RecoveryRecord>,
    total_steps: usize,
    durable: Option<DurableStore>,
    o: SupObs,
    slo: SupSlo,
    rec: SpanRecorder,
}

impl Sim<'_> {
    /// Serves queued sessions as slots free up, through simulated time
    /// `until`. A head whose wait exceeded the deadline is shed without
    /// consuming the slot.
    fn drain(&mut self, until: f64) {
        while let Some(head) = self.queue.front().cloned() {
            // The queue head is keyed `(free_at, slot index)`, so the
            // soonest-free slot — lowest index on ties — is one peek.
            let (free, slot_idx) =
                match self.slot_q.peek() {
                    Some((free, &slot_idx)) => (free, slot_idx),
                    None => break,
                };
            let start = free.max(head.arrival_ms);
            if start > until {
                break;
            }
            self.queue.pop_front();
            let wait = start - head.arrival_ms;
            if wait > self.sup.queue_deadline_ms {
                // Shed without consuming the slot: it stays queued at
                // the same free-at time for the next head.
                self.outcomes[head.idx] =
                    Some(SessionOutcome::Shed { reason: "queue deadline exceeded".into() });
                self.shed += 1;
                self.o.shed_deadline.inc();
                self.slo.on_shed(start);
                self.rec.event("shed", head.idx as u64, us_from_ms(start));
                continue;
            }
            self.queue_waits.push(wait);
            self.o.queue_wait_us.record(us_from_ms(wait));
            self.slo.on_wait(start, wait);
            self.slot_q.pop();
            let end = self.serve(head, start);
            self.slots[slot_idx] = end;
            self.slot_q.push_keyed(end, 0, slot_idx as u64, slot_idx);
        }
    }

    /// Serves one session from `start`; returns when the slot frees.
    fn serve(&mut self, q: Queued, start: f64) -> f64 {
        self.admitted += 1;
        self.o.admitted.inc();
        self.rec.event("admit", q.idx as u64, us_from_ms(start));
        let mut t = start;
        if q.mode == ServiceMode::Full {
            let w = warm_session(q.idx, t, self.sup, &self.sup.warm_faults, &mut self.breaker);
            t = w.t;
            self.warm_attempted += w.attempted;
            self.warm_skipped += w.skipped;
            self.o.warm_attempted.add(w.attempted);
            self.o.warm_skipped.add(w.skipped);
        } else {
            self.degraded += 1;
            self.o.degraded.inc();
        }
        let played = play_supervised(
            &self.graph,
            &self.config,
            self.sup,
            self.factory,
            q.idx,
            &mut self.durable,
        );
        let step_cost = if q.mode == ServiceMode::ConcealOnly {
            self.sup.step_ms * 0.5
        } else {
            self.sup.step_ms
        };
        t += played.steps as f64 * step_cost;
        for &backoff in &played.backoffs_ms {
            t += backoff;
            self.recovery_lat.push(backoff);
            self.o.recovery_latency_us.record(us_from_ms(backoff));
            self.o.restarts.inc();
            self.restarts_total += 1;
            self.rec.event("restart", q.idx as u64, us_from_ms(t));
        }
        match &played.outcome {
            SessionOutcome::Completed => {
                self.completed += 1;
                self.o.completed.inc();
            }
            SessionOutcome::Recovered { .. } => {
                self.recovered += 1;
                self.o.recovered.inc();
            }
            SessionOutcome::Failed { .. } => {
                self.failed += 1;
                self.o.failed.inc();
            }
            SessionOutcome::GaveUp { .. } => {
                self.gave_up += 1;
                self.o.gave_up.inc();
            }
            SessionOutcome::Shed { .. } => unreachable!("serve never sheds"),
        }
        if let Some(log) = played.log {
            self.session_logs.push((log, played.score));
            self.total_steps += played.steps;
        }
        if let Some(r) = played.recovery {
            self.recoveries.push(r);
        }
        self.outcomes[q.idx] = Some(played.outcome);
        self.rec.event("done", q.idx as u64, us_from_ms(t));
        t
    }
}

/// Runs `n_sessions` sessions arriving per `arrivals` through the
/// supervised server: bounded admission, the degradation ladder, the
/// shared warm-fetch breaker, and checkpoint-based crash recovery.
///
/// Fully deterministic: identical inputs produce identical
/// [`SupervisorReport`]s, field for field.
///
/// # Errors
/// [`RuntimeError::InvalidSupervisor`] when `sup` fails validation;
/// per-session problems never fail the cohort.
pub fn run_supervised_cohort(
    graph: Arc<SceneGraph>,
    config: SessionConfig,
    sup: &SupervisorConfig,
    n_sessions: usize,
    factory: &SupervisedBotFactory,
    arrivals: &ArrivalPlan,
) -> Result<SupervisorReport> {
    supervised_core(graph, config, sup, n_sessions, factory, arrivals, &Obs::noop(), "")
        .map(|(report, _)| report)
}

/// [`run_supervised_cohort`] with observability: every admission event
/// increments a `supervisor.*` counter, queue waits and recovery
/// latencies flow into histograms, peak queue depth into a gauge, and
/// the whole run exports one trace of `admit`/`shed`/`restart`/`done`
/// events on the simulated clock.
#[allow(clippy::too_many_arguments)]
pub fn run_supervised_cohort_observed(
    graph: Arc<SceneGraph>,
    config: SessionConfig,
    sup: &SupervisorConfig,
    n_sessions: usize,
    factory: &SupervisedBotFactory,
    arrivals: &ArrivalPlan,
    obs: &Obs,
    label: &str,
) -> Result<SupervisorReport> {
    supervised_core(graph, config, sup, n_sessions, factory, arrivals, obs, label)
        .map(|(report, _)| report)
}

/// [`run_supervised_cohort`] that also returns the durable checkpoint
/// store after the run (when [`SupervisorConfig::store`] is set) — the
/// single-node cold-restart path: feed the returned store to
/// [`DurableStore::recover`] and resume each surviving session with
/// [`resume_session`].
pub fn run_supervised_cohort_durable(
    graph: Arc<SceneGraph>,
    config: SessionConfig,
    sup: &SupervisorConfig,
    n_sessions: usize,
    factory: &SupervisedBotFactory,
    arrivals: &ArrivalPlan,
) -> Result<(SupervisorReport, Option<DurableStore>)> {
    supervised_core(graph, config, sup, n_sessions, factory, arrivals, &Obs::noop(), "")
}

#[allow(clippy::too_many_arguments)]
fn supervised_core(
    graph: Arc<SceneGraph>,
    config: SessionConfig,
    sup: &SupervisorConfig,
    n_sessions: usize,
    factory: &SupervisedBotFactory,
    arrivals: &ArrivalPlan,
    obs: &Obs,
    label: &str,
) -> Result<(SupervisorReport, Option<DurableStore>)> {
    sup.validate()?;
    let breaker = CircuitBreaker::new(sup.breaker)
        .map_err(|e| RuntimeError::InvalidSupervisor(e.to_string()))?;
    let times = arrivals.arrival_times(n_sessions);
    let mut rec = obs.recorder(label.to_owned());
    rec.enter("supervisor", 0);
    let mut sim = Sim {
        graph,
        config,
        sup,
        factory,
        breaker,
        queue: VecDeque::new(),
        slots: vec![0.0; sup.slots],
        slot_q: {
            let mut q = EventQueue::new();
            for k in 0..sup.slots {
                q.push_keyed(0.0, 0, k as u64, k);
            }
            q
        },
        outcomes: (0..n_sessions).map(|_| None).collect(),
        queue_waits: Vec::new(),
        recovery_lat: Vec::new(),
        peak_depth: 0,
        admitted: 0,
        shed: 0,
        degraded: 0,
        completed: 0,
        recovered: 0,
        failed: 0,
        gave_up: 0,
        restarts_total: 0,
        warm_attempted: 0,
        warm_skipped: 0,
        session_logs: Vec::new(),
        recoveries: Vec::new(),
        total_steps: 0,
        durable: sup.store.map(DurableStore::new),
        o: SupObs::new(obs),
        slo: SupSlo::new(obs, sup.slo_config()),
        rec,
    };

    for (i, &t) in times.iter().enumerate() {
        sim.drain(t);
        sim.slo.on_arrival(t);
        if sim.queue.len() >= sup.queue_capacity {
            sim.outcomes[i] = Some(SessionOutcome::Shed { reason: "queue full".into() });
            sim.shed += 1;
            sim.o.shed_full.inc();
            sim.slo.on_shed(t);
            sim.rec.event("shed", i as u64, us_from_ms(t));
            continue;
        }
        let mode = match &sup.ladder {
            LadderPolicy::Occupancy => {
                let occ = (sim.queue.len() + 1) as f64 / sup.queue_capacity as f64;
                ServiceMode::for_occupancy(occ, sup)
            }
            LadderPolicy::SloDriven(_) => sim.slo.mode_for_burn(t),
        };
        sim.queue.push_back(Queued { idx: i, arrival_ms: t, mode });
        sim.peak_depth = sim.peak_depth.max(sim.queue.len());
    }
    sim.drain(f64::INFINITY);

    let makespan_ms = sim
        .slots
        .iter()
        .copied()
        .chain(times.last().copied())
        .fold(0.0f64, f64::max);
    sim.o.queue_depth_peak.observe(sim.peak_depth as u64);
    sim.rec.exit(us_from_ms(makespan_ms));
    let Sim {
        breaker,
        outcomes,
        queue_waits,
        recovery_lat,
        peak_depth,
        admitted,
        shed,
        degraded,
        completed,
        recovered,
        failed,
        gave_up,
        restarts_total,
        warm_attempted,
        warm_skipped,
        session_logs,
        recoveries,
        total_steps,
        durable,
        slo,
        rec,
        ..
    } = sim;
    obs.attach(rec);
    let (alerts, ledgers) = slo.finish(makespan_ms);

    let outcomes: Vec<SessionOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every arrival is admitted or shed"))
        .collect();
    let learning = LearningReport::from_sessions(session_logs.iter().map(|(l, s)| (l, *s)));
    let report = SupervisorReport {
        sessions: n_sessions,
        admitted,
        shed,
        degraded,
        completed,
        recovered,
        failed,
        gave_up,
        restarts: restarts_total,
        breaker: breaker.stats(),
        warm_attempted,
        warm_skipped,
        peak_queue_depth: peak_depth,
        makespan_ms,
        queue_wait: LatencySummary::from_samples_ms(&queue_waits),
        recovery_latency: LatencySummary::from_samples_ms(&recovery_lat),
        outcomes,
        learning,
        total_steps,
        recoveries,
        alerts,
        ledgers,
        durability: durable.as_ref().map(|d| d.stats()),
    };
    report.debug_assert_consistent();
    Ok((report, durable))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bot::GuidedBot;
    use crate::fixtures::{fix_the_computer, FRAME};

    fn config() -> SessionConfig {
        SessionConfig::for_frame(FRAME.0, FRAME.1)
    }

    /// Regression (overflow audit, PR 9): the doubling restart backoff
    /// used to compute `base * 2^(restarts-1)` unclamped — past restart
    /// ~1075 the product overflows f64 to +inf and every later
    /// timestamp on the simulated clock is poisoned (INF − INF = NaN).
    /// Both the supervisor and the fleet share the saturating helper.
    #[test]
    fn restart_backoff_saturates_instead_of_overflowing() {
        assert_eq!(restart_backoff(250.0, 1), 250.0);
        assert_eq!(restart_backoff(250.0, 2), 500.0);
        assert_eq!(restart_backoff(250.0, 3), 1000.0);
        let mut prev = 0.0;
        for restarts in [1, 10, 100, 1_075, 2_000, u32::MAX] {
            let b = restart_backoff(250.0, restarts);
            assert!(b.is_finite(), "restart {restarts} gave {b}");
            assert!(b <= MAX_BACKOFF_MS);
            assert!(b >= prev, "backoff shrank at restart {restarts}");
            prev = b;
        }
        assert_eq!(restart_backoff(250.0, u32::MAX), MAX_BACKOFF_MS);
        // A zero base never backs off, at any restart count.
        assert_eq!(restart_backoff(0.0, u32::MAX), 0.0);
    }

    /// Panics after `at` decisions, but only on incarnation 0 — the
    /// transient crash the supervisor exists to absorb.
    struct CrashOnce {
        inner: GuidedBot,
        at: usize,
        seen: usize,
    }

    impl Bot for CrashOnce {
        fn next_input(&mut self, session: &GameSession) -> Result<Option<InputEvent>> {
            self.seen += 1;
            if self.seen > self.at {
                panic!("injected transient crash");
            }
            self.inner.next_input(session)
        }
    }

    fn quiet<T>(f: impl FnOnce() -> T) -> T {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn arrival_plan_is_deterministic_and_spike_compresses_gaps() {
        let plan = ArrivalPlan::new(7, 100.0).unwrap();
        let a = plan.arrival_times(50);
        let b = plan.arrival_times(50);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
        assert!(a[49] > 0.0);
        // A 4x spike over the whole horizon packs the same arrivals into
        // roughly a quarter of the time.
        let spiked = plan.with_spike(LoadSpike::new(0.0, 1e9, 4.0).unwrap());
        let s = spiked.arrival_times(50);
        assert!(s[49] < a[49] / 2.0, "spiked {} vs base {}", s[49], a[49]);
        assert!(ArrivalPlan::new(7, 0.0).is_err());
        assert!(ArrivalPlan::new(7, f64::NAN).is_err());
    }

    #[test]
    fn light_load_admits_everyone_at_full_service() {
        let sup = SupervisorConfig {
            queue_capacity: 16,
            slots: 4,
            ..SupervisorConfig::default()
        };
        let arrivals = ArrivalPlan::new(1, 10_000.0).unwrap();
        let report = run_supervised_cohort(
            Arc::new(fix_the_computer()),
            config(),
            &sup,
            8,
            &|_, _| Box::new(GuidedBot::new()),
            &arrivals,
        )
        .unwrap();
        assert!(report.accounts_exactly(), "{report:?}");
        assert_eq!(report.admitted, 8);
        assert_eq!(report.shed, 0);
        assert_eq!(report.completed, 8);
        assert_eq!(report.degraded, 0, "light load never degrades");
        assert_eq!(report.learning.completed, 8);
        assert!(report.total_steps > 0);
        // Arrivals 10s apart on 4 slots never queue behind each other.
        assert_eq!(report.queue_wait.max_ms, 0.0);
    }

    #[test]
    fn overload_sheds_and_degrades_instead_of_growing_unboundedly() {
        let sup = SupervisorConfig {
            queue_capacity: 3,
            slots: 1,
            queue_deadline_ms: 10_000.0,
            step_ms: 100.0,
            ..SupervisorConfig::default()
        };
        // A stampede: everyone arrives ~1 ms apart.
        let arrivals = ArrivalPlan::new(2, 1.0).unwrap();
        let report = run_supervised_cohort(
            Arc::new(fix_the_computer()),
            config(),
            &sup,
            32,
            &|_, _| Box::new(GuidedBot::new()),
            &arrivals,
        )
        .unwrap();
        assert!(report.accounts_exactly(), "{report:?}");
        assert!(report.shed > 0, "overload must shed: {report:?}");
        assert!(report.degraded > 0, "overload must degrade before shedding");
        assert!(
            report.peak_queue_depth <= sup.queue_capacity,
            "the queue is bounded: {} > {}",
            report.peak_queue_depth,
            sup.queue_capacity
        );
        assert!(report.completed + report.recovered > 0, "someone still gets served");
        let shed_rows = report.outcomes.iter().filter(|o| o.is_shed()).count();
        assert_eq!(shed_rows, report.shed);
    }

    #[test]
    fn stale_queued_sessions_are_shed_at_the_deadline() {
        let sup = SupervisorConfig {
            queue_capacity: 8,
            slots: 1,
            queue_deadline_ms: 50.0,
            step_ms: 100.0,
            ..SupervisorConfig::default()
        };
        let arrivals = ArrivalPlan::new(3, 1.0).unwrap();
        let report = run_supervised_cohort(
            Arc::new(fix_the_computer()),
            config(),
            &sup,
            8,
            &|_, _| Box::new(GuidedBot::new()),
            &arrivals,
        )
        .unwrap();
        assert!(report.accounts_exactly());
        assert!(
            report
                .outcomes
                .iter()
                .any(|o| matches!(o, SessionOutcome::Shed { reason } if reason.contains("deadline"))),
            "{:?}",
            report.outcomes
        );
        // Served sessions all waited within the deadline.
        assert!(report.queue_wait.max_ms <= sup.queue_deadline_ms);
    }

    #[test]
    fn crashed_session_recovers_from_checkpoint_with_identical_tail() {
        let factory = |i: usize, incarnation: u32| -> Box<dyn Bot> {
            if i == 1 && incarnation == 0 {
                Box::new(CrashOnce { inner: GuidedBot::new(), at: 7, seen: 0 })
            } else {
                Box::new(GuidedBot::new())
            }
        };
        let sup = SupervisorConfig {
            queue_capacity: 16,
            slots: 2,
            checkpoint_every: 5,
            restart_budget: 2,
            ..SupervisorConfig::default()
        };
        let arrivals = ArrivalPlan::new(4, 10_000.0).unwrap();
        let graph = Arc::new(fix_the_computer());
        let report = quiet(|| {
            run_supervised_cohort(graph.clone(), config(), &sup, 4, &factory, &arrivals).unwrap()
        });
        assert!(report.accounts_exactly(), "{report:?}");
        assert_eq!(report.recovered, 1);
        assert_eq!(report.completed, 3);
        assert_eq!(report.restarts, 1);
        assert_eq!(
            report.outcomes[1],
            SessionOutcome::Recovered { resumed_at_step: 5, restarts: 1 }
        );
        assert!(report.outcomes[1].is_completed());
        assert_eq!(report.recovery_latency.count, 1);
        assert_eq!(report.recovery_latency.max_ms, sup.restart_backoff_ms);

        // The recovery record lets anyone replay the post-restore tail:
        // restore the recorded checkpoint, drive the incarnation-1 bot,
        // and the log must match bit for bit.
        let r = &report.recoveries[0];
        assert_eq!(r.session, 1);
        assert_eq!(r.resumed_at_step, 5);
        let save = SaveGame::from_text(r.checkpoint.as_ref().expect("crashed past a checkpoint"))
            .unwrap();
        let mut bot = factory(1, 1);
        let replay = resume_session(
            graph,
            config(),
            &save,
            &mut *bot,
            r.resumed_at_step,
            sup.max_steps,
            sup.tick_ms,
        )
        .unwrap();
        assert_eq!(replay.log.events(), r.tail.as_slice(), "post-restore tail replays exactly");
        assert!(replay.state.is_over(), "the recovered session finished the game");
    }

    #[test]
    fn hopeless_crasher_exhausts_its_restart_budget() {
        /// Panics before its first decision in every incarnation, so no
        /// checkpoint ever exists and no restart makes progress.
        struct AlwaysPanic;
        impl Bot for AlwaysPanic {
            fn next_input(&mut self, _s: &GameSession) -> Result<Option<InputEvent>> {
                panic!("injected transient crash");
            }
        }
        let sup = SupervisorConfig {
            restart_budget: 2,
            checkpoint_every: 5,
            ..SupervisorConfig::default()
        };
        let arrivals = ArrivalPlan::new(5, 10_000.0).unwrap();
        let report = quiet(|| {
            run_supervised_cohort(
                Arc::new(fix_the_computer()),
                config(),
                &sup,
                2,
                &|i, _| -> Box<dyn Bot> {
                    if i == 0 {
                        Box::new(AlwaysPanic)
                    } else {
                        Box::new(GuidedBot::new())
                    }
                },
                &arrivals,
            )
            .unwrap()
        });
        assert!(report.accounts_exactly(), "{report:?}");
        assert_eq!(report.gave_up, 1);
        assert_eq!(report.completed, 1);
        assert_eq!(report.restarts, u64::from(sup.restart_budget));
        match &report.outcomes[0] {
            SessionOutcome::GaveUp { restarts, reason } => {
                assert_eq!(*restarts, sup.restart_budget);
                assert!(reason.contains("injected transient crash"), "{reason}");
            }
            other => unreachable!("{other:?}"),
        }
        assert!(report.outcomes[0].is_failed());
        // Backoff doubles per restart: 250 then 500.
        assert_eq!(report.recovery_latency.count, 2);
        assert_eq!(report.recovery_latency.min_ms, 250.0);
        assert_eq!(report.recovery_latency.max_ms, 500.0);
    }

    #[test]
    fn typed_errors_fail_without_burning_restarts() {
        struct ErrBot;
        impl Bot for ErrBot {
            fn next_input(&mut self, _s: &GameSession) -> Result<Option<InputEvent>> {
                Err(RuntimeError::UnknownScenario("supervised-err".into()))
            }
        }
        let sup = SupervisorConfig::default();
        let arrivals = ArrivalPlan::new(6, 10_000.0).unwrap();
        let report = run_supervised_cohort(
            Arc::new(fix_the_computer()),
            config(),
            &sup,
            2,
            &|i, _| -> Box<dyn Bot> {
                if i == 0 {
                    Box::new(ErrBot)
                } else {
                    Box::new(GuidedBot::new())
                }
            },
            &arrivals,
        )
        .unwrap();
        assert!(report.accounts_exactly());
        assert_eq!(report.failed, 1);
        assert_eq!(report.restarts, 0, "typed errors never restart");
        match &report.outcomes[0] {
            SessionOutcome::Failed { reason } => {
                assert!(reason.contains("supervised-err"), "{reason}")
            }
            other => unreachable!("{other:?}"),
        }
    }

    #[test]
    fn breaker_trips_during_warm_phase_on_a_sick_link() {
        let sup = SupervisorConfig {
            warm_fetches: 8,
            warm_faults: FaultPlan::new(0xBAD).with_loss(0.95).unwrap(),
            breaker: BreakerConfig {
                window: 8,
                min_samples: 4,
                trip_ratio: 0.5,
                cooldown_ms: 1e12,
                probes: 2,
            },
            ..SupervisorConfig::default()
        };
        let arrivals = ArrivalPlan::new(8, 1.0).unwrap();
        let report = run_supervised_cohort(
            Arc::new(fix_the_computer()),
            config(),
            &sup,
            6,
            &|_, _| Box::new(GuidedBot::new()),
            &arrivals,
        )
        .unwrap();
        assert!(report.accounts_exactly());
        assert!(report.breaker.trips >= 1, "{:?}", report.breaker);
        assert!(report.warm_skipped > 0, "an open breaker skips warm fetches");
        assert!(report.breaker.fast_failures > 0);
        // Sessions still play — warming is best-effort.
        assert!(report.completed > 0);
    }

    #[test]
    fn supervised_runs_are_byte_identical_including_obs_exports() {
        let run = || {
            let factory = |i: usize, incarnation: u32| -> Box<dyn Bot> {
                if i % 3 == 1 && incarnation == 0 {
                    Box::new(CrashOnce { inner: GuidedBot::new(), at: 6, seen: 0 })
                } else {
                    Box::new(GuidedBot::new())
                }
            };
            let sup = SupervisorConfig {
                queue_capacity: 4,
                slots: 2,
                step_ms: 80.0,
                warm_faults: FaultPlan::new(0xFEED)
                    .with_loss(0.4)
                    .unwrap()
                    .with_load_spike(LoadSpike::new(0.0, 500.0, 2.0).unwrap()),
                ..SupervisorConfig::default()
            };
            let arrivals = ArrivalPlan::new(9, 20.0)
                .unwrap()
                .with_spike(LoadSpike::new(0.0, 200.0, 3.0).unwrap());
            let obs = Obs::recording();
            let report = quiet(|| {
                run_supervised_cohort_observed(
                    Arc::new(fix_the_computer()),
                    config(),
                    &sup,
                    20,
                    &factory,
                    &arrivals,
                    &obs,
                    "supervised",
                )
                .unwrap()
            });
            let snap = obs.snapshot();
            (report, snap.to_table(), snap.metrics_csv(), snap.spans_csv(), snap.to_jsonl())
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0, "reports are identical field for field");
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
        assert_eq!(a.3, b.3);
        assert_eq!(a.4, b.4);
        assert!(a.0.accounts_exactly());
    }

    #[test]
    fn observed_counters_mirror_the_report_exactly() {
        let sup = SupervisorConfig {
            queue_capacity: 3,
            slots: 1,
            step_ms: 60.0,
            ..SupervisorConfig::default()
        };
        let arrivals = ArrivalPlan::new(10, 5.0).unwrap();
        let obs = Obs::recording();
        let report = run_supervised_cohort_observed(
            Arc::new(fix_the_computer()),
            config(),
            &sup,
            16,
            &|_, _| Box::new(GuidedBot::new()),
            &arrivals,
            &obs,
            "mirror",
        )
        .unwrap();
        let snap = obs.snapshot();
        assert_eq!(snap.counter_total("supervisor.admitted"), report.admitted as u64);
        assert_eq!(snap.counter_total("supervisor.shed"), report.shed as u64);
        assert_eq!(snap.counter_total("supervisor.degraded"), report.degraded as u64);
        assert_eq!(snap.counter_total("supervisor.completed"), report.completed as u64);
        assert_eq!(snap.counter_total("supervisor.recovered"), report.recovered as u64);
        assert_eq!(snap.counter_total("supervisor.failed"), report.failed as u64);
        assert_eq!(snap.counter_total("supervisor.gave_up"), report.gave_up as u64);
        assert_eq!(snap.counter_total("supervisor.restarts"), report.restarts);
        assert_eq!(snap.gauge_max("supervisor.queue_depth_peak"), report.peak_queue_depth as u64);
        let waits = snap.histogram("supervisor.queue_wait_us").unwrap();
        assert_eq!(waits.count, report.queue_wait.count as u64);
        assert_eq!(snap.traces.len(), 1);
        assert_eq!(snap.traces[0].label, "mirror");
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let graph = Arc::new(fix_the_computer());
        let arrivals = ArrivalPlan::new(1, 100.0).unwrap();
        let cases = [
            SupervisorConfig { queue_capacity: 0, ..SupervisorConfig::default() },
            SupervisorConfig { slots: 0, ..SupervisorConfig::default() },
            SupervisorConfig { queue_deadline_ms: 0.0, ..SupervisorConfig::default() },
            SupervisorConfig { degrade_at: 1.5, ..SupervisorConfig::default() },
            SupervisorConfig { degrade_at: 0.9, conceal_at: 0.5, ..SupervisorConfig::default() },
            SupervisorConfig { restart_backoff_ms: f64::NAN, ..SupervisorConfig::default() },
            SupervisorConfig { step_ms: 0.0, ..SupervisorConfig::default() },
            SupervisorConfig { max_steps: 0, ..SupervisorConfig::default() },
            SupervisorConfig {
                ladder: LadderPolicy::SloDriven(SloLadderConfig {
                    shed_budget: 0.0,
                    ..SloLadderConfig::default()
                }),
                ..SupervisorConfig::default()
            },
            SupervisorConfig {
                ladder: LadderPolicy::SloDriven(SloLadderConfig {
                    short_ms: 2_000.0,
                    long_ms: 1_000.0,
                    ..SloLadderConfig::default()
                }),
                ..SupervisorConfig::default()
            },
            SupervisorConfig {
                ladder: LadderPolicy::SloDriven(SloLadderConfig {
                    degrade_burn: 4.0,
                    conceal_burn: 1.0,
                    ..SloLadderConfig::default()
                }),
                ..SupervisorConfig::default()
            },
            SupervisorConfig {
                ladder: LadderPolicy::SloDriven(SloLadderConfig {
                    wait_target_ms: f64::NAN,
                    ..SloLadderConfig::default()
                }),
                ..SupervisorConfig::default()
            },
        ];
        for (k, sup) in cases.iter().enumerate() {
            let out = run_supervised_cohort(
                graph.clone(),
                config(),
                sup,
                1,
                &|_, _| Box::new(GuidedBot::new()),
                &arrivals,
            );
            assert!(
                matches!(out, Err(RuntimeError::InvalidSupervisor(_))),
                "case {k} must be rejected"
            );
        }
    }

    #[test]
    fn empty_cohort_is_fine() {
        let report = run_supervised_cohort(
            Arc::new(fix_the_computer()),
            config(),
            &SupervisorConfig::default(),
            0,
            &|_, _| Box::new(GuidedBot::new()),
            &ArrivalPlan::new(1, 100.0).unwrap(),
        )
        .unwrap();
        assert!(report.accounts_exactly());
        assert_eq!(report.sessions, 0);
        assert_eq!(report.makespan_ms, 0.0);
        assert_eq!(report.queue_wait.count, 0);
        assert!(report.alerts.is_empty(), "no traffic, no alerts");
        assert_eq!(report.ledgers.len(), 2);
        assert_eq!(report.ledgers[0].spend(), 0.0, "empty run spends no budget");
    }

    /// The stampede both ladder tests run: a hard overload where the
    /// occupancy ladder demonstrably sheds.
    fn stampede() -> (SupervisorConfig, ArrivalPlan) {
        let sup = SupervisorConfig {
            queue_capacity: 3,
            slots: 1,
            queue_deadline_ms: 10_000.0,
            step_ms: 100.0,
            ..SupervisorConfig::default()
        };
        (sup, ArrivalPlan::new(2, 700.0).unwrap())
    }

    fn slo_ladder() -> SloLadderConfig {
        SloLadderConfig {
            shed_budget: 0.005,
            wait_target_ms: 50.0,
            wait_budget: 0.05,
            short_ms: 100.0,
            long_ms: 2_000.0,
            degrade_burn: 1.0,
            conceal_burn: 2.0,
        }
    }

    #[test]
    fn slo_driven_ladder_sheds_fewer_sessions_than_occupancy() {
        let (sup, arrivals) = stampede();
        let run = |ladder: LadderPolicy| {
            run_supervised_cohort(
                Arc::new(fix_the_computer()),
                config(),
                &SupervisorConfig { ladder, ..sup.clone() },
                32,
                &|_, _| Box::new(GuidedBot::new()),
                &arrivals,
            )
            .unwrap()
        };
        let occ = run(LadderPolicy::Occupancy);
        let slo = run(LadderPolicy::SloDriven(slo_ladder()));
        assert!(occ.accounts_exactly() && slo.accounts_exactly());
        assert!(occ.shed > 0, "the stampede must overload the occupancy ladder: {occ:?}");
        assert!(
            slo.shed < occ.shed,
            "SLO-driven ladder must shed fewer: {} vs {}",
            slo.shed,
            occ.shed
        );
        // Fewer sheds against the same budget = less error budget spent.
        assert!(slo.ledgers[0].spend() <= occ.ledgers[0].spend());
        // It pays with degraded service, not with dropped sessions.
        assert!(slo.degraded >= occ.degraded, "{} vs {}", slo.degraded, occ.degraded);
        // Overspending the shed budget fired alerts on the occupancy run.
        assert!(!occ.ledgers[0].within_budget());
        assert!(occ.alerts.count(vgbl_obs::AlertPhase::Firing) > 0);
    }

    #[test]
    fn slo_ledgers_mirror_report_accounting_exactly() {
        let (sup, arrivals) = stampede();
        for ladder in [LadderPolicy::Occupancy, LadderPolicy::SloDriven(slo_ladder())] {
            let report = run_supervised_cohort(
                Arc::new(fix_the_computer()),
                config(),
                &SupervisorConfig { ladder, ..sup.clone() },
                24,
                &|_, _| Box::new(GuidedBot::new()),
                &arrivals,
            )
            .unwrap();
            let shed = &report.ledgers[0];
            assert_eq!(shed.objective, "shed_rate");
            assert_eq!(shed.bad as usize, report.shed, "ledger bad == report shed");
            assert_eq!(shed.total as usize, report.sessions, "ledger total == arrivals");
            let wait = &report.ledgers[1];
            assert_eq!(wait.objective, "admission_wait");
            assert_eq!(wait.total as usize, report.admitted, "every served session is counted");
            assert!(wait.bad <= wait.total);
        }
    }

    #[test]
    fn slo_driven_runs_are_byte_identical_including_telemetry() {
        let (sup, arrivals) = stampede();
        let sup = SupervisorConfig { ladder: LadderPolicy::SloDriven(slo_ladder()), ..sup };
        let run = || {
            let obs = Obs::recording();
            let report = run_supervised_cohort_observed(
                Arc::new(fix_the_computer()),
                config(),
                &sup,
                24,
                &|_, _| Box::new(GuidedBot::new()),
                &arrivals,
                &obs,
                "slo-ladder",
            )
            .unwrap();
            let alerts_csv = report.alerts.to_csv();
            let series_csv = obs.series_csv();
            (report, alerts_csv, series_csv)
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0, "reports must match field for field");
        assert_eq!(a.1, b.1, "alert timelines must be byte-identical");
        assert_eq!(a.2, b.2, "series exports must be byte-identical");
        assert!(a.2.contains("supervisor.arrivals"), "arrival series is tapped");
        assert!(a.2.contains("supervisor.queue_wait_us"), "wait series is tapped");
    }

    #[test]
    fn slo_ladder_on_noop_obs_still_sees_its_series() {
        // The control series are standalone: disabling observability must
        // not change what the SLO-driven ladder decides.
        let (sup, arrivals) = stampede();
        let sup = SupervisorConfig { ladder: LadderPolicy::SloDriven(slo_ladder()), ..sup };
        let noop = run_supervised_cohort(
            Arc::new(fix_the_computer()),
            config(),
            &sup,
            24,
            &|_, _| Box::new(GuidedBot::new()),
            &arrivals,
        )
        .unwrap();
        let obs = Obs::recording();
        let observed = run_supervised_cohort_observed(
            Arc::new(fix_the_computer()),
            config(),
            &sup,
            24,
            &|_, _| Box::new(GuidedBot::new()),
            &arrivals,
            &obs,
            "paired",
        )
        .unwrap();
        assert_eq!(noop, observed, "observability must never steer the ladder");
        assert!(!noop.alerts.is_empty() || noop.shed == 0, "alerts work without obs too");
    }

    #[test]
    fn durable_cohort_persists_checkpoints_and_survives_cold_restart() {
        use vgbl_store::{DiskFaultPlan, StoreConfig};
        let sup = SupervisorConfig {
            queue_capacity: 16,
            slots: 4,
            checkpoint_every: 3,
            store: Some(StoreConfig {
                snapshot_every: 4,
                dual_write: false,
                faults: DiskFaultPlan::new(21),
            }),
            ..SupervisorConfig::default()
        };
        let arrivals = ArrivalPlan::new(1, 10_000.0).unwrap();
        let graph = Arc::new(fix_the_computer());
        let (report, store) = run_supervised_cohort_durable(
            graph.clone(),
            config(),
            &sup,
            6,
            &|_, _| Box::new(GuidedBot::new()),
            &arrivals,
        )
        .unwrap();
        assert!(report.accounts_exactly(), "{report:?}");
        let stats = report.durability.expect("store configured");
        assert!(stats.acked_records >= 6, "every session checkpointed at least once: {stats:?}");
        // Cold restart: kill the cohort, recover from the store alone,
        // and replay each session's tail from its durable checkpoint.
        let mut store = store.expect("store configured");
        store.power_loss();
        let recovery = store.recover();
        assert!(recovery.scrub.lost.is_empty(), "clean disk: {:?}", recovery.scrub);
        assert!(!recovery.sessions.is_empty());
        for (sid, rc) in &recovery.sessions {
            let text = std::str::from_utf8(&rc.record.payload).unwrap();
            let save = SaveGame::from_text(text).unwrap();
            assert_eq!(save.digest(), rc.record.digest, "payload digest survives the store");
            let mut bot = GuidedBot::new();
            let run = resume_session(
                graph.clone(),
                config(),
                &save,
                &mut bot,
                rc.record.step as usize,
                sup.max_steps,
                sup.tick_ms,
            )
            .unwrap();
            assert!(run.state.is_over(), "session {sid} resumed from step {} and finished", rc.record.step);
        }
    }
}

