//! # vgbl-runtime — the VGBL gaming platform
//!
//! The paper's "runtime environment … an augmented video player with the
//! interaction functionalities" (§4.3). Players examine and drag objects,
//! collect items into a backpack, talk to NPCs, earn rewards, and switch
//! between video scenarios; the platform records everything a learning
//! analyst needs.
//!
//! * [`state`] — flags, score, visit history, and the script [`vgbl_script::Env`]
//!   binding (`has`, `flag`, `visited`, …).
//! * [`inventory`] — the backpack and the achievement objects of §3.3.
//! * [`input`] — mouse/keyboard input events ("mouse and keyboard are
//!   responsible for delivering users' interactions", §3.1).
//! * [`feedback`] — everything the platform presents back to the player.
//! * [`engine`] — [`engine::GameSession`], the interaction loop:
//!   hit-testing, trigger dispatch, action execution, timers.
//! * [`playback`] — video playback over encoded segments, decoding
//!   through a shared GOP cache so cohorts decode each GOP once.
//! * [`render`] — Figure 2 reproduction: frame compositing with mounted
//!   objects plus the deterministic ASCII UI render.
//! * [`save`] — save games (text format, versioned).
//! * [`analytics`] — session logs and learning reports (§3.2 knowledge
//!   delivery, measured).
//! * [`bot`] — simulated players: scripted, random and goal-seeking.
//! * [`baseline`] — the linear DVD-menu baseline for EXP-4.
//! * [`device`] — input-device mappings (§2's remote control: focus
//!   ring + OK/TAKE/digit buttons, so the game is playable without a
//!   pointer).
//! * [`executor`] — the deterministic cooperative executor (EXP-18):
//!   a seeded run queue of yield-at-fetch session state machines, a
//!   per-tick batch planner for coalesced chunk fetches, and the
//!   `(time, class, tie, seq)` event queue the supervisor and fleet
//!   schedule on.
//! * [`server`] — a parallel multi-session host (EXP-8).
//! * [`supervisor`] — the supervised host (EXP-14): admission control,
//!   load shedding, a degradation ladder, circuit breaking on the
//!   stream link, and checkpoint-based crash recovery.
//! * [`fleet`] — the sharded fleet supervisor (EXP-17): consistent-hash
//!   session routing, shard failure domains with seeded fault
//!   injection, SLO-driven checkpoint migration, and autoscaling.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analytics;
pub mod baseline;
pub mod batch;
pub mod bot;
pub mod chaos;
pub mod device;
pub mod engine;
pub mod error;
pub mod executor;
pub mod feedback;
pub mod fixtures;
pub mod fleet;
pub mod input;
pub mod inventory;
pub mod playback;
pub mod render;
pub mod save;
pub mod server;
pub mod state;
pub mod supervisor;

pub use analytics::{
    DecodeReuse, LatencySummary, LearningReport, LogEvent, ResilienceReport, SessionLog,
};
pub use batch::{run_playback_cohort_batched, BatchedCohortReport};
pub use bot::{run_session, run_session_observed, Bot, BotRun, ExplorerBot, GuidedBot, RandomBot};
pub use device::{RemoteButton, RemoteControl};
pub use engine::{GameSession, SessionConfig};
pub use error::RuntimeError;
pub use executor::{
    run_tasks, run_tasks_observed, CohortRun, EventQueue, ExecutorStats, SessionTask, SimTime,
    Step, Timed,
};
pub use feedback::Feedback;
pub use chaos::{
    incident_report, run_chaos, ChaosConfig, ChaosReport, Incident, IncidentReport, InvariantCheck,
};
pub use fleet::{
    run_fleet, run_fleet_observed, AutoscaleConfig, DurabilityReport, FleetConfig, FleetReport,
    FleetRouter, FleetWorkload, LostSession, MigrationConfig, MigrationReason, MigrationRecord,
    ScaleEvent, ShardFault, ShardFaultKind, ShardReport,
};
pub use input::InputEvent;
pub use inventory::Inventory;
pub use playback::{PlaybackController, PlaybackStats};
pub use save::SaveGame;
pub use server::{
    run_cohort, run_cohort_threaded, run_playback_cohort, run_playback_cohort_observed,
    run_playback_cohort_observed_threaded, run_playback_cohort_threaded,
    run_playback_cohort_with_stats, PlaybackCohortReport, ServerReport, SessionOutcome,
};
pub use state::GameState;
pub use supervisor::{
    resume_session, run_supervised_cohort, run_supervised_cohort_durable,
    run_supervised_cohort_observed, ArrivalPlan, LadderPolicy, RecoveryRecord, ServiceMode,
    SloLadderConfig, SupervisedBotFactory, SupervisorConfig, SupervisorReport,
};

/// Result alias for runtime operations.
pub type Result<T> = std::result::Result<T, RuntimeError>;
