//! Parallel multi-session hosting (EXP-8).
//!
//! The paper situates the platform in a distance-learning deployment —
//! many students playing concurrently against shared content. Because
//! [`vgbl_scene::SceneGraph`] is immutable at play time, sessions share
//! it through an `Arc` and scale embarrassingly: the server fans session
//! jobs out to a fixed worker pool over crossbeam channels and aggregates
//! the per-session analytics into one [`LearningReport`].

use std::sync::Arc;

use crossbeam::channel;
use vgbl_scene::SceneGraph;

use crate::analytics::LearningReport;
use crate::bot::{run_session, Bot, BotRun};
use crate::engine::SessionConfig;
use crate::Result;

/// What the server runs per session: a factory producing a fresh bot for
/// session `i`. Must be `Sync` — workers call it concurrently.
pub type BotFactory = dyn Fn(usize) -> Box<dyn Bot> + Sync;

/// Aggregated outcome of a server run.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Sessions completed (all of them — failures abort the run).
    pub sessions: usize,
    /// The cohort's learning metrics.
    pub learning: LearningReport,
    /// Total decisions submitted across all sessions.
    pub total_steps: usize,
}

/// Runs `n_sessions` bot sessions over `workers` OS threads.
///
/// Deterministic *per session*: session `i` always plays the same game
/// (factories receive the session index, so seeded bots reproduce runs
/// regardless of which worker executes them).
pub fn run_cohort(
    graph: Arc<SceneGraph>,
    config: SessionConfig,
    n_sessions: usize,
    workers: usize,
    bot_factory: &BotFactory,
    max_steps: usize,
    tick_ms: u64,
) -> Result<ServerReport> {
    if n_sessions == 0 {
        return Ok(ServerReport {
            sessions: 0,
            learning: LearningReport::from_sessions(std::iter::empty()),
            total_steps: 0,
        });
    }
    let workers = workers.max(1).min(n_sessions);
    let (job_tx, job_rx) = channel::unbounded::<usize>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, Result<BotRun>)>();
    for i in 0..n_sessions {
        job_tx.send(i).expect("queue open");
    }
    drop(job_tx);

    crossbeam::scope(|s| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let graph = graph.clone();
            let config = config.clone();
            s.spawn(move |_| {
                for i in job_rx.iter() {
                    let mut bot = bot_factory(i);
                    let run = run_session(graph.clone(), config.clone(), &mut *bot, max_steps, tick_ms);
                    if res_tx.send((i, run)).is_err() {
                        break;
                    }
                }
            });
        }
    })
    .expect("worker panicked");
    drop(res_tx);

    let mut runs: Vec<(usize, BotRun)> = Vec::with_capacity(n_sessions);
    for (i, run) in res_rx.iter() {
        runs.push((i, run?));
    }
    // Deterministic aggregation order.
    runs.sort_by_key(|(i, _)| *i);

    let total_steps = runs.iter().map(|(_, r)| r.steps).sum();
    let learning =
        LearningReport::from_sessions(runs.iter().map(|(_, r)| (&r.log, r.state.score)));
    Ok(ServerReport { sessions: runs.len(), learning, total_steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bot::{GuidedBot, RandomBot};
    use crate::fixtures::{fix_the_computer, FRAME};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config() -> SessionConfig {
        SessionConfig::for_frame(FRAME.0, FRAME.1)
    }

    #[test]
    fn cohort_of_guided_bots_all_complete() {
        let report = run_cohort(
            Arc::new(fix_the_computer()),
            config(),
            16,
            4,
            &|_| Box::new(GuidedBot::new()),
            100,
            50,
        )
        .unwrap();
        assert_eq!(report.sessions, 16);
        assert_eq!(report.learning.completed, 16);
        assert_eq!(report.learning.completion_rate(), 1.0);
        assert!(report.total_steps > 0);
    }

    #[test]
    fn results_are_deterministic_across_worker_counts() {
        let run = |workers: usize| {
            run_cohort(
                Arc::new(fix_the_computer()),
                config(),
                12,
                workers,
                &|i| Box::new(RandomBot::new(StdRng::seed_from_u64(i as u64))),
                80,
                50,
            )
            .unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.learning, b.learning);
        assert_eq!(a.total_steps, b.total_steps);
    }

    #[test]
    fn empty_cohort_is_fine() {
        let report = run_cohort(
            Arc::new(fix_the_computer()),
            config(),
            0,
            4,
            &|_| Box::new(GuidedBot::new()),
            10,
            0,
        )
        .unwrap();
        assert_eq!(report.sessions, 0);
    }

    #[test]
    fn mixed_cohort_reports_blended_metrics() {
        // Half guided, half random: completion rate sits strictly between.
        let report = run_cohort(
            Arc::new(fix_the_computer()),
            config(),
            10,
            2,
            &|i| {
                if i % 2 == 0 {
                    Box::new(GuidedBot::new())
                } else {
                    Box::new(RandomBot::new(StdRng::seed_from_u64(i as u64)))
                }
            },
            60,
            50,
        )
        .unwrap();
        assert!(report.learning.completion_rate() >= 0.5);
        assert!(report.learning.avg_decisions > 0.0);
    }
}
