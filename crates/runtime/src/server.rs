//! Parallel multi-session hosting (EXP-8).
//!
//! The paper situates the platform in a distance-learning deployment —
//! many students playing concurrently against shared content. Because
//! [`vgbl_scene::SceneGraph`] is immutable at play time, sessions share
//! it through an `Arc` and scale embarrassingly: the server fans session
//! jobs out to a fixed worker pool over crossbeam channels and aggregates
//! the per-session analytics into one [`LearningReport`].

use std::sync::Arc;

use crossbeam::channel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vgbl_media::cache::GopCache;
use vgbl_media::codec::EncodedVideo;
use vgbl_media::{SegmentId, SegmentTable};
use vgbl_scene::SceneGraph;

use crate::analytics::{DecodeReuse, LearningReport};
use crate::bot::{run_session, Bot, BotRun};
use crate::engine::SessionConfig;
use crate::playback::{PlaybackController, PlaybackStats};
use crate::Result;

/// What the server runs per session: a factory producing a fresh bot for
/// session `i`. Must be `Sync` — workers call it concurrently.
pub type BotFactory = dyn Fn(usize) -> Box<dyn Bot> + Sync;

/// Aggregated outcome of a server run.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Sessions completed (all of them — failures abort the run).
    pub sessions: usize,
    /// The cohort's learning metrics.
    pub learning: LearningReport,
    /// Total decisions submitted across all sessions.
    pub total_steps: usize,
}

/// Runs `n_sessions` bot sessions over `workers` OS threads.
///
/// Deterministic *per session*: session `i` always plays the same game
/// (factories receive the session index, so seeded bots reproduce runs
/// regardless of which worker executes them).
pub fn run_cohort(
    graph: Arc<SceneGraph>,
    config: SessionConfig,
    n_sessions: usize,
    workers: usize,
    bot_factory: &BotFactory,
    max_steps: usize,
    tick_ms: u64,
) -> Result<ServerReport> {
    if n_sessions == 0 {
        return Ok(ServerReport {
            sessions: 0,
            learning: LearningReport::from_sessions(std::iter::empty()),
            total_steps: 0,
        });
    }
    let workers = workers.max(1).min(n_sessions);
    let (job_tx, job_rx) = channel::unbounded::<usize>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, Result<BotRun>)>();
    for i in 0..n_sessions {
        job_tx.send(i).expect("queue open");
    }
    drop(job_tx);

    crossbeam::scope(|s| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let graph = graph.clone();
            let config = config.clone();
            s.spawn(move |_| {
                for i in job_rx.iter() {
                    let mut bot = bot_factory(i);
                    let run = run_session(graph.clone(), config.clone(), &mut *bot, max_steps, tick_ms);
                    if res_tx.send((i, run)).is_err() {
                        break;
                    }
                }
            });
        }
    })
    .expect("worker panicked");
    drop(res_tx);

    let mut runs: Vec<(usize, BotRun)> = Vec::with_capacity(n_sessions);
    for (i, run) in res_rx.iter() {
        runs.push((i, run?));
    }
    // Deterministic aggregation order.
    runs.sort_by_key(|(i, _)| *i);

    let total_steps = runs.iter().map(|(_, r)| r.steps).sum();
    let learning =
        LearningReport::from_sessions(runs.iter().map(|(_, r)| (&r.log, r.state.score)));
    Ok(ServerReport { sessions: runs.len(), learning, total_steps })
}

/// Aggregated outcome of a playback cohort run (EXP-11).
#[derive(Debug, Clone)]
pub struct PlaybackCohortReport {
    /// Sessions completed.
    pub sessions: usize,
    /// Frames served to players, summed over the cohort.
    pub frames_served: usize,
    /// Frames actually decoded, summed over the cohort. With a shared
    /// cache large enough for the video this approaches the frame count
    /// of the video itself — each GOP decoded once *in total*.
    pub frames_decoded: usize,
    /// Segment switches performed, summed over the cohort.
    pub switches: usize,
    /// Decode-reuse counters of the shared cache after the run.
    pub reuse: DecodeReuse,
}

/// Runs `n_sessions` simulated playback sessions over `workers` OS
/// threads, all decoding through one shared [`GopCache`].
///
/// Each session is a deterministic seeded random walk: it starts in
/// segment `i mod n_segments`, and per step either switches to a random
/// segment (1 in 4) or advances ~one frame of wall time and renders. The
/// *frames each session sees* are bit-exact regardless of `workers` or
/// cache capacity; only who pays for decoding varies, which is exactly
/// what [`PlaybackCohortReport`] measures.
pub fn run_playback_cohort(
    video: Arc<EncodedVideo>,
    segments: &SegmentTable,
    cache: Arc<GopCache>,
    n_sessions: usize,
    workers: usize,
    steps_per_session: usize,
) -> Result<PlaybackCohortReport> {
    let n_segments = segments.len().max(1) as u32;
    if n_sessions == 0 {
        return Ok(PlaybackCohortReport {
            sessions: 0,
            frames_served: 0,
            frames_decoded: 0,
            switches: 0,
            reuse: DecodeReuse::from_cache(&cache.stats()),
        });
    }
    let workers = workers.max(1).min(n_sessions);
    let (job_tx, job_rx) = channel::unbounded::<usize>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, Result<PlaybackStats>)>();
    for i in 0..n_sessions {
        job_tx.send(i).expect("queue open");
    }
    drop(job_tx);

    crossbeam::scope(|s| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let video = video.clone();
            let cache = cache.clone();
            s.spawn(move |_| {
                for i in job_rx.iter() {
                    let run = play_one_session(
                        video.clone(),
                        segments.clone(),
                        cache.clone(),
                        i,
                        n_segments,
                        steps_per_session,
                    );
                    if res_tx.send((i, run)).is_err() {
                        break;
                    }
                }
            });
        }
    })
    .expect("worker panicked");
    drop(res_tx);

    let mut stats: Vec<(usize, PlaybackStats)> = Vec::with_capacity(n_sessions);
    for (i, run) in res_rx.iter() {
        stats.push((i, run?));
    }
    stats.sort_by_key(|(i, _)| *i);

    Ok(PlaybackCohortReport {
        sessions: stats.len(),
        frames_served: stats.iter().map(|(_, s)| s.frames_served).sum(),
        frames_decoded: stats.iter().map(|(_, s)| s.frames_decoded).sum(),
        switches: stats.iter().map(|(_, s)| s.switches).sum(),
        reuse: DecodeReuse::from_cache(&cache.stats()),
    })
}

/// One seeded playback walk; deterministic in `(i, n_segments, steps)`.
fn play_one_session(
    video: Arc<EncodedVideo>,
    segments: SegmentTable,
    cache: Arc<GopCache>,
    i: usize,
    n_segments: u32,
    steps: usize,
) -> Result<PlaybackStats> {
    let initial = SegmentId(i as u32 % n_segments);
    let mut player = PlaybackController::shared(video, segments, initial, cache)?;
    let mut rng = StdRng::seed_from_u64(0x9e37_79b9 ^ i as u64);
    player.current_frame()?;
    for _ in 0..steps {
        if rng.gen_range(0..4u32) == 0 {
            player.switch_segment(SegmentId(rng.gen_range(0..n_segments)))?;
        } else {
            player.advance_ms(33);
            player.current_frame()?;
        }
    }
    Ok(player.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bot::{GuidedBot, RandomBot};
    use crate::fixtures::{fix_the_computer, FRAME};

    fn config() -> SessionConfig {
        SessionConfig::for_frame(FRAME.0, FRAME.1)
    }

    #[test]
    fn cohort_of_guided_bots_all_complete() {
        let report = run_cohort(
            Arc::new(fix_the_computer()),
            config(),
            16,
            4,
            &|_| Box::new(GuidedBot::new()),
            100,
            50,
        )
        .unwrap();
        assert_eq!(report.sessions, 16);
        assert_eq!(report.learning.completed, 16);
        assert_eq!(report.learning.completion_rate(), 1.0);
        assert!(report.total_steps > 0);
    }

    #[test]
    fn results_are_deterministic_across_worker_counts() {
        let run = |workers: usize| {
            run_cohort(
                Arc::new(fix_the_computer()),
                config(),
                12,
                workers,
                &|i| Box::new(RandomBot::new(StdRng::seed_from_u64(i as u64))),
                80,
                50,
            )
            .unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.learning, b.learning);
        assert_eq!(a.total_steps, b.total_steps);
    }

    #[test]
    fn empty_cohort_is_fine() {
        let report = run_cohort(
            Arc::new(fix_the_computer()),
            config(),
            0,
            4,
            &|_| Box::new(GuidedBot::new()),
            10,
            0,
        )
        .unwrap();
        assert_eq!(report.sessions, 0);
    }

    fn cohort_video() -> (Arc<EncodedVideo>, SegmentTable) {
        use vgbl_media::codec::{EncodeConfig, Encoder};
        use vgbl_media::color::Rgb;
        use vgbl_media::synth::{FootageSpec, ShotSpec};
        use vgbl_media::timeline::FrameRate;

        let footage = FootageSpec {
            width: 32,
            height: 24,
            rate: FrameRate::FPS30,
            shots: vec![
                ShotSpec::plain(12, Rgb::new(210, 40, 40)),
                ShotSpec::plain(12, Rgb::new(40, 210, 40)),
                ShotSpec::plain(12, Rgb::new(40, 40, 210)),
            ],
            noise_seed: 77,
        }
        .render()
        .unwrap();
        let video = Encoder::new(EncodeConfig { gop: 6, ..Default::default() })
            .encode(&footage.frames, footage.rate)
            .unwrap();
        let table = SegmentTable::from_cuts(36, &[12, 24]).unwrap();
        (Arc::new(video), table)
    }

    #[test]
    fn playback_cohort_shares_decode_work() {
        let (video, table) = cohort_video();
        let cache = Arc::new(GopCache::new(16));
        let report =
            run_playback_cohort(video.clone(), &table, cache, 64, 4, 40).unwrap();
        assert_eq!(report.sessions, 64);
        assert!(report.frames_served >= 64 * 30);
        // 6 GOPs × 6 frames = 36 decodable frames. With a cache that holds
        // the whole video, the cohort decodes each GOP exactly once in
        // total — not once per session.
        assert_eq!(report.frames_decoded, video.len());
        assert_eq!(report.reuse.misses, 6);
        assert!(
            report.reuse.hit_rate() >= 0.9,
            "hit rate {:.3}",
            report.reuse.hit_rate()
        );
    }

    #[test]
    fn playback_cohort_frames_deterministic_across_workers_and_capacity() {
        let (video, table) = cohort_video();
        let run = |workers: usize, capacity: usize| {
            run_playback_cohort(
                video.clone(),
                &table,
                Arc::new(GopCache::new(capacity)),
                12,
                workers,
                30,
            )
            .unwrap()
        };
        let a = run(1, 16);
        let b = run(4, 16);
        let c = run(4, 2);
        // Session walks are seeded per index: served frames and switches
        // never depend on scheduling or on cache capacity.
        assert_eq!(a.frames_served, b.frames_served);
        assert_eq!(a.switches, b.switches);
        assert_eq!(a.frames_served, c.frames_served);
        assert_eq!(a.switches, c.switches);
        // Only the decode cost varies: a tiny cache decodes more.
        assert!(c.frames_decoded >= a.frames_decoded);
    }

    #[test]
    fn empty_playback_cohort_is_fine() {
        let (video, table) = cohort_video();
        let report =
            run_playback_cohort(video, &table, Arc::new(GopCache::new(4)), 0, 4, 10).unwrap();
        assert_eq!(report.sessions, 0);
        assert_eq!(report.frames_served, 0);
    }

    #[test]
    fn mixed_cohort_reports_blended_metrics() {
        // Half guided, half random: completion rate sits strictly between.
        let report = run_cohort(
            Arc::new(fix_the_computer()),
            config(),
            10,
            2,
            &|i| {
                if i % 2 == 0 {
                    Box::new(GuidedBot::new())
                } else {
                    Box::new(RandomBot::new(StdRng::seed_from_u64(i as u64)))
                }
            },
            60,
            50,
        )
        .unwrap();
        assert!(report.learning.completion_rate() >= 0.5);
        assert!(report.learning.avg_decisions > 0.0);
    }
}
