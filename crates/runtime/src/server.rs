//! Parallel multi-session hosting (EXP-8).
//!
//! The paper situates the platform in a distance-learning deployment —
//! many students playing concurrently against shared content. Because
//! [`vgbl_scene::SceneGraph`] is immutable at play time, sessions share
//! it through an `Arc` and scale far past the OS thread limit: the
//! public cohort entry points run every session as a cooperative state
//! machine on the deterministic [`crate::executor`] (seeded run queue,
//! per-tick batched GOP prewarm through the work-stealing decode pool),
//! and aggregate the per-session analytics into one [`LearningReport`].
//! The original thread-per-session implementations are kept as
//! `*_threaded` reference paths; `tests/executor_equivalence.rs` pins
//! the two byte-identical.
//!
//! **Fault isolation**: a session that errors — or outright panics — is
//! contained to its own [`SessionOutcome::Failed`] row. The rest of the
//! cohort completes and the cohort call still returns `Ok`; a server for
//! "millions of users" cannot let one broken session kill the process.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crossbeam::channel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vgbl_obs::{Obs, Series, SeriesSpec, SpanRecorder};
use vgbl_media::cache::{GopCache, VideoId};
use vgbl_media::codec::{Decoder, EncodedVideo};
use vgbl_media::parallel::parallel_map_indexed;
use vgbl_media::{SegmentId, SegmentTable};
use vgbl_scene::SceneGraph;

use crate::analytics::{DecodeReuse, LearningReport};
use crate::bot::{run_session, Bot, BotRun};
use crate::engine::{GameSession, SessionConfig};
use crate::executor::{run_tasks, run_tasks_observed, ExecutorStats, SessionTask, Step};
use crate::input::InputEvent;
use crate::playback::{PlaybackController, PlaybackStats};
use crate::{Result, RuntimeError};

/// Seed of the executor's run-queue shuffle. Fixed: cohort output must
/// not depend on it (the shuffle exists to prove that), so there is
/// nothing to configure.
const RUN_QUEUE_SEED: u64 = 0x9e37_79b9_0000_0018;

/// What the server runs per session: a factory producing a fresh bot for
/// session `i`. Must be `Sync` — workers call it concurrently.
pub type BotFactory = dyn Fn(usize) -> Box<dyn Bot> + Sync;

/// How one session of a cohort ended.
///
/// The plain cohort servers only produce `Completed`/`Failed`; the
/// supervised server ([`crate::supervisor`]) adds the overload and
/// recovery outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionOutcome {
    /// The session ran to completion and contributed to the report.
    Completed,
    /// The session errored or panicked; its work is excluded from the
    /// aggregates but the rest of the cohort is unaffected.
    Failed {
        /// Human-readable failure cause (error display or panic message).
        reason: String,
    },
    /// The session was rejected by admission control before it ran
    /// (queue full, or its queue wait exceeded the deadline).
    Shed {
        /// Why admission control rejected it.
        reason: String,
    },
    /// The session panicked at least once but the supervisor restarted
    /// it from a checkpoint and it ran to completion.
    Recovered {
        /// The decision step the last restart resumed from.
        resumed_at_step: usize,
        /// How many restarts it took.
        restarts: u32,
    },
    /// The session kept panicking until its restart budget ran out.
    GaveUp {
        /// Restarts spent before giving up.
        restarts: u32,
        /// The final failure cause.
        reason: String,
    },
}

impl SessionOutcome {
    /// Whether this session failed outright (errored, panicked without
    /// recovery, or exhausted its restart budget). Shed sessions are
    /// *not* failures — they never ran.
    pub fn is_failed(&self) -> bool {
        matches!(self, SessionOutcome::Failed { .. } | SessionOutcome::GaveUp { .. })
    }

    /// Whether admission control shed this session.
    pub fn is_shed(&self) -> bool {
        matches!(self, SessionOutcome::Shed { .. })
    }

    /// Whether this session completed, with or without restarts.
    pub fn is_completed(&self) -> bool {
        matches!(self, SessionOutcome::Completed | SessionOutcome::Recovered { .. })
    }
}

/// Turns a caught panic payload into a reportable reason string.
pub(crate) fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".into()
    }
}

/// Fills per-index rows into `(outcomes, completed)` — missing rows (a
/// worker died before reporting) become `Failed` rows, never a panic.
fn split_rows<T>(
    rows: Vec<Option<std::result::Result<T, String>>>,
) -> (Vec<SessionOutcome>, Vec<T>) {
    let mut outcomes = Vec::with_capacity(rows.len());
    let mut completed = Vec::new();
    for row in rows {
        match row {
            Some(Ok(v)) => {
                outcomes.push(SessionOutcome::Completed);
                completed.push(v);
            }
            Some(Err(reason)) => outcomes.push(SessionOutcome::Failed { reason }),
            None => outcomes.push(SessionOutcome::Failed {
                reason: "worker terminated before reporting".into(),
            }),
        }
    }
    (outcomes, completed)
}

/// Aggregated outcome of a server run.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Sessions that completed successfully.
    pub sessions: usize,
    /// Sessions that failed (errored or panicked).
    pub failed: usize,
    /// Per-session outcome, indexed by session number.
    pub outcomes: Vec<SessionOutcome>,
    /// The cohort's learning metrics (completed sessions only).
    pub learning: LearningReport,
    /// Total decisions submitted across all completed sessions.
    pub total_steps: usize,
}

/// One bot session as a cooperative task: each poll submits one
/// decision (`next_input` → `handle` → tick), reproducing
/// `run_session`'s loop step for step, then yields. A panicking bot or
/// factory retires only this task.
struct BotSessionTask<'a> {
    graph: Arc<SceneGraph>,
    config: SessionConfig,
    factory: &'a BotFactory,
    i: usize,
    max_steps: usize,
    tick_ms: u64,
    bot: Option<Box<dyn Bot>>,
    session: Option<GameSession>,
    rec: SpanRecorder,
    steps: usize,
}

impl BotSessionTask<'_> {
    fn finish(&mut self) -> Step<u32, std::result::Result<BotRun, String>> {
        let session = self.session.as_ref().expect("finish only after setup");
        self.rec.exit(session.state().total_clock_ms.saturating_mul(1000));
        Step::Done(Ok(BotRun {
            state: session.state().clone(),
            log: session.log().clone(),
            inventory: session.inventory().clone(),
            steps: self.steps,
        }))
    }
}

impl SessionTask for BotSessionTask<'_> {
    type Fetch = u32;
    type Output = BotRun;

    fn poll(&mut self) -> Step<u32, std::result::Result<BotRun, String>> {
        if self.session.is_none() {
            // Setup mirrors `run_session`: the factory runs inside the
            // isolation boundary (a panicking factory fails only this
            // session, as it did inside the worker's catch_unwind).
            self.bot = Some((self.factory)(self.i));
            let (session, _) = match GameSession::new(self.graph.clone(), self.config.clone()) {
                Ok(pair) => pair,
                Err(e) => return Step::Done(Err(e.to_string())),
            };
            self.session = Some(session);
            let session = self.session.as_mut().expect("just set");
            session.set_obs(&Obs::noop());
            self.rec.enter("session", 0);
        }
        let session = self.session.as_mut().expect("setup ran");
        let bot = self.bot.as_mut().expect("setup ran");
        if self.steps >= self.max_steps || session.state().is_over() {
            return self.finish();
        }
        let input = match bot.next_input(session) {
            Ok(Some(input)) => input,
            Ok(None) => return self.finish(),
            Err(e) => return Step::Done(Err(e.to_string())),
        };
        self.steps += 1;
        self.rec.event("input", self.steps as u64, session.state().total_clock_ms.saturating_mul(1000));
        match session.handle(input) {
            Ok(_) => {}
            Err(RuntimeError::GameOver { .. }) => return self.finish(),
            Err(e) => return Step::Done(Err(e.to_string())),
        }
        if !session.state().is_over() && self.tick_ms > 0 {
            if let Err(e) = session.handle(InputEvent::Tick(self.tick_ms)) {
                return Step::Done(Err(e.to_string()));
            }
        }
        Step::Pending
    }
}

/// Runs `n_sessions` bot sessions on the cooperative executor; one
/// decision per session per tick, every session in flight at once.
///
/// Deterministic *per session*: session `i` always plays the same game
/// (factories receive the session index, so seeded bots reproduce runs
/// regardless of scheduling). Byte-identical to
/// [`run_cohort_threaded`]; `workers` is accepted for API compatibility
/// (bot decisions are not batchable work).
///
/// Sessions are fault-isolated: a panicking or erroring session becomes
/// a [`SessionOutcome::Failed`] row while every other session completes,
/// and the call returns `Ok` with the partial cohort.
///
/// # Errors
/// Never fails on per-session problems; the `Result` is kept for
/// structural errors of future transports.
pub fn run_cohort(
    graph: Arc<SceneGraph>,
    config: SessionConfig,
    n_sessions: usize,
    workers: usize,
    bot_factory: &BotFactory,
    max_steps: usize,
    tick_ms: u64,
) -> Result<ServerReport> {
    let _ = workers;
    if n_sessions == 0 {
        return Ok(ServerReport {
            sessions: 0,
            failed: 0,
            outcomes: Vec::new(),
            learning: LearningReport::from_sessions(std::iter::empty()),
            total_steps: 0,
        });
    }
    let tasks: Vec<BotSessionTask<'_>> = (0..n_sessions)
        .map(|i| BotSessionTask {
            graph: graph.clone(),
            config: config.clone(),
            factory: bot_factory,
            i,
            max_steps,
            tick_ms,
            bot: None,
            session: None,
            rec: SpanRecorder::disabled(),
            steps: 0,
        })
        .collect();
    let run = run_tasks(tasks, RUN_QUEUE_SEED, |_plan| {});
    let (outcomes, runs) = split_rows(run.rows);

    let total_steps = runs.iter().map(|r| r.steps).sum();
    let learning = LearningReport::from_sessions(runs.iter().map(|r| (&r.log, r.state.score)));
    Ok(ServerReport {
        sessions: runs.len(),
        failed: outcomes.iter().filter(|o| o.is_failed()).count(),
        outcomes,
        learning,
        total_steps,
    })
}

/// The original thread-per-session implementation of [`run_cohort`]:
/// `workers` OS threads over crossbeam channels, one `catch_unwind` per
/// session. Kept as the reference the executor path is pinned
/// byte-identical against.
///
/// # Errors
/// Never fails on per-session problems; the `Result` is kept for
/// structural errors of future transports.
pub fn run_cohort_threaded(
    graph: Arc<SceneGraph>,
    config: SessionConfig,
    n_sessions: usize,
    workers: usize,
    bot_factory: &BotFactory,
    max_steps: usize,
    tick_ms: u64,
) -> Result<ServerReport> {
    if n_sessions == 0 {
        return Ok(ServerReport {
            sessions: 0,
            failed: 0,
            outcomes: Vec::new(),
            learning: LearningReport::from_sessions(std::iter::empty()),
            total_steps: 0,
        });
    }
    let workers = workers.max(1).min(n_sessions);
    let (job_tx, job_rx) = channel::unbounded::<usize>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, std::result::Result<BotRun, String>)>();
    for i in 0..n_sessions {
        job_tx.send(i).expect("queue open");
    }
    drop(job_tx);

    // A worker can no longer bring the cohort down: each session runs
    // under `catch_unwind`, and even if a worker thread somehow dies,
    // its unreported sessions surface as `Failed` rows below.
    let _ = crossbeam::scope(|s| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let graph = graph.clone();
            let config = config.clone();
            s.spawn(move |_| {
                for i in job_rx.iter() {
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        let mut bot = bot_factory(i);
                        run_session(graph.clone(), config.clone(), &mut *bot, max_steps, tick_ms)
                    }));
                    let row = match run {
                        Ok(Ok(r)) => Ok(r),
                        Ok(Err(e)) => Err(e.to_string()),
                        Err(payload) => Err(panic_reason(payload)),
                    };
                    if res_tx.send((i, row)).is_err() {
                        break;
                    }
                }
            });
        }
    });
    drop(res_tx);

    let mut rows: Vec<Option<std::result::Result<BotRun, String>>> =
        (0..n_sessions).map(|_| None).collect();
    for (i, row) in res_rx.iter() {
        rows[i] = Some(row);
    }
    let (outcomes, runs) = split_rows(rows);

    let total_steps = runs.iter().map(|r| r.steps).sum();
    let learning = LearningReport::from_sessions(runs.iter().map(|r| (&r.log, r.state.score)));
    Ok(ServerReport {
        sessions: runs.len(),
        failed: outcomes.iter().filter(|o| o.is_failed()).count(),
        outcomes,
        learning,
        total_steps,
    })
}

/// Aggregated outcome of a playback cohort run (EXP-11).
#[derive(Debug, Clone)]
pub struct PlaybackCohortReport {
    /// Sessions that completed successfully.
    pub sessions: usize,
    /// Sessions that failed (errored or panicked).
    pub failed: usize,
    /// Per-session outcome, indexed by session number.
    pub outcomes: Vec<SessionOutcome>,
    /// Frames served to players, summed over the cohort.
    pub frames_served: usize,
    /// Frames actually decoded, summed over the cohort. With a shared
    /// cache large enough for the video this approaches the frame count
    /// of the video itself — each GOP decoded once *in total*.
    pub frames_decoded: usize,
    /// Segment switches performed, summed over the cohort.
    pub switches: usize,
    /// Decode-reuse counters of the shared cache after the run.
    pub reuse: DecodeReuse,
}

/// One playback walk as a cooperative task. Each tick moves the walk
/// one step (a seeded switch-or-advance draw), yields
/// [`Step::Fetch`] for the GOP its next serve needs — the executor
/// coalesces the whole tick's keys and prewarms them once — then
/// serves from the (now warm) cache. Events, series records and RNG
/// draws happen in exactly the order `play_one_session` makes them, so
/// the walk and its trace are byte-identical to the threaded path.
struct PlaybackSessionTask<'a> {
    video: Arc<EncodedVideo>,
    segments: SegmentTable,
    cache: Arc<GopCache>,
    i: usize,
    n_segments: u32,
    steps: usize,
    obs: &'a Obs,
    rec: SpanRecorder,
    player: Option<PlaybackController>,
    renders: Series,
    switches: Series,
    rng: StdRng,
    now_us: u64,
    /// Steps already *moved*; the pending serve closes this step.
    step: usize,
    /// Whether the next poll serves (after a fetch) or moves.
    serving: bool,
}

impl PlaybackSessionTask<'_> {
    /// Transitions into the serve phase, requesting the needed GOP
    /// when it is knowable (a broken cursor falls through to the serve,
    /// which produces the same error the threaded walk would).
    fn request_serve(&mut self) -> Step<usize, std::result::Result<PlaybackStats, String>> {
        self.serving = true;
        match self.player.as_ref().expect("player set in init").pending_keyframe() {
            Ok(key) => Step::Fetch(key),
            Err(_) => self.poll(),
        }
    }
}

impl SessionTask for PlaybackSessionTask<'_> {
    type Fetch = usize;
    type Output = PlaybackStats;

    fn poll(&mut self) -> Step<usize, std::result::Result<PlaybackStats, String>> {
        if self.player.is_none() {
            // Setup in `play_one_session`'s order: player, series
            // handles, RNG, root span, the step-0 render event.
            let initial = SegmentId(self.i as u32 % self.n_segments);
            let player = match PlaybackController::shared(
                self.video.clone(),
                self.segments.clone(),
                initial,
                self.cache.clone(),
            ) {
                Ok(p) => p.with_obs(self.obs),
                Err(e) => return Step::Done(Err(e.to_string())),
            };
            self.player = Some(player);
            self.renders = self.obs.series(SeriesSpec::counter("server.renders", 250_000, 64));
            self.switches = self.obs.series(SeriesSpec::counter("server.switches", 250_000, 64));
            self.rng = StdRng::seed_from_u64(0x9e37_79b9 ^ self.i as u64);
            self.rec.enter_with("session", self.i as u64, self.now_us);
            self.rec.event("render", 0, self.now_us);
            return self.request_serve();
        }
        if self.serving {
            self.serving = false;
            let player = self.player.as_mut().expect("player set in init");
            if let Err(e) = player.current_frame() {
                return Step::Done(Err(e.to_string()));
            }
            if self.step >= self.steps {
                self.rec.exit(self.now_us);
                return Step::Done(Ok(player.stats()));
            }
            return Step::Pending;
        }
        // Move phase: the same draws, events and series records as the
        // threaded walk's loop body, split at the fetch boundary.
        let step = self.step;
        self.step += 1;
        if self.rng.gen_range(0..4u32) == 0 {
            let target = SegmentId(self.rng.gen_range(0..self.n_segments));
            self.rec.event("switch", target.0 as u64, self.now_us);
            self.switches.record(self.now_us, 1);
            if let Err(e) = self.player.as_mut().expect("player set in init").seek_segment(target)
            {
                return Step::Done(Err(e.to_string()));
            }
        } else {
            self.player.as_mut().expect("player set in init").advance_ms(33);
            self.now_us = self.now_us.saturating_add(33_000);
            self.rec.event("render", step as u64 + 1, self.now_us);
            self.renders.record(self.now_us, 1);
        }
        self.request_serve()
    }

    fn flush(&mut self) {
        // The recorder outlives any panic inside `poll`, so a session
        // that dies mid-walk still exports every span it recorded —
        // the same guarantee the threaded path's out-of-unwind
        // recorder gave.
        self.obs.attach(std::mem::replace(&mut self.rec, SpanRecorder::disabled()));
    }
}

/// Runs `n_sessions` simulated playback sessions on the cooperative
/// executor, all decoding through one shared [`GopCache`]; `workers`
/// sizes the work-stealing pool the per-tick batch prewarm fans decode
/// work over.
///
/// Each session is a deterministic seeded random walk: it starts in
/// segment `i mod n_segments`, and per step either switches to a random
/// segment (1 in 4) or advances ~one frame of wall time and renders. The
/// *frames each session sees* are bit-exact regardless of `workers` or
/// cache capacity; only who pays for decoding varies, which is exactly
/// what [`PlaybackCohortReport`] measures.
pub fn run_playback_cohort(
    video: Arc<EncodedVideo>,
    segments: &SegmentTable,
    cache: Arc<GopCache>,
    n_sessions: usize,
    workers: usize,
    steps_per_session: usize,
) -> Result<PlaybackCohortReport> {
    playback_cohort_executor_core(
        video,
        segments,
        cache,
        n_sessions,
        workers,
        steps_per_session,
        &Obs::noop(),
    )
    .map(|(report, _stats)| report)
}

/// [`run_playback_cohort`] with observability: playback and cache
/// counters flow into `obs`, and every session exports one trace
/// (labelled `playback-0007`-style) of `switch`/`render` events on the
/// media timeline.
///
/// **Panic-safe flushing**: each session's [`SpanRecorder`] lives
/// outside the executor's per-poll isolation boundary and is attached
/// when the task retires, so a session that panics mid-walk still
/// exports every span it recorded (open spans are closed at the last
/// recorded moment). The cohort's `cohort.sessions_completed` /
/// `cohort.sessions_failed` counters match the report's `sessions` /
/// `failed` fields exactly.
pub fn run_playback_cohort_observed(
    video: Arc<EncodedVideo>,
    segments: &SegmentTable,
    cache: Arc<GopCache>,
    n_sessions: usize,
    workers: usize,
    steps_per_session: usize,
    obs: &Obs,
) -> Result<PlaybackCohortReport> {
    playback_cohort_executor_core(video, segments, cache, n_sessions, workers, steps_per_session, obs)
        .map(|(report, _stats)| report)
}

/// [`run_playback_cohort`] exposing the executor's scheduler counters —
/// EXP-18 reads `peak_in_flight` and the batch totals from here.
///
/// # Errors
/// Never fails on per-session problems; mirrors [`run_playback_cohort`].
pub fn run_playback_cohort_with_stats(
    video: Arc<EncodedVideo>,
    segments: &SegmentTable,
    cache: Arc<GopCache>,
    n_sessions: usize,
    workers: usize,
    steps_per_session: usize,
) -> Result<(PlaybackCohortReport, ExecutorStats)> {
    playback_cohort_executor_core(
        video,
        segments,
        cache,
        n_sessions,
        workers,
        steps_per_session,
        &Obs::noop(),
    )
}

fn playback_cohort_executor_core(
    video: Arc<EncodedVideo>,
    segments: &SegmentTable,
    cache: Arc<GopCache>,
    n_sessions: usize,
    workers: usize,
    steps_per_session: usize,
    obs: &Obs,
) -> Result<(PlaybackCohortReport, ExecutorStats)> {
    let n_segments = segments.len().max(1) as u32;
    if n_sessions == 0 {
        return Ok((
            PlaybackCohortReport {
                sessions: 0,
                failed: 0,
                outcomes: Vec::new(),
                frames_served: 0,
                frames_decoded: 0,
                switches: 0,
                reuse: DecodeReuse::from_cache(&cache.stats()),
            },
            ExecutorStats::default(),
        ));
    }
    let workers = workers.max(1);
    let video_id = VideoId::of(&video);
    let decoder = Decoder::default();
    let completed_ctr = obs.counter("cohort.sessions_completed", &[("pillar", "runtime")]);
    let failed_ctr = obs.counter("cohort.sessions_failed", &[("pillar", "runtime")]);
    // The prewarm's decodes feed the same registry counter the players'
    // own decodes do, so counter totals keep matching the report.
    let decoded_ctr = obs.counter("playback.frames_decoded", &[("pillar", "runtime")]);

    let tasks: Vec<PlaybackSessionTask<'_>> = (0..n_sessions)
        .map(|i| PlaybackSessionTask {
            video: video.clone(),
            segments: segments.clone(),
            cache: cache.clone(),
            i,
            n_segments,
            steps: steps_per_session,
            obs,
            rec: if obs.enabled() {
                SpanRecorder::new(format!("playback-{i:04}"))
            } else {
                SpanRecorder::disabled()
            },
            player: None,
            renders: Series::default(),
            switches: Series::default(),
            rng: StdRng::seed_from_u64(0),
            now_us: 0,
            step: 0,
            serving: false,
        })
        .collect();

    // Batch resolution: decode the tick's missing GOPs exactly once,
    // fanned over the work-stealing pool — the same prewarm the
    // lockstep runner (`crate::batch`) does, driven by the executor's
    // coalesced fetch plan. With caching disabled there is no residency
    // to share: sessions decode for themselves, as the threaded path
    // would.
    let mut prewarm_frames = 0usize;
    let run = run_tasks_observed(
        tasks,
        RUN_QUEUE_SEED,
        |plan| {
            if cache.capacity_gops() == 0 {
                return;
            }
            let missing: Vec<usize> =
                plan.keys.iter().copied().filter(|&k| !cache.contains(video_id, k)).collect();
            if missing.is_empty() {
                return;
            }
            let decoded: Vec<usize> = parallel_map_indexed(missing.len(), workers, |j| {
                let k = missing[j];
                // Failures are left for the sessions' own serve path,
                // which conceals (or fails) with the unbatched
                // semantics.
                cache
                    .get_or_decode(video_id, k, || decoder.decode_gop_at(&video, k))
                    .map(|frames| frames.len())
                    .unwrap_or(0)
            });
            let frames: usize = decoded.iter().sum();
            prewarm_frames += frames;
            decoded_ctr.add(frames as u64);
        },
        obs,
    );
    let (outcomes, stats) = split_rows(run.rows);
    completed_ctr.add(stats.len() as u64);
    let failed = outcomes.iter().filter(|o| o.is_failed()).count();
    failed_ctr.add(failed as u64);

    Ok((
        PlaybackCohortReport {
            sessions: stats.len(),
            failed,
            outcomes,
            frames_served: stats.iter().map(|s| s.frames_served).sum(),
            frames_decoded: stats.iter().map(|s| s.frames_decoded).sum::<usize>() + prewarm_frames,
            switches: stats.iter().map(|s| s.switches).sum(),
            reuse: DecodeReuse::from_cache(&cache.stats()),
        },
        run.stats,
    ))
}

/// The original thread-per-session implementation of
/// [`run_playback_cohort`]: `workers` OS threads, one `catch_unwind`
/// per session, every session decoding for itself through the shared
/// cache's miss-coalescing. Kept as the reference the executor path is
/// pinned byte-identical against.
///
/// # Errors
/// Never fails on per-session problems; mirrors [`run_playback_cohort`].
pub fn run_playback_cohort_threaded(
    video: Arc<EncodedVideo>,
    segments: &SegmentTable,
    cache: Arc<GopCache>,
    n_sessions: usize,
    workers: usize,
    steps_per_session: usize,
) -> Result<PlaybackCohortReport> {
    playback_cohort_core(
        video,
        segments,
        cache,
        n_sessions,
        workers,
        steps_per_session,
        &Obs::noop(),
    )
}

/// [`run_playback_cohort_observed`]'s thread-per-session reference
/// implementation; see [`run_playback_cohort_threaded`].
///
/// # Errors
/// Never fails on per-session problems; mirrors [`run_playback_cohort`].
pub fn run_playback_cohort_observed_threaded(
    video: Arc<EncodedVideo>,
    segments: &SegmentTable,
    cache: Arc<GopCache>,
    n_sessions: usize,
    workers: usize,
    steps_per_session: usize,
    obs: &Obs,
) -> Result<PlaybackCohortReport> {
    playback_cohort_core(video, segments, cache, n_sessions, workers, steps_per_session, obs)
}

fn playback_cohort_core(
    video: Arc<EncodedVideo>,
    segments: &SegmentTable,
    cache: Arc<GopCache>,
    n_sessions: usize,
    workers: usize,
    steps_per_session: usize,
    obs: &Obs,
) -> Result<PlaybackCohortReport> {
    let n_segments = segments.len().max(1) as u32;
    if n_sessions == 0 {
        return Ok(PlaybackCohortReport {
            sessions: 0,
            failed: 0,
            outcomes: Vec::new(),
            frames_served: 0,
            frames_decoded: 0,
            switches: 0,
            reuse: DecodeReuse::from_cache(&cache.stats()),
        });
    }
    let workers = workers.max(1).min(n_sessions);
    let (job_tx, job_rx) = channel::unbounded::<usize>();
    let (res_tx, res_rx) =
        channel::unbounded::<(usize, std::result::Result<PlaybackStats, String>)>();
    for i in 0..n_sessions {
        job_tx.send(i).expect("queue open");
    }
    drop(job_tx);

    let completed_ctr = obs.counter("cohort.sessions_completed", &[("pillar", "runtime")]);
    let failed_ctr = obs.counter("cohort.sessions_failed", &[("pillar", "runtime")]);
    let _ = crossbeam::scope(|s| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let video = video.clone();
            let cache = cache.clone();
            let completed_ctr = completed_ctr.clone();
            let failed_ctr = failed_ctr.clone();
            s.spawn(move |_| {
                for i in job_rx.iter() {
                    // The recorder lives *outside* the unwind boundary:
                    // a panicking session still flushes its spans.
                    let mut rec = if obs.enabled() {
                        SpanRecorder::new(format!("playback-{i:04}"))
                    } else {
                        SpanRecorder::disabled()
                    };
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        play_one_session(
                            video.clone(),
                            segments.clone(),
                            cache.clone(),
                            i,
                            n_segments,
                            steps_per_session,
                            obs,
                            &mut rec,
                        )
                    }));
                    obs.attach(rec);
                    let row = match run {
                        Ok(Ok(r)) => {
                            completed_ctr.inc();
                            Ok(r)
                        }
                        Ok(Err(e)) => {
                            failed_ctr.inc();
                            Err(e.to_string())
                        }
                        Err(payload) => {
                            failed_ctr.inc();
                            Err(panic_reason(payload))
                        }
                    };
                    if res_tx.send((i, row)).is_err() {
                        break;
                    }
                }
            });
        }
    });
    drop(res_tx);

    let mut rows: Vec<Option<std::result::Result<PlaybackStats, String>>> =
        (0..n_sessions).map(|_| None).collect();
    for (i, row) in res_rx.iter() {
        rows[i] = Some(row);
    }
    let (outcomes, stats) = split_rows(rows);

    Ok(PlaybackCohortReport {
        sessions: stats.len(),
        failed: outcomes.iter().filter(|o| o.is_failed()).count(),
        outcomes,
        frames_served: stats.iter().map(|s| s.frames_served).sum(),
        frames_decoded: stats.iter().map(|s| s.frames_decoded).sum(),
        switches: stats.iter().map(|s| s.switches).sum(),
        reuse: DecodeReuse::from_cache(&cache.stats()),
    })
}

/// One seeded playback walk; deterministic in `(i, n_segments, steps)`.
/// The trace timeline is the session's simulated playhead (33 ms per
/// rendered step), never wall time.
#[allow(clippy::too_many_arguments)]
fn play_one_session(
    video: Arc<EncodedVideo>,
    segments: SegmentTable,
    cache: Arc<GopCache>,
    i: usize,
    n_segments: u32,
    steps: usize,
    obs: &Obs,
    rec: &mut SpanRecorder,
) -> Result<PlaybackStats> {
    let initial = SegmentId(i as u32 % n_segments);
    let mut player =
        PlaybackController::shared(video, segments, initial, cache)?.with_obs(obs);
    // Cohort-wide series on the session playhead. Bin accumulation is
    // commutative and the horizon (16 s) dwarfs any session playhead,
    // so the export is byte-identical however workers interleave.
    let renders = obs.series(SeriesSpec::counter("server.renders", 250_000, 64));
    let switches = obs.series(SeriesSpec::counter("server.switches", 250_000, 64));
    let mut rng = StdRng::seed_from_u64(0x9e37_79b9 ^ i as u64);
    let mut now_us: u64 = 0;
    rec.enter_with("session", i as u64, now_us);
    rec.event("render", 0, now_us);
    player.current_frame()?;
    for step in 0..steps {
        if rng.gen_range(0..4u32) == 0 {
            let target = SegmentId(rng.gen_range(0..n_segments));
            rec.event("switch", target.0 as u64, now_us);
            switches.record(now_us, 1);
            player.switch_segment(target)?;
        } else {
            player.advance_ms(33);
            now_us = now_us.saturating_add(33_000);
            rec.event("render", step as u64 + 1, now_us);
            renders.record(now_us, 1);
            player.current_frame()?;
        }
    }
    rec.exit(now_us);
    Ok(player.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bot::{GuidedBot, RandomBot};
    use crate::fixtures::{fix_the_computer, FRAME};

    fn config() -> SessionConfig {
        SessionConfig::for_frame(FRAME.0, FRAME.1)
    }

    #[test]
    fn cohort_of_guided_bots_all_complete() {
        let report = run_cohort(
            Arc::new(fix_the_computer()),
            config(),
            16,
            4,
            &|_| Box::new(GuidedBot::new()),
            100,
            50,
        )
        .unwrap();
        assert_eq!(report.sessions, 16);
        assert_eq!(report.learning.completed, 16);
        assert_eq!(report.learning.completion_rate(), 1.0);
        assert!(report.total_steps > 0);
    }

    #[test]
    fn results_are_deterministic_across_worker_counts() {
        let run = |workers: usize| {
            run_cohort(
                Arc::new(fix_the_computer()),
                config(),
                12,
                workers,
                &|i| Box::new(RandomBot::new(StdRng::seed_from_u64(i as u64))),
                80,
                50,
            )
            .unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.learning, b.learning);
        assert_eq!(a.total_steps, b.total_steps);
    }

    #[test]
    fn empty_cohort_is_fine() {
        let report = run_cohort(
            Arc::new(fix_the_computer()),
            config(),
            0,
            4,
            &|_| Box::new(GuidedBot::new()),
            10,
            0,
        )
        .unwrap();
        assert_eq!(report.sessions, 0);
    }

    fn cohort_video() -> (Arc<EncodedVideo>, SegmentTable) {
        use vgbl_media::codec::{EncodeConfig, Encoder};
        use vgbl_media::color::Rgb;
        use vgbl_media::synth::{FootageSpec, ShotSpec};
        use vgbl_media::timeline::FrameRate;

        let footage = FootageSpec {
            width: 32,
            height: 24,
            rate: FrameRate::FPS30,
            shots: vec![
                ShotSpec::plain(12, Rgb::new(210, 40, 40)),
                ShotSpec::plain(12, Rgb::new(40, 210, 40)),
                ShotSpec::plain(12, Rgb::new(40, 40, 210)),
            ],
            noise_seed: 77,
        }
        .render()
        .unwrap();
        let video = Encoder::new(EncodeConfig { gop: 6, ..Default::default() })
            .encode(&footage.frames, footage.rate)
            .unwrap();
        let table = SegmentTable::from_cuts(36, &[12, 24]).unwrap();
        (Arc::new(video), table)
    }

    #[test]
    fn playback_cohort_shares_decode_work() {
        let (video, table) = cohort_video();
        let cache = Arc::new(GopCache::new(16));
        let report =
            run_playback_cohort(video.clone(), &table, cache, 64, 4, 40).unwrap();
        assert_eq!(report.sessions, 64);
        assert!(report.frames_served >= 64 * 30);
        // 6 GOPs × 6 frames = 36 decodable frames. With a cache that holds
        // the whole video, the cohort decodes each GOP exactly once in
        // total — not once per session.
        assert_eq!(report.frames_decoded, video.len());
        assert_eq!(report.reuse.misses, 6);
        assert!(
            report.reuse.hit_rate() >= 0.9,
            "hit rate {:.3}",
            report.reuse.hit_rate()
        );
    }

    #[test]
    fn playback_cohort_frames_deterministic_across_workers_and_capacity() {
        let (video, table) = cohort_video();
        let run = |workers: usize, capacity: usize| {
            run_playback_cohort(
                video.clone(),
                &table,
                Arc::new(GopCache::new(capacity)),
                12,
                workers,
                30,
            )
            .unwrap()
        };
        let a = run(1, 16);
        let b = run(4, 16);
        let c = run(4, 2);
        // Session walks are seeded per index: served frames and switches
        // never depend on scheduling or on cache capacity.
        assert_eq!(a.frames_served, b.frames_served);
        assert_eq!(a.switches, b.switches);
        assert_eq!(a.frames_served, c.frames_served);
        assert_eq!(a.switches, c.switches);
        // Only the decode cost varies: a tiny cache decodes more.
        assert!(c.frames_decoded >= a.frames_decoded);
    }

    #[test]
    fn empty_playback_cohort_is_fine() {
        let (video, table) = cohort_video();
        let report =
            run_playback_cohort(video, &table, Arc::new(GopCache::new(4)), 0, 4, 10).unwrap();
        assert_eq!(report.sessions, 0);
        assert_eq!(report.frames_served, 0);
    }

    #[test]
    fn obs_observed_cohort_counters_match_report_exactly() {
        let (video, table) = cohort_video();
        let obs = Obs::recording();
        let report = run_playback_cohort_observed(
            video.clone(),
            &table,
            Arc::new(GopCache::new(16)),
            12,
            4,
            30,
            &obs,
        )
        .unwrap();
        // Observation does not perturb the cohort.
        let plain =
            run_playback_cohort(video, &table, Arc::new(GopCache::new(16)), 12, 4, 30).unwrap();
        assert_eq!(report.frames_served, plain.frames_served);
        assert_eq!(report.switches, plain.switches);

        let snap = obs.snapshot();
        // Counter totals are *independently accumulated* mirrors of the
        // report: any drift between the two paths is a real bug.
        assert_eq!(snap.counter_total("cohort.sessions_completed"), report.sessions as u64);
        assert_eq!(snap.counter_total("cohort.sessions_failed"), report.failed as u64);
        assert_eq!(snap.counter_total("playback.frames_served"), report.frames_served as u64);
        assert_eq!(snap.counter_total("playback.frames_decoded"), report.frames_decoded as u64);
        assert_eq!(snap.counter_total("playback.switches"), report.switches as u64);
        // Span events agree too: a switch serves one frame internally,
        // so renders + switches account for every served frame.
        assert_eq!(snap.span_count("switch"), report.switches);
        assert_eq!(snap.span_count("render") + snap.span_count("switch"), report.frames_served);
        assert_eq!(snap.traces.len(), 12);
        assert_eq!(snap.traces[0].label, "playback-0000");
        assert_eq!(snap.traces[11].label, "playback-0011");
    }

    #[test]
    fn obs_observed_cohort_exports_are_byte_identical_across_worker_counts() {
        let (video, table) = cohort_video();
        let run = |workers: usize| {
            let obs = Obs::recording();
            run_playback_cohort_observed(
                video.clone(),
                &table,
                Arc::new(GopCache::new(16)),
                8,
                workers,
                25,
                &obs,
            )
            .unwrap();
            let snap = obs.snapshot();
            (snap.to_table(), snap.metrics_csv(), snap.spans_csv(), snap.to_jsonl())
        };
        assert_eq!(run(1), run(4));
    }

    /// A bot that panics the moment it is asked for input.
    struct PanicBot;
    impl crate::bot::Bot for PanicBot {
        fn next_input(
            &mut self,
            _session: &crate::engine::GameSession,
        ) -> Result<Option<crate::InputEvent>> {
            panic!("deliberately broken bot");
        }
    }

    /// A bot whose session errors (typed failure, not a panic).
    struct ErrBot;
    impl crate::bot::Bot for ErrBot {
        fn next_input(
            &mut self,
            _session: &crate::engine::GameSession,
        ) -> Result<Option<crate::InputEvent>> {
            Err(crate::RuntimeError::UnknownScenario("err-bot".into()))
        }
    }

    #[test]
    fn faulty_bot_panic_is_isolated_to_one_session() {
        // Keep the deliberate panic from spamming the test output.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let report = run_cohort(
            Arc::new(fix_the_computer()),
            config(),
            64,
            4,
            &|i| {
                if i == 17 {
                    Box::new(PanicBot)
                } else {
                    Box::new(GuidedBot::new())
                }
            },
            100,
            50,
        );
        std::panic::set_hook(prev);
        let report = report.expect("cohort must return Ok despite the panic");
        assert_eq!(report.sessions, 63);
        assert_eq!(report.failed, 1);
        assert_eq!(report.outcomes.len(), 64);
        assert!(report.outcomes[17].is_failed());
        match &report.outcomes[17] {
            SessionOutcome::Failed { reason } => {
                assert!(reason.contains("deliberately broken bot"), "{reason}");
            }
            other => unreachable!("{other:?}"),
        }
        assert_eq!(
            report.outcomes.iter().filter(|o| !o.is_failed()).count(),
            63
        );
        assert_eq!(report.learning.completed, 63, "the other 63 still complete");
    }

    #[test]
    fn faulty_bot_error_is_reported_not_propagated() {
        let report = run_cohort(
            Arc::new(fix_the_computer()),
            config(),
            8,
            2,
            &|i| {
                if i % 2 == 1 {
                    Box::new(ErrBot)
                } else {
                    Box::new(GuidedBot::new())
                }
            },
            50,
            50,
        )
        .unwrap();
        assert_eq!(report.sessions, 4);
        assert_eq!(report.failed, 4);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.is_failed(), i % 2 == 1, "session {i}");
        }
        match &report.outcomes[1] {
            SessionOutcome::Failed { reason } => assert!(reason.contains("err-bot"), "{reason}"),
            other => unreachable!("{other:?}"),
        }
    }

    #[test]
    fn faulty_gop_fails_some_playback_sessions_but_not_the_cohort() {
        let (video, table) = cohort_video();
        // Truncate the first keyframe's payload: sessions whose walk
        // starts at segment 0 frame 0 have nothing to freeze on and
        // fail; everyone else completes (concealing if their walk
        // wanders into the bad GOP later).
        let mut broken = (*video).clone();
        assert!(broken.frames[0].data.len() > 4, "keyframe has a payload");
        broken.frames[0].data.truncate(3);
        let report = run_playback_cohort(
            Arc::new(broken),
            &table,
            Arc::new(GopCache::new(16)),
            12,
            4,
            30,
        )
        .expect("cohort must return Ok despite corrupt GOP");
        // Sessions 0, 3, 6, 9 start in segment 0 (i % 3 == 0).
        assert_eq!(report.failed, 4, "{:?}", report.outcomes);
        assert_eq!(report.sessions, 8);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.is_failed(), i % 3 == 0, "session {i}: {o:?}");
        }
        assert!(report.frames_served > 0);
    }

    #[test]
    fn mixed_cohort_reports_blended_metrics() {
        // Half guided, half random: completion rate sits strictly between.
        let report = run_cohort(
            Arc::new(fix_the_computer()),
            config(),
            10,
            2,
            &|i| {
                if i % 2 == 0 {
                    Box::new(GuidedBot::new())
                } else {
                    Box::new(RandomBot::new(StdRng::seed_from_u64(i as u64)))
                }
            },
            60,
            50,
        )
        .unwrap();
        assert!(report.learning.completion_rate() >= 0.5);
        assert!(report.learning.avg_decisions > 0.0);
    }
}
