//! Chaos orchestrator: one seeded schedule composing link degradation,
//! shard crashes, shard stalls, whole-fleet power losses, and disk
//! faults over the fleet's single discrete-event clock — then explicit
//! invariant checks over the outcome, including a full byte-identical
//! rerun.
//!
//! The point is not to make the fleet survive (some schedules are
//! unsurvivable by design) but to prove that whatever happens is
//! *accounted*: every offered session ends in exactly one outcome,
//! every acknowledged-durable checkpoint that vanished is attributed to
//! a provably corrupt record, and the entire composed run replays
//! bit-identically from its seed.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::fleet::{
    run_fleet, FleetConfig, FleetReport, FleetWorkload, ShardFault, ShardFaultKind,
};
use crate::server::SessionOutcome;
use crate::supervisor::{mix, unit, ArrivalPlan, SupervisorConfig};
use crate::{Result, RuntimeError};
use vgbl_obs::{aggregate, JourneyEvent, JourneyEventKind, SessionJourney, TerminalState};
use vgbl_store::StoreConfig;

/// Domain separation for chaos-schedule draws, one salt per fault
/// dimension so adding crashes never perturbs where stalls land.
const SALT_CRASH: u64 = 0xC4A0_0001;
const SALT_STALL: u64 = 0xC4A0_0002;
const SALT_LINK: u64 = 0xC4A0_0003;
const SALT_POWER: u64 = 0xC4A0_0004;

fn invalid(msg: impl Into<String>) -> RuntimeError {
    RuntimeError::InvalidSupervisor(msg.into())
}

/// One seeded chaos campaign: how much of each fault dimension to
/// compose over the horizon. The schedule itself is a pure function of
/// `seed` — two configs that differ only in `seed` produce entirely
/// different but individually reproducible campaigns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Master seed; every scheduled fault is a pure hash of it.
    pub seed: u64,
    /// Sessions offered to the fleet.
    pub sessions: usize,
    /// Initial shard count.
    pub shards: u32,
    /// Mean inter-arrival gap, simulated ms.
    pub arrival_interval_ms: f64,
    /// Average synthetic session length in segments.
    pub mean_segments: u32,
    /// Shard crashes to schedule.
    pub crashes: u32,
    /// Shard stalls to schedule.
    pub stalls: u32,
    /// Link degradations to schedule.
    pub degraded_links: u32,
    /// Whole-fleet power losses to schedule.
    pub power_losses: u32,
    /// All faults land inside `[0, horizon_ms)`.
    pub horizon_ms: f64,
    /// The durable store (and its seeded disk-fault plan).
    pub store: StoreConfig,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0xC4A0_5EED,
            sessions: 200,
            shards: 4,
            arrival_interval_ms: 2.0,
            mean_segments: 5,
            crashes: 1,
            stalls: 1,
            degraded_links: 1,
            power_losses: 1,
            horizon_ms: 600.0,
            store: StoreConfig::default(),
        }
    }
}

impl ChaosConfig {
    fn validate(&self) -> Result<()> {
        if self.sessions == 0 {
            return Err(invalid("chaos needs at least one session"));
        }
        if self.shards == 0 {
            return Err(invalid("chaos needs at least one shard"));
        }
        if self.mean_segments == 0 {
            return Err(invalid("chaos mean_segments must be >= 1"));
        }
        if !self.horizon_ms.is_finite() || self.horizon_ms <= 0.0 {
            return Err(invalid("chaos horizon_ms must be positive and finite"));
        }
        if !self.arrival_interval_ms.is_finite() || self.arrival_interval_ms <= 0.0 {
            return Err(invalid("chaos arrival_interval_ms must be positive and finite"));
        }
        Ok(())
    }

    /// The composed fault schedule: every entry a pure hash of
    /// `(seed, dimension, index)`, so the campaign replays exactly.
    fn schedule(&self) -> (Vec<ShardFault>, Vec<f64>) {
        let mut faults = Vec::new();
        let at = |salt: u64, i: u32| unit(mix(self.seed ^ salt ^ mix(u64::from(i)))) * self.horizon_ms;
        let pick = |salt: u64, i: u32| {
            (mix(self.seed ^ salt ^ mix(u64::from(i)).rotate_left(17)) % u64::from(self.shards))
                as u32
        };
        for i in 0..self.crashes {
            faults.push(ShardFault {
                at_ms: at(SALT_CRASH, i),
                shard: pick(SALT_CRASH, i),
                kind: ShardFaultKind::Crash,
            });
        }
        for i in 0..self.stalls {
            let duration_ms =
                1.0 + unit(mix(self.seed ^ SALT_STALL ^ mix(u64::from(i)) ^ 0x5)) * 0.2 * self.horizon_ms;
            faults.push(ShardFault {
                at_ms: at(SALT_STALL, i),
                shard: pick(SALT_STALL, i),
                kind: ShardFaultKind::Stall { duration_ms },
            });
        }
        for i in 0..self.degraded_links {
            let loss = 0.5 + 0.49 * unit(mix(self.seed ^ SALT_LINK ^ mix(u64::from(i)) ^ 0x7));
            faults.push(ShardFault {
                at_ms: at(SALT_LINK, i),
                shard: pick(SALT_LINK, i),
                kind: ShardFaultKind::DegradedLink { loss },
            });
        }
        let mut power: Vec<f64> = (0..self.power_losses).map(|i| at(SALT_POWER, i)).collect();
        power.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        (faults, power)
    }
}

/// One named invariant verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantCheck {
    /// Which invariant.
    pub name: &'static str,
    /// Whether it held.
    pub pass: bool,
    /// Human-readable evidence (counts, the first violation, ...).
    pub detail: String,
}

/// The campaign's audit: the fleet report it produced plus every
/// invariant verdict, including the byte-identical-rerun check.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// The seed the whole campaign derives from.
    pub seed: u64,
    /// Scheduled shard-level faults, in schedule order.
    pub faults: Vec<ShardFault>,
    /// Scheduled whole-fleet power losses, sorted.
    pub power_loss_at_ms: Vec<f64>,
    /// The (first) run's full fleet report.
    pub fleet: FleetReport,
    /// Per-fault blast radii built from the stitched journeys.
    pub incidents: IncidentReport,
    /// Every invariant verdict.
    pub checks: Vec<InvariantCheck>,
}

impl ChaosReport {
    /// All invariants held.
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// The first failed invariant, if any.
    pub fn first_failure(&self) -> Option<&InvariantCheck> {
        self.checks.iter().find(|c| !c.pass)
    }
}

fn check(name: &'static str, pass: bool, detail: String) -> InvariantCheck {
    InvariantCheck { name, pass, detail }
}

/// One fault's blast radius, reconstructed purely from stitched
/// journeys: which sessions the fault touched, how they ended, and how
/// long re-admission took.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// What fired: `crash shard=N`, `stall shard=N`,
    /// `degraded_link shard=N`, or `power_loss #i`.
    pub label: String,
    /// When it fired, simulated ms.
    pub at_ms: f64,
    /// Sessions the fault touched, sorted by id. For crashes and power
    /// losses these are the sessions whose journey carries the blackout
    /// event; for stalls and degraded links, the sessions whose journey
    /// touches the faulted shard at or after the fault.
    pub affected: Vec<u64>,
    /// Migration handoffs out of the blast radius: for blackouts, the
    /// checkpoint-carrying evacuations at the fault instant; for
    /// stalls/links, handoffs off the faulted shard afterwards.
    pub migrated: usize,
    /// Terminal tallies of the affected sessions, keyed by
    /// [`TerminalState::name`].
    pub terminals: BTreeMap<&'static str, usize>,
    /// Affected sessions whose acknowledged durable checkpoint died
    /// with this fault, per the storage audit (power losses only).
    pub lost_durable: usize,
    /// Per-session ms from the fault to the next admission, for
    /// affected sessions that got re-admitted; ascending.
    pub recovery_ms: Vec<f64>,
}

impl Incident {
    /// Mean re-admission latency, 0 when nothing re-admitted.
    pub fn mean_recovery_ms(&self) -> f64 {
        if self.recovery_ms.is_empty() {
            0.0
        } else {
            self.recovery_ms.iter().sum::<f64>() / self.recovery_ms.len() as f64
        }
    }

    /// Worst re-admission latency, 0 when nothing re-admitted.
    pub fn max_recovery_ms(&self) -> f64 {
        self.recovery_ms.last().copied().unwrap_or(0.0)
    }
}

/// The campaign's incident digest: one [`Incident`] per scheduled
/// fault (schedule order, then power losses in time order), plus the
/// population totals the invariants cross-check against the fleet's
/// accounting identity.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentReport {
    /// Per-fault blast radii.
    pub incidents: Vec<Incident>,
    /// Journeys stitched — must equal the sessions offered.
    pub sessions: usize,
    /// Journeys with no terminal state — must be zero.
    pub unresolved: usize,
}

impl IncidentReport {
    /// Deterministic plain-text narrative, byte-identical across
    /// reruns of the same seed.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "incident report: {} incidents over {} sessions ({} unresolved)",
            self.incidents.len(),
            self.sessions,
            self.unresolved
        );
        for inc in &self.incidents {
            let _ = write!(
                s,
                "  {} at={:.3}ms affected={} migrated={}",
                inc.label,
                inc.at_ms,
                inc.affected.len(),
                inc.migrated
            );
            for (name, n) in &inc.terminals {
                let _ = write!(s, " {name}={n}");
            }
            if !inc.recovery_ms.is_empty() {
                let _ = write!(
                    s,
                    " recovery mean={:.3}ms max={:.3}ms",
                    inc.mean_recovery_ms(),
                    inc.max_recovery_ms()
                );
            }
            if inc.lost_durable > 0 {
                let _ = write!(s, " lost_durable={}", inc.lost_durable);
            }
            s.push('\n');
        }
        s
    }
}

/// The blast radius of one blackout (crash or power loss): journeys
/// carrying the matching event at `t`, their evacuations at the fault
/// instant, terminals, loss attribution, and re-admission latencies.
fn blackout_incident(
    label: String,
    t: f64,
    journeys: &[SessionJourney],
    matches_fault: impl Fn(&JourneyEvent) -> bool,
    lost: &BTreeSet<u64>,
) -> Incident {
    let mut inc = Incident {
        label,
        at_ms: t,
        affected: Vec::new(),
        migrated: 0,
        terminals: BTreeMap::new(),
        lost_durable: 0,
        recovery_ms: Vec::new(),
    };
    for j in journeys {
        let Some(p) = j.events.iter().position(&matches_fault) else { continue };
        inc.affected.push(j.session);
        *inc.terminals.entry(j.terminal.name()).or_insert(0) += 1;
        if lost.contains(&j.session) {
            inc.lost_durable += 1;
        }
        for e in &j.events[p..] {
            if matches!(e.kind, JourneyEventKind::MigratedOut { .. }) && e.at_ms == t {
                inc.migrated += 1;
            }
        }
        if let Some(e) = j.events[p + 1..]
            .iter()
            .find(|e| matches!(e.kind, JourneyEventKind::Admitted { .. }))
        {
            inc.recovery_ms.push(e.at_ms - t);
        }
    }
    inc.recovery_ms.sort_by(|a, b| a.total_cmp(b));
    inc
}

/// The blast radius of a slowdown fault (stall or degraded link):
/// journeys that touch the faulted shard at or after the fault, and
/// the handoffs that evacuated it.
fn touch_incident(label: String, t: f64, shard: u32, journeys: &[SessionJourney]) -> Incident {
    let mut inc = Incident {
        label,
        at_ms: t,
        affected: Vec::new(),
        migrated: 0,
        terminals: BTreeMap::new(),
        lost_durable: 0,
        recovery_ms: Vec::new(),
    };
    for j in journeys {
        let mut touched = false;
        for e in &j.events {
            if e.shard == shard && e.at_ms >= t {
                touched = true;
                if matches!(e.kind, JourneyEventKind::MigratedOut { .. }) {
                    inc.migrated += 1;
                }
            }
        }
        if touched {
            inc.affected.push(j.session);
            *inc.terminals.entry(j.terminal.name()).or_insert(0) += 1;
        }
    }
    inc
}

/// Builds the per-fault incident digest from a journey-enabled fleet
/// report and the campaign's fault schedule. Pure function of its
/// inputs — byte-identical across reruns of the same seed.
pub fn incident_report(
    fleet: &FleetReport,
    faults: &[ShardFault],
    power_loss_at_ms: &[f64],
) -> IncidentReport {
    let journeys = &fleet.journeys;
    let lost: BTreeSet<u64> = fleet
        .durability
        .as_ref()
        .map(|d| d.lost.iter().map(|l| l.session as u64).collect())
        .unwrap_or_default();
    let mut incidents = Vec::new();
    for f in faults {
        incidents.push(match f.kind {
            ShardFaultKind::Crash => blackout_incident(
                format!("crash shard={}", f.shard),
                f.at_ms,
                journeys,
                |e| {
                    e.shard == f.shard
                        && e.at_ms == f.at_ms
                        && matches!(e.kind, JourneyEventKind::Crashed)
                },
                &BTreeSet::new(),
            ),
            ShardFaultKind::Stall { .. } => {
                touch_incident(format!("stall shard={}", f.shard), f.at_ms, f.shard, journeys)
            }
            ShardFaultKind::DegradedLink { .. } => touch_incident(
                format!("degraded_link shard={}", f.shard),
                f.at_ms,
                f.shard,
                journeys,
            ),
        });
    }
    for (i, &t) in power_loss_at_ms.iter().enumerate() {
        incidents.push(blackout_incident(
            format!("power_loss #{i}"),
            t,
            journeys,
            |e| e.at_ms == t && matches!(e.kind, JourneyEventKind::PowerLoss),
            &lost,
        ));
    }
    IncidentReport {
        incidents,
        sessions: journeys.len(),
        unresolved: journeys
            .iter()
            .filter(|j| j.terminal == TerminalState::Unresolved)
            .count(),
    }
}

/// Runs one seeded chaos campaign: builds the schedule, runs the fleet
/// over it **twice**, and returns the audited [`ChaosReport`].
///
/// Invariants checked:
/// - `exact_accounting` — every offered session has exactly one
///   terminal outcome and the scalar counters match the outcome vector.
/// - `no_dual_outcome` — no session is simultaneously served and shed:
///   every durably-lost session's single outcome is the corrupt-record
///   shed, and no other session carries that reason.
/// - `no_acked_loss_unattributed` — `lost_durable` equals the number of
///   attributed corrupt records; a durable store must never lose an
///   acknowledged checkpoint without naming the record that died.
/// - `journey_total_exclusive` — journey coverage is total and
///   exclusive: every offered session stitches to exactly one journey,
///   each journey carries exactly one terminal event that agrees with
///   the session's fleet outcome, and every span chain links parent to
///   child across shard hops and cold restarts.
/// - `incident_crosscheck` — the journey population totals match the
///   fleet's accounting identity exactly, and every durably-lost
///   session is attributed to the power-loss incident that killed it.
/// - `rerun_identical` — the second run's report (storage audit
///   included) is byte-identical to the first.
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosReport> {
    cfg.validate()?;
    let (faults, power_loss_at_ms) = cfg.schedule();
    let fleet_cfg = FleetConfig {
        shards: cfg.shards,
        vnodes: 32,
        router_seed: mix(cfg.seed),
        journeys: true,
        shard: SupervisorConfig {
            queue_capacity: 32,
            queue_deadline_ms: 1e9,
            slots: 2,
            step_ms: 10.0,
            checkpoint_every: 5,
            ..SupervisorConfig::default()
        },
        faults: faults.clone(),
        store: Some(cfg.store),
        power_loss_at_ms: power_loss_at_ms.clone(),
        ..FleetConfig::default()
    };
    let workload = FleetWorkload::Synthetic { mean_segments: cfg.mean_segments };
    let arrivals = ArrivalPlan::new(cfg.seed ^ 0x0A88_14A1, cfg.arrival_interval_ms)?;
    let fleet = run_fleet(&workload, &fleet_cfg, cfg.sessions, &arrivals)?;
    let rerun = run_fleet(&workload, &fleet_cfg, cfg.sessions, &arrivals)?;

    let mut checks = Vec::new();

    let (completed, failed, shed, recovered, gave_up) = fleet.outcome_counts();
    let counters_match = completed == fleet.completed
        && failed == fleet.failed
        && shed == fleet.shed
        && recovered == fleet.recovered
        && gave_up == fleet.gave_up;
    checks.push(check(
        "exact_accounting",
        fleet.accounts_exactly() && fleet.outcomes.len() == fleet.sessions && counters_match,
        format!(
            "{} sessions = {completed} completed + {recovered} recovered + {failed} failed \
             + {gave_up} gave up + {shed} shed",
            fleet.sessions
        ),
    ));

    const CORRUPT_SHED: &str = "cold restart: durable checkpoint corrupt";
    let lost_sessions: Vec<usize> = fleet
        .durability
        .as_ref()
        .map(|d| d.lost.iter().map(|l| l.session).collect())
        .unwrap_or_default();
    let lost_all_shed = lost_sessions.iter().all(|&s| {
        matches!(&fleet.outcomes[s], SessionOutcome::Shed { reason } if reason == CORRUPT_SHED)
    });
    let corrupt_sheds = fleet
        .outcomes
        .iter()
        .filter(|o| matches!(o, SessionOutcome::Shed { reason } if reason == CORRUPT_SHED))
        .count();
    checks.push(check(
        "no_dual_outcome",
        lost_all_shed && corrupt_sheds == lost_sessions.len(),
        format!(
            "{} durably lost sessions, {corrupt_sheds} corrupt-record sheds, all matching",
            lost_sessions.len()
        ),
    ));

    let attributed = fleet.durability.as_ref().map_or(0, |d| d.lost.len());
    checks.push(check(
        "no_acked_loss_unattributed",
        fleet.lost_durable == attributed,
        format!("lost_durable = {} with {attributed} attributed corrupt records", fleet.lost_durable),
    ));

    let outcome_agrees = |j: &SessionJourney| {
        let o = &fleet.outcomes[j.session as usize];
        matches!(
            (j.terminal, o),
            (TerminalState::Completed, SessionOutcome::Completed)
                | (TerminalState::Recovered, SessionOutcome::Recovered { .. })
                | (TerminalState::Failed, SessionOutcome::Failed { .. })
                | (TerminalState::Shed, SessionOutcome::Shed { .. })
                | (TerminalState::GaveUp, SessionOutcome::GaveUp { .. })
        )
    };
    let exclusive = fleet.journeys.iter().all(|j| {
        j.events.iter().filter(|e| e.kind.is_terminal()).count() == 1
            && outcome_agrees(j)
            && j.chain_ok()
    });
    checks.push(check(
        "journey_total_exclusive",
        fleet.journeys.len() == fleet.sessions && exclusive,
        format!(
            "{} journeys for {} sessions, each with one terminal agreeing with its \
             outcome and an intact span chain",
            fleet.journeys.len(),
            fleet.sessions
        ),
    ));

    let incidents = incident_report(&fleet, &faults, &power_loss_at_ms);
    let agg = aggregate(&fleet.journeys);
    let tally = |name: &str| agg.by_terminal.get(name).copied().unwrap_or(0);
    let totals_match = agg.total == fleet.sessions
        && incidents.unresolved == 0
        && tally("completed") == fleet.completed
        && tally("recovered") == fleet.recovered
        && tally("failed") == fleet.failed
        && tally("shed") == fleet.shed
        && tally("gave_up") == fleet.gave_up
        && agg.migrations == fleet.migrations.len();
    let lost_attributed: usize = incidents
        .incidents
        .iter()
        .filter(|i| i.label.starts_with("power_loss"))
        .map(|i| i.lost_durable)
        .sum();
    checks.push(check(
        "incident_crosscheck",
        totals_match && lost_attributed == attributed,
        format!(
            "journey terminals match fleet counters ({} sessions, {} migrations); \
             {lost_attributed} of {attributed} durable losses pinned to a power-loss incident",
            agg.total,
            agg.migrations
        ),
    ));

    checks.push(check(
        "rerun_identical",
        fleet == rerun,
        if fleet == rerun {
            format!("two runs from seed {:#x} produced identical reports", cfg.seed)
        } else {
            "second run diverged from the first".to_string()
        },
    ));

    Ok(ChaosReport { seed: cfg.seed, faults, power_loss_at_ms, fleet, incidents, checks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgbl_store::DiskFaultPlan;

    #[test]
    fn chaos_campaign_passes_all_invariants_on_clean_disks() {
        let report = run_chaos(&ChaosConfig::default()).unwrap();
        assert!(report.all_pass(), "{:?}", report.first_failure());
        assert_eq!(report.faults.len(), 3);
        assert_eq!(report.power_loss_at_ms.len(), 1);
        assert_eq!(report.fleet.lost_durable, 0, "clean disks lose nothing acked");
    }

    #[test]
    fn chaos_campaign_passes_all_invariants_under_disk_faults() {
        let cfg = ChaosConfig {
            seed: 0x0FEE_1BAD,
            crashes: 2,
            power_losses: 2,
            store: StoreConfig {
                snapshot_every: 4,
                dual_write: false,
                faults: DiskFaultPlan::new(0x0FEE_1BAD)
                    .with_torn_writes(0.6)
                    .unwrap()
                    .with_bit_rot(0.5)
                    .unwrap()
                    .with_lost_flushes(0.2)
                    .unwrap()
                    .with_stale_reads(0.3)
                    .unwrap(),
            },
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg).unwrap();
        assert!(report.all_pass(), "{:?}", report.first_failure());
        let d = report.fleet.durability.as_ref().unwrap();
        assert!(d.store.power_losses >= 2);
    }

    #[test]
    fn chaos_journeys_cover_every_session_with_intact_chains() {
        let report = run_chaos(&ChaosConfig::default()).unwrap();
        assert!(report.all_pass(), "{:?}", report.first_failure());
        assert_eq!(report.fleet.journeys.len(), report.fleet.sessions);
        assert!(report.fleet.journeys.iter().all(|j| j.chain_ok()));
        assert!(
            report.fleet.journeys.iter().any(|j| j.shards().len() > 1),
            "a crash campaign must produce at least one cross-shard journey"
        );
    }

    #[test]
    fn incident_report_is_deterministic_and_attributes_blast_radius() {
        let a = run_chaos(&ChaosConfig::default()).unwrap();
        let b = run_chaos(&ChaosConfig::default()).unwrap();
        assert_eq!(a.incidents, b.incidents);
        assert_eq!(a.incidents.render(), b.incidents.render());
        assert_eq!(
            a.incidents.incidents.len(),
            a.faults.len() + a.power_loss_at_ms.len(),
            "one incident per scheduled fault"
        );
        assert_eq!(a.incidents.sessions, a.fleet.sessions);
        assert_eq!(a.incidents.unresolved, 0);
        let touched: usize = a.incidents.incidents.iter().map(|i| i.affected.len()).sum();
        assert!(touched > 0, "the campaign's faults must touch someone");
        for inc in &a.incidents.incidents {
            assert_eq!(
                inc.affected.len(),
                inc.terminals.values().sum::<usize>(),
                "every affected session carries exactly one terminal: {}",
                inc.label
            );
            assert!(inc.recovery_ms.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn different_seeds_produce_different_campaigns() {
        let a = ChaosConfig { seed: 1, ..ChaosConfig::default() }.schedule();
        let b = ChaosConfig { seed: 2, ..ChaosConfig::default() }.schedule();
        assert_ne!(a.0, b.0, "fault schedules must vary with the seed");
    }

    #[test]
    fn chaos_config_is_validated() {
        for bad in [
            ChaosConfig { sessions: 0, ..ChaosConfig::default() },
            ChaosConfig { shards: 0, ..ChaosConfig::default() },
            ChaosConfig { mean_segments: 0, ..ChaosConfig::default() },
            ChaosConfig { horizon_ms: f64::NAN, ..ChaosConfig::default() },
            ChaosConfig { arrival_interval_ms: 0.0, ..ChaosConfig::default() },
        ] {
            assert!(run_chaos(&bad).is_err(), "{bad:?}");
        }
    }
}


