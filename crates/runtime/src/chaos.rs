//! Chaos orchestrator: one seeded schedule composing link degradation,
//! shard crashes, shard stalls, whole-fleet power losses, and disk
//! faults over the fleet's single discrete-event clock — then explicit
//! invariant checks over the outcome, including a full byte-identical
//! rerun.
//!
//! The point is not to make the fleet survive (some schedules are
//! unsurvivable by design) but to prove that whatever happens is
//! *accounted*: every offered session ends in exactly one outcome,
//! every acknowledged-durable checkpoint that vanished is attributed to
//! a provably corrupt record, and the entire composed run replays
//! bit-identically from its seed.

use crate::fleet::{
    run_fleet, FleetConfig, FleetReport, FleetWorkload, ShardFault, ShardFaultKind,
};
use crate::server::SessionOutcome;
use crate::supervisor::{mix, unit, ArrivalPlan, SupervisorConfig};
use crate::{Result, RuntimeError};
use vgbl_store::StoreConfig;

/// Domain separation for chaos-schedule draws, one salt per fault
/// dimension so adding crashes never perturbs where stalls land.
const SALT_CRASH: u64 = 0xC4A0_0001;
const SALT_STALL: u64 = 0xC4A0_0002;
const SALT_LINK: u64 = 0xC4A0_0003;
const SALT_POWER: u64 = 0xC4A0_0004;

fn invalid(msg: impl Into<String>) -> RuntimeError {
    RuntimeError::InvalidSupervisor(msg.into())
}

/// One seeded chaos campaign: how much of each fault dimension to
/// compose over the horizon. The schedule itself is a pure function of
/// `seed` — two configs that differ only in `seed` produce entirely
/// different but individually reproducible campaigns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Master seed; every scheduled fault is a pure hash of it.
    pub seed: u64,
    /// Sessions offered to the fleet.
    pub sessions: usize,
    /// Initial shard count.
    pub shards: u32,
    /// Mean inter-arrival gap, simulated ms.
    pub arrival_interval_ms: f64,
    /// Average synthetic session length in segments.
    pub mean_segments: u32,
    /// Shard crashes to schedule.
    pub crashes: u32,
    /// Shard stalls to schedule.
    pub stalls: u32,
    /// Link degradations to schedule.
    pub degraded_links: u32,
    /// Whole-fleet power losses to schedule.
    pub power_losses: u32,
    /// All faults land inside `[0, horizon_ms)`.
    pub horizon_ms: f64,
    /// The durable store (and its seeded disk-fault plan).
    pub store: StoreConfig,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0xC4A0_5EED,
            sessions: 200,
            shards: 4,
            arrival_interval_ms: 2.0,
            mean_segments: 5,
            crashes: 1,
            stalls: 1,
            degraded_links: 1,
            power_losses: 1,
            horizon_ms: 600.0,
            store: StoreConfig::default(),
        }
    }
}

impl ChaosConfig {
    fn validate(&self) -> Result<()> {
        if self.sessions == 0 {
            return Err(invalid("chaos needs at least one session"));
        }
        if self.shards == 0 {
            return Err(invalid("chaos needs at least one shard"));
        }
        if self.mean_segments == 0 {
            return Err(invalid("chaos mean_segments must be >= 1"));
        }
        if !self.horizon_ms.is_finite() || self.horizon_ms <= 0.0 {
            return Err(invalid("chaos horizon_ms must be positive and finite"));
        }
        if !self.arrival_interval_ms.is_finite() || self.arrival_interval_ms <= 0.0 {
            return Err(invalid("chaos arrival_interval_ms must be positive and finite"));
        }
        Ok(())
    }

    /// The composed fault schedule: every entry a pure hash of
    /// `(seed, dimension, index)`, so the campaign replays exactly.
    fn schedule(&self) -> (Vec<ShardFault>, Vec<f64>) {
        let mut faults = Vec::new();
        let at = |salt: u64, i: u32| unit(mix(self.seed ^ salt ^ mix(u64::from(i)))) * self.horizon_ms;
        let pick = |salt: u64, i: u32| {
            (mix(self.seed ^ salt ^ mix(u64::from(i)).rotate_left(17)) % u64::from(self.shards))
                as u32
        };
        for i in 0..self.crashes {
            faults.push(ShardFault {
                at_ms: at(SALT_CRASH, i),
                shard: pick(SALT_CRASH, i),
                kind: ShardFaultKind::Crash,
            });
        }
        for i in 0..self.stalls {
            let duration_ms =
                1.0 + unit(mix(self.seed ^ SALT_STALL ^ mix(u64::from(i)) ^ 0x5)) * 0.2 * self.horizon_ms;
            faults.push(ShardFault {
                at_ms: at(SALT_STALL, i),
                shard: pick(SALT_STALL, i),
                kind: ShardFaultKind::Stall { duration_ms },
            });
        }
        for i in 0..self.degraded_links {
            let loss = 0.5 + 0.49 * unit(mix(self.seed ^ SALT_LINK ^ mix(u64::from(i)) ^ 0x7));
            faults.push(ShardFault {
                at_ms: at(SALT_LINK, i),
                shard: pick(SALT_LINK, i),
                kind: ShardFaultKind::DegradedLink { loss },
            });
        }
        let mut power: Vec<f64> = (0..self.power_losses).map(|i| at(SALT_POWER, i)).collect();
        power.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        (faults, power)
    }
}

/// One named invariant verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantCheck {
    /// Which invariant.
    pub name: &'static str,
    /// Whether it held.
    pub pass: bool,
    /// Human-readable evidence (counts, the first violation, ...).
    pub detail: String,
}

/// The campaign's audit: the fleet report it produced plus every
/// invariant verdict, including the byte-identical-rerun check.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// The seed the whole campaign derives from.
    pub seed: u64,
    /// Scheduled shard-level faults, in schedule order.
    pub faults: Vec<ShardFault>,
    /// Scheduled whole-fleet power losses, sorted.
    pub power_loss_at_ms: Vec<f64>,
    /// The (first) run's full fleet report.
    pub fleet: FleetReport,
    /// Every invariant verdict.
    pub checks: Vec<InvariantCheck>,
}

impl ChaosReport {
    /// All invariants held.
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// The first failed invariant, if any.
    pub fn first_failure(&self) -> Option<&InvariantCheck> {
        self.checks.iter().find(|c| !c.pass)
    }
}

fn check(name: &'static str, pass: bool, detail: String) -> InvariantCheck {
    InvariantCheck { name, pass, detail }
}

/// Runs one seeded chaos campaign: builds the schedule, runs the fleet
/// over it **twice**, and returns the audited [`ChaosReport`].
///
/// Invariants checked:
/// - `exact_accounting` — every offered session has exactly one
///   terminal outcome and the scalar counters match the outcome vector.
/// - `no_dual_outcome` — no session is simultaneously served and shed:
///   every durably-lost session's single outcome is the corrupt-record
///   shed, and no other session carries that reason.
/// - `no_acked_loss_unattributed` — `lost_durable` equals the number of
///   attributed corrupt records; a durable store must never lose an
///   acknowledged checkpoint without naming the record that died.
/// - `rerun_identical` — the second run's report (storage audit
///   included) is byte-identical to the first.
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosReport> {
    cfg.validate()?;
    let (faults, power_loss_at_ms) = cfg.schedule();
    let fleet_cfg = FleetConfig {
        shards: cfg.shards,
        vnodes: 32,
        router_seed: mix(cfg.seed),
        shard: SupervisorConfig {
            queue_capacity: 32,
            queue_deadline_ms: 1e9,
            slots: 2,
            step_ms: 10.0,
            checkpoint_every: 5,
            ..SupervisorConfig::default()
        },
        faults: faults.clone(),
        store: Some(cfg.store),
        power_loss_at_ms: power_loss_at_ms.clone(),
        ..FleetConfig::default()
    };
    let workload = FleetWorkload::Synthetic { mean_segments: cfg.mean_segments };
    let arrivals = ArrivalPlan::new(cfg.seed ^ 0x0A88_14A1, cfg.arrival_interval_ms)?;
    let fleet = run_fleet(&workload, &fleet_cfg, cfg.sessions, &arrivals)?;
    let rerun = run_fleet(&workload, &fleet_cfg, cfg.sessions, &arrivals)?;

    let mut checks = Vec::new();

    let (completed, failed, shed, recovered, gave_up) = fleet.outcome_counts();
    let counters_match = completed == fleet.completed
        && failed == fleet.failed
        && shed == fleet.shed
        && recovered == fleet.recovered
        && gave_up == fleet.gave_up;
    checks.push(check(
        "exact_accounting",
        fleet.accounts_exactly() && fleet.outcomes.len() == fleet.sessions && counters_match,
        format!(
            "{} sessions = {completed} completed + {recovered} recovered + {failed} failed \
             + {gave_up} gave up + {shed} shed",
            fleet.sessions
        ),
    ));

    const CORRUPT_SHED: &str = "cold restart: durable checkpoint corrupt";
    let lost_sessions: Vec<usize> = fleet
        .durability
        .as_ref()
        .map(|d| d.lost.iter().map(|l| l.session).collect())
        .unwrap_or_default();
    let lost_all_shed = lost_sessions.iter().all(|&s| {
        matches!(&fleet.outcomes[s], SessionOutcome::Shed { reason } if reason == CORRUPT_SHED)
    });
    let corrupt_sheds = fleet
        .outcomes
        .iter()
        .filter(|o| matches!(o, SessionOutcome::Shed { reason } if reason == CORRUPT_SHED))
        .count();
    checks.push(check(
        "no_dual_outcome",
        lost_all_shed && corrupt_sheds == lost_sessions.len(),
        format!(
            "{} durably lost sessions, {corrupt_sheds} corrupt-record sheds, all matching",
            lost_sessions.len()
        ),
    ));

    let attributed = fleet.durability.as_ref().map_or(0, |d| d.lost.len());
    checks.push(check(
        "no_acked_loss_unattributed",
        fleet.lost_durable == attributed,
        format!("lost_durable = {} with {attributed} attributed corrupt records", fleet.lost_durable),
    ));

    checks.push(check(
        "rerun_identical",
        fleet == rerun,
        if fleet == rerun {
            format!("two runs from seed {:#x} produced identical reports", cfg.seed)
        } else {
            "second run diverged from the first".to_string()
        },
    ));

    Ok(ChaosReport { seed: cfg.seed, faults, power_loss_at_ms, fleet, checks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgbl_store::DiskFaultPlan;

    #[test]
    fn chaos_campaign_passes_all_invariants_on_clean_disks() {
        let report = run_chaos(&ChaosConfig::default()).unwrap();
        assert!(report.all_pass(), "{:?}", report.first_failure());
        assert_eq!(report.faults.len(), 3);
        assert_eq!(report.power_loss_at_ms.len(), 1);
        assert_eq!(report.fleet.lost_durable, 0, "clean disks lose nothing acked");
    }

    #[test]
    fn chaos_campaign_passes_all_invariants_under_disk_faults() {
        let cfg = ChaosConfig {
            seed: 0x0FEE_1BAD,
            crashes: 2,
            power_losses: 2,
            store: StoreConfig {
                snapshot_every: 4,
                dual_write: false,
                faults: DiskFaultPlan::new(0x0FEE_1BAD)
                    .with_torn_writes(0.6)
                    .unwrap()
                    .with_bit_rot(0.5)
                    .unwrap()
                    .with_lost_flushes(0.2)
                    .unwrap()
                    .with_stale_reads(0.3)
                    .unwrap(),
            },
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg).unwrap();
        assert!(report.all_pass(), "{:?}", report.first_failure());
        let d = report.fleet.durability.as_ref().unwrap();
        assert!(d.store.power_losses >= 2);
    }

    #[test]
    fn different_seeds_produce_different_campaigns() {
        let a = ChaosConfig { seed: 1, ..ChaosConfig::default() }.schedule();
        let b = ChaosConfig { seed: 2, ..ChaosConfig::default() }.schedule();
        assert_ne!(a.0, b.0, "fault schedules must vary with the seed");
    }

    #[test]
    fn chaos_config_is_validated() {
        for bad in [
            ChaosConfig { sessions: 0, ..ChaosConfig::default() },
            ChaosConfig { shards: 0, ..ChaosConfig::default() },
            ChaosConfig { mean_segments: 0, ..ChaosConfig::default() },
            ChaosConfig { horizon_ms: f64::NAN, ..ChaosConfig::default() },
            ChaosConfig { arrival_interval_ms: 0.0, ..ChaosConfig::default() },
        ] {
            assert!(run_chaos(&bad).is_err(), "{bad:?}");
        }
    }
}
