//! Feedback the platform presents to the player.
//!
//! §2.1: on interaction "the scenario changes and interactive objects pop
//! out … text messages, images and webpage are also popped up." Each
//! handled input yields an ordered list of [`Feedback`] values; a GUI
//! front-end would render them, the ASCII renderer prints them, tests
//! assert on them.

/// One observable effect of a handled input event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Feedback {
    /// A text message popped up (descriptions, knowledge delivery).
    Text(String),
    /// An image asset popped up.
    Image(String),
    /// A web page opened ("get information from websites", Figure 2).
    WebPage(String),
    /// An NPC spoke.
    NpcLine {
        /// The speaking NPC.
        npc: String,
        /// The line spoken.
        line: String,
    },
    /// Playback switched to another scenario.
    ScenarioChanged {
        /// Scenario the player left.
        from: String,
        /// Scenario the player entered.
        to: String,
    },
    /// An item landed in the backpack.
    ItemAdded(String),
    /// An item left the backpack.
    ItemRemoved(String),
    /// The score changed by `delta` to `total`.
    ScoreChanged {
        /// The applied delta.
        delta: i64,
        /// The new total.
        total: i64,
    },
    /// A reward object appeared in the inventory window (§3.3).
    RewardGranted(String),
    /// The avatar walked to a new position.
    AvatarMoved {
        /// New x.
        x: i32,
        /// New y.
        y: i32,
    },
    /// The game ended with an outcome.
    GameEnded(String),
    /// A conversation is waiting for the player to pick a response
    /// (answer with [`crate::input::InputEvent::Choose`]).
    DialogueChoices(Vec<String>),
    /// The active conversation ended.
    DialogueEnded,
    /// The input hit nothing actionable (useful for bots and UX studies).
    NothingHappened,
}

impl Feedback {
    /// Whether this feedback delivers knowledge content (text, image, web
    /// page or NPC line) — the §3.2 events the analytics count.
    pub fn is_knowledge(&self) -> bool {
        matches!(
            self,
            Feedback::Text(_) | Feedback::Image(_) | Feedback::WebPage(_) | Feedback::NpcLine { .. }
        )
    }
}

impl std::fmt::Display for Feedback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Feedback::Text(s) => write!(f, "[text] {s}"),
            Feedback::Image(s) => write!(f, "[image] {s}"),
            Feedback::WebPage(s) => write!(f, "[web] {s}"),
            Feedback::NpcLine { npc, line } => write!(f, "[{npc}] {line}"),
            Feedback::ScenarioChanged { from, to } => write!(f, "[scene] {from} -> {to}"),
            Feedback::ItemAdded(s) => write!(f, "[backpack] + {s}"),
            Feedback::ItemRemoved(s) => write!(f, "[backpack] - {s}"),
            Feedback::ScoreChanged { delta, total } => {
                write!(f, "[score] {delta:+} (total {total})")
            }
            Feedback::RewardGranted(s) => write!(f, "[reward] {s}"),
            Feedback::AvatarMoved { x, y } => write!(f, "[avatar] -> ({x}, {y})"),
            Feedback::GameEnded(s) => write!(f, "[end] {s}"),
            Feedback::DialogueChoices(choices) => {
                write!(f, "[choose]")?;
                for (i, c) in choices.iter().enumerate() {
                    write!(f, " {}){c}", i + 1)?;
                }
                Ok(())
            }
            Feedback::DialogueEnded => write!(f, "[conversation over]"),
            Feedback::NothingHappened => write!(f, "[.]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knowledge_classification() {
        assert!(Feedback::Text("a".into()).is_knowledge());
        assert!(Feedback::Image("a".into()).is_knowledge());
        assert!(Feedback::WebPage("u".into()).is_knowledge());
        assert!(Feedback::NpcLine { npc: "n".into(), line: "l".into() }.is_knowledge());
        assert!(!Feedback::ItemAdded("x".into()).is_knowledge());
        assert!(!Feedback::NothingHappened.is_knowledge());
        assert!(!Feedback::ScoreChanged { delta: 1, total: 1 }.is_knowledge());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(
            Feedback::ScoreChanged { delta: -2, total: 8 }.to_string(),
            "[score] -2 (total 8)"
        );
        assert_eq!(
            Feedback::ScenarioChanged { from: "a".into(), to: "b".into() }.to_string(),
            "[scene] a -> b"
        );
    }
}
