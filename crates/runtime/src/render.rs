//! Rendering — the reproduction of the paper's Figure 2.
//!
//! Figure 2 shows "the interface of interactive VGBL runtime environment":
//! a video frame with an image object (an umbrella on a white background)
//! mounted on it, an inventory window listing collected items, and buttons
//! that switch video segments. Without a GUI toolkit (see `DESIGN.md`),
//! this module reproduces the same information two ways:
//!
//! * [`compose_frame`] — pixel-true compositing of the mounted objects
//!   onto the decoded video frame (colour-keyed, z-ordered), exactly what
//!   a GUI front-end would blit;
//! * [`ascii_ui`] — a deterministic text rendering of the full player
//!   window (video area with object markers, backpack pane, button row,
//!   feedback line) that tests assert on byte-for-byte.

use vgbl_media::color::Rgb;
use vgbl_media::Frame;
use vgbl_scene::{ObjectKind, Scenario};

use crate::engine::GameSession;
use crate::feedback::Feedback;
use crate::Result;

/// Luma-to-character ramp, dark to bright.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Composites the current scenario's visible objects onto `base`
/// (a decoded video frame), bottom-to-top by z. Image and item objects
/// blit their assets (honouring colour keys); buttons draw as bordered
/// fills; NPC anchors draw their asset when one exists under the NPC's
/// name, else a marker frame. The avatar draws as a small cross.
pub fn compose_frame(session: &GameSession, base: &Frame) -> Result<Frame> {
    let mut out = base.clone();
    let scenario = session.current_scenario();
    let graph = session.graph();
    let env = crate::state::GameEnv {
        state: session.state(),
        inventory: session.inventory(),
    };
    for object in scenario.draw_order() {
        if !object.is_visible(&env)? {
            continue;
        }
        let b = object.bounds;
        match &object.kind {
            ObjectKind::Image { asset } | ObjectKind::Item { asset, .. } => {
                if let Some(a) = graph.assets().get(asset) {
                    match a.color_key {
                        Some(key) => out.blit_keyed(&a.image, b.x as i64, b.y as i64, key),
                        None => out.blit(&a.image, b.x as i64, b.y as i64),
                    }
                }
            }
            ObjectKind::Button { .. } => {
                out.fill_rect(b.x as i64, b.y as i64, b.w, b.h, Rgb::new(60, 60, 90));
                // 1px border.
                out.fill_rect(b.x as i64, b.y as i64, b.w, 1, Rgb::WHITE);
                out.fill_rect(b.x as i64, b.bottom() - 1, b.w, 1, Rgb::WHITE);
                out.fill_rect(b.x as i64, b.y as i64, 1, b.h, Rgb::WHITE);
                out.fill_rect(b.right() - 1, b.y as i64, 1, b.h, Rgb::WHITE);
            }
            ObjectKind::NpcAnchor { npc } => {
                if let Some(a) = graph.assets().get(npc) {
                    match a.color_key {
                        Some(key) => out.blit_keyed(&a.image, b.x as i64, b.y as i64, key),
                        None => out.blit(&a.image, b.x as i64, b.y as i64),
                    }
                } else {
                    out.fill_rect(b.x as i64, b.y as i64, b.w, 1, Rgb::new(230, 200, 80));
                    out.fill_rect(b.x as i64, b.bottom() - 1, b.w, 1, Rgb::new(230, 200, 80));
                    out.fill_rect(b.x as i64, b.y as i64, 1, b.h, Rgb::new(230, 200, 80));
                    out.fill_rect(b.right() - 1, b.y as i64, 1, b.h, Rgb::new(230, 200, 80));
                }
            }
        }
    }
    // Avatar cross.
    let (ax, ay) = session.state().avatar;
    out.fill_rect(ax as i64 - 2, ay as i64, 5, 1, Rgb::new(255, 80, 80));
    out.fill_rect(ax as i64, ay as i64 - 2, 1, 5, Rgb::new(255, 80, 80));
    Ok(out)
}

/// Renders the video frame area as a luma character map of the given
/// character-grid size.
fn charmap(frame: &Frame, cols: usize, rows: usize) -> Vec<String> {
    let mut lines = Vec::with_capacity(rows);
    for r in 0..rows {
        let mut line = String::with_capacity(cols);
        for c in 0..cols {
            let x = (c as u32 * frame.width()) / cols as u32;
            let y = (r as u32 * frame.height()) / rows as u32;
            let l = frame.get(x, y).map(|p| p.luma()).unwrap_or(0) as usize;
            line.push(RAMP[l * (RAMP.len() - 1) / 255] as char);
        }
        lines.push(line);
    }
    lines
}

/// Overlays single-character object markers (the object's initial,
/// uppercased) onto a charmap at the objects' centres.
fn mark_objects(
    lines: &mut [String],
    scenario: &Scenario,
    frame_size: (u32, u32),
    cols: usize,
    rows: usize,
) {
    for object in scenario.objects() {
        let centre = object.bounds.center();
        if centre.x < 0 || centre.y < 0 {
            continue;
        }
        let c = (centre.x as u32 * cols as u32 / frame_size.0.max(1)) as usize;
        let r = (centre.y as u32 * rows as u32 / frame_size.1.max(1)) as usize;
        if r < lines.len() && c < cols {
            let marker = object
                .name
                .chars()
                .next()
                .unwrap_or('?')
                .to_ascii_uppercase();
            let line = &mut lines[r];
            let mut chars: Vec<char> = line.chars().collect();
            chars[c] = marker;
            *line = chars.into_iter().collect();
        }
    }
}

/// Width of the text UI in characters.
const UI_COLS: usize = 64;
/// Character rows used for the video area.
const VIDEO_ROWS: usize = 14;
/// Character columns used for the video area (backpack pane gets the rest).
const VIDEO_COLS: usize = 46;

/// Renders the full runtime-environment window (Figure 2) as text:
/// title bar, status line, video area with object markers, backpack and
/// rewards pane, button row and the latest feedback lines.
///
/// Deterministic: same session state + same frame ⇒ same string.
pub fn ascii_ui(
    session: &GameSession,
    video_frame: Option<&Frame>,
    last_feedback: &[Feedback],
) -> String {
    let scenario = session.current_scenario();
    let (fw, fh) = session.config().frame_size;

    let fallback = Frame::filled(fw.max(1), fh.max(1), Rgb::new(24, 24, 24))
        .expect("frame size validated at session start");
    let frame = video_frame.unwrap_or(&fallback);
    let mut video = charmap(frame, VIDEO_COLS, VIDEO_ROWS);
    mark_objects(&mut video, scenario, (fw, fh), VIDEO_COLS, VIDEO_ROWS);

    // Right pane: backpack + rewards.
    let pane_w = UI_COLS - VIDEO_COLS - 3; // borders
    let mut pane: Vec<String> = Vec::with_capacity(VIDEO_ROWS);
    pane.push("BACKPACK".to_owned());
    for (item, count) in session.inventory().items() {
        if count > 1 {
            pane.push(format!("{item} x{count}"));
        } else {
            pane.push(item.to_owned());
        }
    }
    pane.push("-".repeat(pane_w));
    pane.push("REWARDS".to_owned());
    for r in session.inventory().rewards() {
        pane.push(r.clone());
    }
    pane.truncate(VIDEO_ROWS);
    while pane.len() < VIDEO_ROWS {
        pane.push(String::new());
    }

    let mut out = String::with_capacity((UI_COLS + 1) * (VIDEO_ROWS + 8));
    let title = " VGBL Runtime Environment ";
    out.push('+');
    out.push_str(&format!("{title:=^width$}", width = UI_COLS - 2));
    out.push_str("+\n");

    let status = format!(
        " scenario: {:<12} score: {:<6} time: {:>6}ms ",
        scenario.name,
        session.state().score,
        session.state().total_clock_ms
    );
    out.push_str(&format!("|{status:<width$}|\n", width = UI_COLS - 2));

    out.push('+');
    out.push_str(&"-".repeat(VIDEO_COLS));
    out.push('+');
    out.push_str(&"-".repeat(UI_COLS - VIDEO_COLS - 3));
    out.push_str("+\n");

    for (v, p) in video.iter().zip(pane.iter()) {
        let mut pane_line: String = p.chars().take(pane_w).collect();
        while pane_line.len() < pane_w {
            pane_line.push(' ');
        }
        out.push('|');
        out.push_str(v);
        out.push('|');
        out.push_str(&pane_line);
        out.push_str("|\n");
    }

    out.push('+');
    out.push_str(&"-".repeat(VIDEO_COLS));
    out.push('+');
    out.push_str(&"-".repeat(UI_COLS - VIDEO_COLS - 3));
    out.push_str("+\n");

    // Button row.
    let mut buttons = String::from(" ");
    for o in scenario.objects() {
        if let ObjectKind::Button { label } = &o.kind {
            buttons.push_str(&format!("[{label}] "));
        }
    }
    let buttons: String = buttons.chars().take(UI_COLS - 2).collect();
    out.push_str(&format!("|{buttons:<width$}|\n", width = UI_COLS - 2));

    // Feedback lines (latest up to 2).
    for fb in last_feedback.iter().rev().take(2).rev() {
        let line: String = format!(" {fb}").chars().take(UI_COLS - 2).collect();
        out.push_str(&format!("|{line:<width$}|\n", width = UI_COLS - 2));
    }

    out.push('+');
    out.push_str(&"=".repeat(UI_COLS - 2));
    out.push_str("+\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{GameSession, SessionConfig};
    use crate::fixtures::{fix_the_computer, FRAME};
    use crate::input::InputEvent;
    use std::sync::Arc;

    fn session() -> GameSession {
        GameSession::new(
            Arc::new(fix_the_computer()),
            SessionConfig::for_frame(FRAME.0, FRAME.1),
        )
        .unwrap()
        .0
    }

    #[test]
    fn ascii_ui_contains_figure2_elements() {
        let mut s = session();
        s.handle(InputEvent::click(42, 4)).unwrap(); // to market
        let fb = s.handle(InputEvent::drag(12, 12, 60, 20)).unwrap(); // take fan
        let ui = ascii_ui(&s, None, &fb);
        assert!(ui.contains("VGBL Runtime Environment"));
        assert!(ui.contains("scenario: market"));
        assert!(ui.contains("BACKPACK"));
        assert!(ui.contains("fan"));
        assert!(ui.contains("REWARDS"));
        assert!(ui.contains("[Fan specs]"));
        assert!(ui.contains("[Back to class]"));
        assert!(ui.contains("[backpack] + fan"));
    }

    #[test]
    fn ascii_ui_is_deterministic_and_rectangular() {
        let s = session();
        let a = ascii_ui(&s, None, &[]);
        let b = ascii_ui(&s, None, &[]);
        assert_eq!(a, b);
        for line in a.lines() {
            assert_eq!(line.chars().count(), UI_COLS, "line: {line:?}");
        }
    }

    #[test]
    fn ascii_ui_marks_objects_in_video_area() {
        let s = session();
        let ui = ascii_ui(&s, None, &[]);
        // classroom objects: Teacher, Computer, door (to_market → 'T').
        assert!(ui.contains('C'), "computer marker missing:\n{ui}");
    }

    #[test]
    fn compose_blits_visible_objects_and_keys_transparency() {
        let s = session();
        let base = Frame::filled(FRAME.0, FRAME.1, Rgb::new(10, 10, 10)).unwrap();
        let out = compose_frame(&s, &base).unwrap();
        // The computer item sits at (20,16)+10x10 asset: its centre pixel
        // is painted, and the asset's white-keyed corner stays background.
        let centre = out.get(25, 21).unwrap();
        assert_ne!(centre, Rgb::new(10, 10, 10));
        let corner = out.get(20, 16).unwrap();
        assert_eq!(corner, Rgb::new(10, 10, 10), "colour key not honoured");
        // Button area painted.
        let btn = out.get(44, 6).unwrap();
        assert_ne!(btn, Rgb::new(10, 10, 10));
    }

    #[test]
    fn compose_skips_invisible_objects() {
        let mut s = session();
        s.handle(InputEvent::click(42, 4)).unwrap(); // market
        let base = Frame::filled(FRAME.0, FRAME.1, Rgb::BLACK).unwrap();
        let before = compose_frame(&s, &base).unwrap();
        // Fan visible at (10,10): painted.
        assert_ne!(before.get(14, 13).unwrap(), Rgb::BLACK);
        s.handle(InputEvent::drag(12, 12, 60, 20)).unwrap(); // take fan
        let after = compose_frame(&s, &base).unwrap();
        // Now invisible (visible_when !has("fan")).
        assert_eq!(after.get(14, 13).unwrap(), Rgb::BLACK);
    }

    #[test]
    fn compose_draws_avatar() {
        let mut s = session();
        s.handle(InputEvent::click(50, 40)).unwrap(); // walk (empty spot)
        let base = Frame::filled(FRAME.0, FRAME.1, Rgb::BLACK).unwrap();
        let out = compose_frame(&s, &base).unwrap();
        assert_eq!(out.get(50, 40), Some(Rgb::new(255, 80, 80)));
    }
}
