//! Deterministic cooperative session executor.
//!
//! The cohort servers used to be thread-per-session: one OS thread per
//! player under `catch_unwind`, which caps a simulated node at hundreds
//! of in-flight sessions. This module replaces the *scheduling* with a
//! cooperative model — sessions are explicit [`SessionTask`] state
//! machines that yield at fetch/decode boundaries — while keeping the
//! *decode work* on the work-stealing `parallel_map_indexed` pool. One
//! simulated node now models tens of thousands of in-flight sessions
//! (EXP-18) with byte-identical output.
//!
//! # Determinism argument
//!
//! No tokio, no wall clock, no thread preemption decides anything:
//!
//! * The run queue is polled single-threaded. Its order is a **seeded
//!   shuffle** per tick — deliberately arbitrary, so any accidental
//!   dependence on poll order shows up as a broken replay instead of a
//!   latent bug. All cross-task effects flow through commutative sinks
//!   (atomic counters, windowed series, per-task span recorders sorted
//!   at snapshot) or through the batch phase below.
//! * Fetch requests never touch the link/cache from inside a task.
//!   Each [`Step::Fetch`] is collected by a
//!   [`vgbl_stream::BatchPlanner`], which coalesces one tick's
//!   requests into a sorted, deduplicated [`BatchPlan`] — a pure
//!   function of the request *set*, not its order. The plan is then
//!   resolved once (decodes fan out over `parallel_map_indexed`, which
//!   returns results in index order), and the requesting tasks resume
//!   in the same tick.
//! * Timers ([`EventQueue`]) order strictly by
//!   `(time, class, tie, seq)`: simulated time first, then an explicit
//!   class (so e.g. slot-free events outrank arrivals at the same
//!   instant), then a caller tie-break, then insertion order. There are
//!   no equal keys, so heap behaviour is never visible.
//! * A panicking task is caught **per poll**, retired as a `Failed`
//!   row, and its spans still flush — the same isolation contract the
//!   thread-per-session path made, without the thread.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use vgbl_obs::{Obs, SeriesSpec};
use vgbl_stream::{BatchPlan, BatchPlanner};

use crate::server::panic_reason;

// ---------------------------------------------------------------------------
// Simulated time + event queue
// ---------------------------------------------------------------------------

/// A simulated clock value usable as an [`EventQueue`] key. Implemented
/// for `u64` (microsecond ticks) and `f64` (millisecond clocks, ordered
/// by `total_cmp`; simulation clocks are always finite).
pub trait SimTime: Copy {
    /// Total order on clock values.
    fn cmp_total(self, other: Self) -> Ordering;
}

impl SimTime for u64 {
    fn cmp_total(self, other: u64) -> Ordering {
        self.cmp(&other)
    }
}

impl SimTime for f64 {
    fn cmp_total(self, other: f64) -> Ordering {
        self.total_cmp(&other)
    }
}

/// An event popped from an [`EventQueue`]: the scheduled time, the
/// ordering key parts, and the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timed<T, K> {
    /// Scheduled simulated time.
    pub at: T,
    /// Ordering class: lower classes fire first at equal times.
    pub class: u8,
    /// Caller tie-break within a class (e.g. a slot index).
    pub tie: u64,
    /// Payload scheduled by the caller.
    pub payload: K,
}

struct QEntry<T, K> {
    at: T,
    class: u8,
    tie: u64,
    seq: u64,
    payload: K,
}

impl<T: SimTime, K> QEntry<T, K> {
    fn key_cmp(&self, other: &QEntry<T, K>) -> Ordering {
        self.at
            .cmp_total(other.at)
            .then(self.class.cmp(&other.class))
            .then(self.tie.cmp(&other.tie))
            .then(self.seq.cmp(&other.seq))
    }
}

impl<T: SimTime, K> PartialEq for QEntry<T, K> {
    fn eq(&self, other: &QEntry<T, K>) -> bool {
        self.key_cmp(other) == Ordering::Equal
    }
}

impl<T: SimTime, K> Eq for QEntry<T, K> {}

impl<T: SimTime, K> PartialOrd for QEntry<T, K> {
    fn partial_cmp(&self, other: &QEntry<T, K>) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: SimTime, K> Ord for QEntry<T, K> {
    fn cmp(&self, other: &QEntry<T, K>) -> Ordering {
        self.key_cmp(other)
    }
}

/// A deterministic simulated-time event heap ordered by
/// `(time, class, tie, seq)`. `seq` is the insertion index, so entries
/// with otherwise-equal keys fire in push order and the heap's internal
/// layout is never observable. The supervisor's slot stepping and the
/// fleet's segment/fault/control events both run on this queue.
#[derive(Default)]
pub struct EventQueue<T: SimTime, K> {
    heap: BinaryHeap<Reverse<QEntry<T, K>>>,
    seq: u64,
}

impl<T: SimTime, K> EventQueue<T, K> {
    /// An empty queue.
    pub fn new() -> EventQueue<T, K> {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `payload` at `at` with class 0 and tie 0.
    pub fn push(&mut self, at: T, payload: K) {
        self.push_keyed(at, 0, 0, payload);
    }

    /// Schedules `payload` at `at` with an explicit ordering class and
    /// tie-break.
    pub fn push_keyed(&mut self, at: T, class: u8, tie: u64, payload: K) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(QEntry { at, class, tie, seq, payload }));
    }

    /// The earliest scheduled time, if any.
    pub fn peek_at(&self) -> Option<T> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// The earliest event's time and payload, without removing it.
    pub fn peek(&self) -> Option<(T, &K)> {
        self.heap.peek().map(|Reverse(e)| (e.at, &e.payload))
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Timed<T, K>> {
        self.heap.pop().map(|Reverse(e)| Timed {
            at: e.at,
            class: e.class,
            tie: e.tie,
            payload: e.payload,
        })
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Cooperative session tasks
// ---------------------------------------------------------------------------

/// What a [`SessionTask`] asks of the executor after one poll.
#[derive(Debug)]
pub enum Step<K, R> {
    /// Yield; poll again next tick.
    Pending,
    /// The task needs `key` fetched/decoded before it can continue;
    /// the executor batches the tick's requests, resolves them once,
    /// and re-polls the task in the same tick.
    Fetch(K),
    /// The task finished with `output` and will not be polled again.
    Done(R),
}

/// A session as an explicit cooperative state machine.
///
/// Contract: a poll that returned [`Step::Fetch`] must, on the re-poll
/// after the batch resolves, make progress (serve, conceal or fail)
/// rather than unconditionally re-requesting — the executor resolves
/// any number of fetch rounds per tick, so a task that never progresses
/// would spin the tick forever.
pub trait SessionTask {
    /// Batchable fetch key (e.g. a GOP keyframe index).
    type Fetch: Ord + Copy;
    /// Per-session success value.
    type Output;

    /// Runs the task up to its next yield point. May panic; the
    /// executor isolates the panic to this task.
    fn poll(&mut self) -> Step<Self::Fetch, std::result::Result<Self::Output, String>>;

    /// Called exactly once when the task retires (done, failed or
    /// panicked): flush observability state here, never in `poll`.
    fn flush(&mut self) {}
}

/// Counters the executor accumulates over a cohort run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Scheduler ticks executed.
    pub ticks: u64,
    /// Task polls performed.
    pub polls: u64,
    /// Batch-fetch rounds resolved.
    pub batches: u64,
    /// Unique keys across all batch rounds.
    pub batched_keys: u64,
    /// Most tasks simultaneously in flight at the top of any tick.
    pub peak_in_flight: usize,
    /// Task polls that panicked (each retires its task).
    pub panics: u64,
}

/// Outcome of [`run_tasks`]: one row per task in index order, plus the
/// executor's counters.
#[derive(Debug)]
pub struct CohortRun<R> {
    /// `rows[i]` is task `i`'s result: `Ok` on completion, `Err` with
    /// the error display or panic message otherwise. Always `Some` —
    /// the executor never loses a task.
    pub rows: Vec<Option<std::result::Result<R, String>>>,
    /// Scheduler counters.
    pub stats: ExecutorStats,
}

/// Splitmix64: the seeded run-queue permutation stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic Fisher–Yates shuffle of this tick's run queue, seeded
/// by `(seed, tick)`.
fn shuffle_queue(queue: &mut [usize], seed: u64, tick: u64) {
    let mut state = seed ^ tick.wrapping_mul(0x2545_f491_4f6c_dd1d);
    for i in (1..queue.len()).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        queue.swap(i, j);
    }
}

/// Runs a cohort of [`SessionTask`]s to completion on the cooperative
/// executor.
///
/// Per tick: every live task is polled once in seeded-shuffle order;
/// tasks that yielded [`Step::Fetch`] have their keys coalesced into a
/// [`BatchPlan`] handed to `fetch_batch` (which typically prewarms a
/// shared cache through `parallel_map_indexed`), then resume within the
/// tick. Tasks that yielded [`Step::Pending`] sleep until the next
/// tick. Panics retire the offending task only.
pub fn run_tasks<S, R, F>(tasks: Vec<S>, seed: u64, fetch_batch: F) -> CohortRun<R>
where
    S: SessionTask<Output = R>,
    F: FnMut(&BatchPlan<S::Fetch>),
{
    run_tasks_observed(tasks, seed, fetch_batch, &Obs::noop())
}

/// One simulated tick of executor time, in microseconds, for the
/// per-tick series. The executor has no external clock; its tick index
/// *is* the clock, scaled so series bins line up with the registry's
/// microsecond convention.
const TICK_US: u64 = 1_000;

/// [`run_tasks`] with executor observability: an
/// `executor.run_queue_depth` high-water gauge, an
/// `executor.fetch_batch_size` histogram (one sample per coalesced
/// batch round), and an `executor.polled_tasks` per-tick series on the
/// tick clock. A noop `obs` makes every tap a single branch — this is
/// exactly what [`run_tasks`] passes, so the unobserved hot path is
/// unchanged.
pub fn run_tasks_observed<S, R, F>(
    mut tasks: Vec<S>,
    seed: u64,
    mut fetch_batch: F,
    obs: &Obs,
) -> CohortRun<R>
where
    S: SessionTask<Output = R>,
    F: FnMut(&BatchPlan<S::Fetch>),
{
    let l: &[(&'static str, &'static str)] = &[("pillar", "runtime")];
    let queue_depth = obs.gauge("executor.run_queue_depth", l);
    let batch_size = obs.histogram("executor.fetch_batch_size", l);
    let polled = obs.series(SeriesSpec::counter("executor.polled_tasks", TICK_US, 4096));
    let n = tasks.len();
    let mut rows: Vec<Option<std::result::Result<R, String>>> = (0..n).map(|_| None).collect();
    let mut stats = ExecutorStats::default();
    let mut planner: BatchPlanner<S::Fetch> = BatchPlanner::new();
    let mut live: Vec<usize> = (0..n).collect();
    let mut tick = 0u64;
    while !live.is_empty() {
        stats.ticks += 1;
        stats.peak_in_flight = stats.peak_in_flight.max(live.len());
        queue_depth.observe(live.len() as u64);
        let polls_before = stats.polls;
        shuffle_queue(&mut live, seed, tick);
        let mut runnable = std::mem::take(&mut live);
        let mut next: Vec<usize> = Vec::new();
        // Fetch rounds within the tick: poll, batch, resolve, re-poll
        // the fetchers — until the tick quiesces.
        loop {
            let mut fetchers: Vec<usize> = Vec::new();
            for idx in runnable.drain(..) {
                stats.polls += 1;
                match catch_unwind(AssertUnwindSafe(|| tasks[idx].poll())) {
                    Ok(Step::Pending) => next.push(idx),
                    Ok(Step::Fetch(key)) => {
                        planner.request(idx as u64, key);
                        fetchers.push(idx);
                    }
                    Ok(Step::Done(row)) => {
                        rows[idx] = Some(row);
                        tasks[idx].flush();
                    }
                    Err(payload) => {
                        stats.panics += 1;
                        rows[idx] = Some(Err(panic_reason(payload)));
                        tasks[idx].flush();
                    }
                }
            }
            if fetchers.is_empty() {
                break;
            }
            let plan = planner.take_plan();
            stats.batches += 1;
            stats.batched_keys += plan.len() as u64;
            batch_size.record(plan.len() as u64);
            fetch_batch(&plan);
            runnable = fetchers;
        }
        polled.record(tick * TICK_US, stats.polls - polls_before);
        // Canonical order between ticks; the next tick re-shuffles.
        next.sort_unstable();
        live = next;
        tick += 1;
    }
    CohortRun { rows, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_event_queue_orders_by_time_class_tie_seq() {
        let mut q: EventQueue<u64, &'static str> = EventQueue::new();
        q.push_keyed(10, 1, 0, "t10-c1");
        q.push_keyed(10, 0, 5, "t10-c0-tie5");
        q.push_keyed(10, 0, 2, "t10-c0-tie2");
        q.push_keyed(3, 9, 9, "t3");
        q.push_keyed(10, 0, 2, "t10-c0-tie2-later");
        assert_eq!(q.peek_at(), Some(3));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(
            order,
            vec!["t3", "t10-c0-tie2", "t10-c0-tie2-later", "t10-c0-tie5", "t10-c1"]
        );
    }

    #[test]
    fn executor_event_queue_orders_f64_times_totally() {
        let mut q: EventQueue<f64, u32> = EventQueue::new();
        q.push(1.5, 1);
        q.push(0.25, 0);
        q.push(1.5, 2);
        let order: Vec<(f64, u32)> =
            std::iter::from_fn(|| q.pop().map(|e| (e.at, e.payload))).collect();
        assert_eq!(order, vec![(0.25, 0), (1.5, 1), (1.5, 2)]);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    /// Counts down `ticks` yields, optionally demanding one fetch of
    /// `key` per step, then finishes with its poll count.
    struct CountTask {
        remaining: u32,
        key: Option<u32>,
        fetching: bool,
        polls: u32,
        panic_at: Option<u32>,
    }

    impl SessionTask for CountTask {
        type Fetch = u32;
        type Output = u32;

        fn poll(&mut self) -> Step<u32, std::result::Result<u32, String>> {
            self.polls += 1;
            if Some(self.polls) == self.panic_at {
                panic!("count task blew up");
            }
            if self.fetching {
                self.fetching = false;
                self.remaining -= 1;
                return if self.remaining == 0 {
                    Step::Done(Ok(self.polls))
                } else {
                    Step::Pending
                };
            }
            if self.remaining == 0 {
                return Step::Done(Ok(self.polls));
            }
            if let Some(k) = self.key {
                self.fetching = true;
                Step::Fetch(k)
            } else {
                self.remaining -= 1;
                if self.remaining == 0 {
                    Step::Done(Ok(self.polls))
                } else {
                    Step::Pending
                }
            }
        }
    }

    fn counting(remaining: u32, key: Option<u32>) -> CountTask {
        CountTask { remaining, key, fetching: false, polls: 0, panic_at: None }
    }

    #[test]
    fn executor_runs_cohort_to_completion_in_index_order() {
        let tasks: Vec<CountTask> = (1..=5).map(|i| counting(i, None)).collect();
        let run = run_tasks(tasks, 7, |_plan: &BatchPlan<u32>| {});
        assert_eq!(run.rows.len(), 5);
        for (i, row) in run.rows.iter().enumerate() {
            let polls = row.as_ref().unwrap().as_ref().unwrap();
            assert_eq!(*polls, i as u32 + 1, "task {i} finishes after its count");
        }
        assert_eq!(run.stats.peak_in_flight, 5);
        assert_eq!(run.stats.ticks, 5, "longest task needs 5 ticks");
        assert_eq!(run.stats.batches, 0);
    }

    #[test]
    fn executor_output_is_independent_of_run_queue_seed() {
        let run = |seed: u64| {
            let tasks: Vec<CountTask> = (1..=8).map(|i| counting(i, Some(i % 3))).collect();
            let mut plans: Vec<Vec<u32>> = Vec::new();
            let run = run_tasks(tasks, seed, |plan: &BatchPlan<u32>| {
                plans.push(plan.keys.clone());
            });
            let rows: Vec<u32> =
                run.rows.iter().map(|r| *r.as_ref().unwrap().as_ref().unwrap()).collect();
            (rows, plans)
        };
        // The seeded shuffle changes poll order; results and batch
        // plans must not change (plans are sets, not sequences).
        assert_eq!(run(1), run(0xdead_beef));
    }

    #[test]
    fn executor_coalesces_fetches_within_a_tick() {
        // 6 tasks all needing key 42 every step: one batched key per
        // fetch round, not six.
        let tasks: Vec<CountTask> = (0..6).map(|_| counting(3, Some(42))).collect();
        let mut seen = Vec::new();
        let run = run_tasks(tasks, 3, |plan: &BatchPlan<u32>| {
            seen.push((plan.keys.clone(), plan.waiters.iter().map(Vec::len).sum::<usize>()));
        });
        assert_eq!(run.stats.batches, 3, "one fetch round per step");
        assert_eq!(run.stats.batched_keys, 3);
        for (keys, waiters) in seen {
            assert_eq!(keys, vec![42]);
            assert_eq!(waiters, 6, "all six tasks coalesced onto the key");
        }
    }

    #[test]
    fn executor_isolates_a_panicking_task() {
        let mut tasks: Vec<CountTask> = (0..4).map(|_| counting(4, None)).collect();
        tasks[2].panic_at = Some(2);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let run = run_tasks(tasks, 11, |_plan: &BatchPlan<u32>| {});
        std::panic::set_hook(prev);
        assert_eq!(run.stats.panics, 1);
        for (i, row) in run.rows.iter().enumerate() {
            let row = row.as_ref().unwrap();
            if i == 2 {
                let reason = row.as_ref().unwrap_err();
                assert!(reason.contains("count task blew up"), "{reason}");
            } else {
                assert!(row.is_ok(), "task {i} unaffected");
            }
        }
    }

    #[test]
    fn executor_observed_taps_mirror_stats() {
        let obs = Obs::recording();
        let tasks: Vec<CountTask> = (1..=6).map(|i| counting(i, Some(i % 2))).collect();
        let polled = obs.series(SeriesSpec::counter("executor.polled_tasks", TICK_US, 4096));
        let run = run_tasks_observed(tasks, 5, |_plan: &BatchPlan<u32>| {}, &obs);
        let snap = obs.snapshot();
        assert_eq!(
            snap.gauge_max("executor.run_queue_depth"),
            run.stats.peak_in_flight as u64,
            "gauge high-water is the peak run-queue depth"
        );
        let h = snap.histogram("executor.fetch_batch_size").expect("batch histogram recorded");
        assert_eq!(h.count, run.stats.batches, "one batch-size sample per fetch round");
        assert_eq!(h.sum, run.stats.batched_keys, "batch sizes sum to the batched keys");
        assert_eq!(
            polled.totals().sum,
            run.stats.polls,
            "per-tick polled series sums to the poll counter"
        );

        // The unobserved path is byte-identical: same rows, same stats.
        let tasks: Vec<CountTask> = (1..=6).map(|i| counting(i, Some(i % 2))).collect();
        let plain = run_tasks(tasks, 5, |_plan: &BatchPlan<u32>| {});
        let rows = |r: &CohortRun<u32>| -> Vec<Option<std::result::Result<u32, String>>> {
            r.rows.clone()
        };
        assert_eq!(rows(&plain), rows(&run));
        assert_eq!(plain.stats, run.stats);
    }

    #[test]
    fn executor_shuffle_is_a_permutation() {
        let mut q: Vec<usize> = (0..97).collect();
        shuffle_queue(&mut q, 0xfeed, 12);
        let mut sorted = q.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..97).collect::<Vec<_>>());
        // Identical (seed, tick) reproduces the permutation; a
        // different tick permutes differently.
        let mut q2: Vec<usize> = (0..97).collect();
        shuffle_queue(&mut q2, 0xfeed, 12);
        assert_eq!(q, q2);
        let mut q3: Vec<usize> = (0..97).collect();
        shuffle_queue(&mut q3, 0xfeed, 13);
        assert_ne!(q, q3);
    }
}
