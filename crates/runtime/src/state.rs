//! Game state and its script-environment binding.

use std::collections::{BTreeMap, BTreeSet};

use vgbl_script::env::expect_arity;
use vgbl_script::{Env, ScriptError, Value};

use crate::inventory::Inventory;

/// Mutable per-session game state (everything outside the backpack).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GameState {
    /// Named boolean flags set by `flag … on|off` actions.
    pub flags: BTreeMap<String, bool>,
    /// The score accumulated through `score` actions (§3.3 bonuses).
    pub score: i64,
    /// Names of scenarios the player has entered at least once.
    pub visited: BTreeSet<String>,
    /// Names of objects the player has examined (clicked).
    pub examined: BTreeSet<String>,
    /// The scenario the player is currently in.
    pub current_scenario: String,
    /// Milliseconds since the current scenario was entered.
    pub scenario_clock_ms: u64,
    /// Total session play time in milliseconds.
    pub total_clock_ms: u64,
    /// `Some(outcome)` once an `end` action ran.
    pub ended: Option<String>,
    /// Avatar position on the frame ("users can manipulate the avatar in
    /// a game scenario", §4.3).
    pub avatar: (i32, i32),
}

impl GameState {
    /// Fresh state, positioned at `start` scenario.
    pub fn new(start: impl Into<String>) -> GameState {
        let start = start.into();
        let mut visited = BTreeSet::new();
        visited.insert(start.clone());
        GameState { current_scenario: start, visited, ..GameState::default() }
    }

    /// Reads a flag; unset flags read as `false`.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.get(name).copied().unwrap_or(false)
    }

    /// Sets a flag.
    pub fn set_flag(&mut self, name: impl Into<String>, on: bool) {
        self.flags.insert(name.into(), on);
    }

    /// Whether the game is over.
    pub fn is_over(&self) -> bool {
        self.ended.is_some()
    }
}

/// The [`Env`] the runtime exposes to trigger conditions.
///
/// Variables: `score` (int).
/// Functions (all arity 1, string argument, returning bool unless noted):
/// `has(item)`, `count(item) -> int`, `flag(name)`, `visited(scenario)`,
/// `examined(object)`, `rewarded(name)`.
pub struct GameEnv<'a> {
    /// The session state.
    pub state: &'a GameState,
    /// The backpack.
    pub inventory: &'a Inventory,
}

impl Env for GameEnv<'_> {
    fn get_var(&self, name: &str) -> Option<Value> {
        match name {
            "score" => Some(Value::Int(self.state.score)),
            _ => None,
        }
    }

    fn call(&self, name: &str, args: &[Value]) -> vgbl_script::Result<Value> {
        match name {
            "has" => {
                expect_arity(name, args, 1)?;
                Ok(Value::Bool(self.inventory.has(args[0].as_str()?)))
            }
            "count" => {
                expect_arity(name, args, 1)?;
                Ok(Value::Int(self.inventory.count(args[0].as_str()?) as i64))
            }
            "flag" => {
                expect_arity(name, args, 1)?;
                Ok(Value::Bool(self.state.flag(args[0].as_str()?)))
            }
            "visited" => {
                expect_arity(name, args, 1)?;
                Ok(Value::Bool(self.state.visited.contains(args[0].as_str()?)))
            }
            "examined" => {
                expect_arity(name, args, 1)?;
                Ok(Value::Bool(self.state.examined.contains(args[0].as_str()?)))
            }
            "rewarded" => {
                expect_arity(name, args, 1)?;
                Ok(Value::Bool(self.inventory.has_reward(args[0].as_str()?)))
            }
            other => Err(ScriptError::UnknownFunction(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgbl_script::eval_str;

    fn setup() -> (GameState, Inventory) {
        let mut state = GameState::new("classroom");
        state.score = 7;
        state.set_flag("fixed", true);
        state.examined.insert("computer".into());
        let mut inv = Inventory::new();
        inv.add("ram");
        inv.add("ram");
        inv.award("medic");
        (state, inv)
    }

    #[test]
    fn new_state_visits_start() {
        let s = GameState::new("intro");
        assert_eq!(s.current_scenario, "intro");
        assert!(s.visited.contains("intro"));
        assert!(!s.is_over());
        assert_eq!(s.score, 0);
    }

    #[test]
    fn flags_default_false() {
        let mut s = GameState::new("x");
        assert!(!s.flag("nope"));
        s.set_flag("a", true);
        assert!(s.flag("a"));
        s.set_flag("a", false);
        assert!(!s.flag("a"));
    }

    #[test]
    fn env_binds_everything() {
        let (state, inventory) = setup();
        let env = GameEnv { state: &state, inventory: &inventory };
        let check = |src: &str, expected: bool| {
            assert_eq!(
                eval_str(src, &env).unwrap(),
                Value::Bool(expected),
                "expr: {src}"
            );
        };
        check("score == 7", true);
        check("has(\"ram\")", true);
        check("has(\"rom\")", false);
        check("count(\"ram\") == 2", true);
        check("flag(\"fixed\")", true);
        check("flag(\"other\")", false);
        check("visited(\"classroom\")", true);
        check("visited(\"market\")", false);
        check("examined(\"computer\")", true);
        check("examined(\"poster\")", false);
        check("rewarded(\"medic\")", true);
        check("rewarded(\"hero\")", false);
    }

    #[test]
    fn env_rejects_unknowns_and_bad_arity() {
        let (state, inventory) = setup();
        let env = GameEnv { state: &state, inventory: &inventory };
        assert!(matches!(
            eval_str("teleport()", &env),
            Err(ScriptError::UnknownFunction(_))
        ));
        assert!(matches!(
            eval_str("has()", &env),
            Err(ScriptError::ArityMismatch { .. })
        ));
        assert!(matches!(
            eval_str("has(3)", &env),
            Err(ScriptError::TypeMismatch { .. })
        ));
        assert!(matches!(
            eval_str("lives > 0", &env),
            Err(ScriptError::UnknownVariable(_))
        ));
    }

    #[test]
    fn complex_condition_like_the_paper_example() {
        // "players install components into the computer": the fix needs
        // the part in hand and the fault diagnosed.
        let (state, inventory) = setup();
        let env = GameEnv { state: &state, inventory: &inventory };
        let v = eval_str(
            "has(\"ram\") && examined(\"computer\") && !flag(\"already_done\")",
            &env,
        )
        .unwrap();
        assert_eq!(v, Value::Bool(true));
    }
}
