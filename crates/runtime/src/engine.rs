//! The interaction engine — the paper's "runtime environment".
//!
//! A [`GameSession`] owns one player's live state over a shared
//! [`SceneGraph`]. Every [`InputEvent`] is hit-tested against the current
//! scenario's objects, matching triggers are dispatched through the
//! condition engine, and the resulting actions are executed — producing
//! [`Feedback`] for the UI and [`LogEvent`]s for the analytics.
//!
//! Default interaction semantics (on top of authored triggers):
//!
//! * clicking an `Item` with no `click` trigger pops up its description
//!   (examination, §3.1);
//! * clicking an `NpcAnchor` with no `click` trigger opens its fixed
//!   conversation (walked with [`InputEvent::Choose`]);
//! * dragging a takeable `Item` into the inventory window collects it
//!   under the object's name (§3.1), in addition to any `drag` triggers;
//! * clicking empty video walks the avatar.

use std::collections::BTreeSet;
use std::sync::Arc;

use vgbl_obs::{Counter, Obs};
use vgbl_scene::validate::validate;
use vgbl_scene::{ObjectKind, Rect, SceneGraph, Scenario};
use vgbl_script::{Action, EventKind, TriggerSet};

use crate::analytics::{LogEvent, SessionLog};
use crate::error::RuntimeError;
use crate::feedback::Feedback;
use crate::input::InputEvent;
use crate::inventory::Inventory;
use crate::save::SaveGame;
use crate::state::{GameEnv, GameState};
use crate::Result;

/// Most scenario transitions one input may cause before the engine calls
/// it an authoring loop.
const MAX_HOPS: usize = 8;

/// Static configuration of a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionConfig {
    /// Video frame size `(width, height)` in pixels.
    pub frame_size: (u32, u32),
    /// The inventory window's region: drags ending here collect items.
    pub inventory_window: Rect,
    /// Validate the graph on session start (recommended; benches may
    /// disable it to isolate dispatch cost).
    pub validate_on_start: bool,
    /// Adventure-style reach: when set, the avatar must be within this
    /// many pixels of an object to interact with it — clicking something
    /// out of reach walks the avatar toward it instead ("users can
    /// manipulate the avatar in a game scenario", §4.3). `None` (the
    /// default) is classic point-and-click.
    pub reach: Option<u32>,
}

impl SessionConfig {
    /// A config for the given frame size with the inventory window
    /// docked to the right quarter of the frame, like Figure 2.
    pub fn for_frame(width: u32, height: u32) -> SessionConfig {
        let win_w = (width / 4).max(1);
        SessionConfig {
            frame_size: (width, height),
            inventory_window: Rect::new((width - win_w) as i32, 0, win_w, height),
            validate_on_start: true,
            reach: None,
        }
    }

    /// The same config with adventure-style reach enabled.
    pub fn with_reach(mut self, reach: u32) -> SessionConfig {
        self.reach = Some(reach);
        self
    }
}

/// Engine-side observability counters (all noop until
/// [`GameSession::set_obs`] attaches real handles). Kept separate from
/// the analytics [`SessionLog`] on purpose: the log is gameplay data,
/// these count engine work.
#[derive(Debug, Clone, Default)]
struct EngObs {
    /// Input events accepted by [`GameSession::handle`].
    inputs: Counter,
    /// Trigger-set dispatches (per object or entry set consulted).
    dispatches: Counter,
    /// Actions actually executed by the engine.
    actions: Counter,
    /// Scenario transitions performed.
    scenario_changes: Counter,
}

/// An active NPC conversation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DialogueState {
    /// The NPC being talked to.
    pub npc: String,
    /// The current node in the NPC's dialogue tree.
    pub node: u32,
}

/// One player's live session.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use vgbl_runtime::engine::{GameSession, SessionConfig};
/// use vgbl_runtime::fixtures::{fix_the_computer, FRAME};
/// use vgbl_runtime::input::InputEvent;
///
/// let (mut session, _entry_feedback) = GameSession::new(
///     Arc::new(fix_the_computer()),
///     SessionConfig::for_frame(FRAME.0, FRAME.1),
/// )
/// .unwrap();
///
/// // Examine the computer: its authored click trigger diagnoses the fault.
/// session.handle(InputEvent::click(25, 20)).unwrap();
/// assert!(session.state().flag("diagnosed"));
/// assert_eq!(session.state().score, 5);
/// ```
#[derive(Debug, Clone)]
pub struct GameSession {
    graph: Arc<SceneGraph>,
    config: SessionConfig,
    state: GameState,
    inventory: Inventory,
    log: SessionLog,
    /// Timer thresholds already fired since the current scenario entry.
    fired_timers: BTreeSet<u64>,
    /// The conversation in progress, if any (transient: not saved).
    dialogue: Option<DialogueState>,
    obs: EngObs,
}

impl GameSession {
    /// Starts a session at the graph's start scenario, firing its entry
    /// triggers.
    ///
    /// # Errors
    /// [`RuntimeError::UnplayableGame`] when validation finds errors.
    pub fn new(graph: Arc<SceneGraph>, config: SessionConfig) -> Result<(GameSession, Vec<Feedback>)> {
        if config.validate_on_start {
            let report = validate(&graph, Some(config.frame_size));
            if !report.is_playable() {
                let msgs: Vec<String> = report.errors().map(|e| e.to_string()).collect();
                return Err(RuntimeError::UnplayableGame(msgs.join("; ")));
            }
        }
        let start_id = graph.start()?;
        let start_name = graph
            .scenario(start_id)
            .expect("start id is valid")
            .name
            .clone();
        let mut session = GameSession {
            graph,
            config,
            state: GameState::new(start_name.clone()),
            inventory: Inventory::new(),
            log: SessionLog::new(),
            fired_timers: BTreeSet::new(),
            dialogue: None,
            obs: EngObs::default(),
        };
        session.log.push(LogEvent::ScenarioEntered { t_ms: 0, name: start_name });
        let mut feedback = Vec::new();
        let actions = session.collect_scenario_event(&EventKind::Enter)?;
        session.run_actions(actions, &mut feedback, 0)?;
        Ok((session, feedback))
    }

    /// Restores a session from previously saved state (no entry triggers
    /// fire — the player resumes mid-scenario).
    pub fn restore(
        graph: Arc<SceneGraph>,
        config: SessionConfig,
        state: GameState,
        inventory: Inventory,
    ) -> Result<GameSession> {
        graph.require_scenario(&state.current_scenario)?;
        Ok(GameSession {
            graph,
            config,
            state,
            inventory,
            log: SessionLog::new(),
            fired_timers: BTreeSet::new(),
            dialogue: None,
            obs: EngObs::default(),
        })
    }

    /// Snapshots everything needed to resume this session bit-exactly:
    /// a [`SaveGame`] capture plus the engine transients a plain save
    /// deliberately drops (the open dialogue and the timers already
    /// fired this scenario entry). The supervisor's checkpoint store
    /// holds these.
    pub fn checkpoint(&self) -> SaveGame {
        let mut save = SaveGame::capture(&self.graph, &self.state, &self.inventory);
        save.dialogue = self.dialogue.as_ref().map(|d| (d.npc.clone(), d.node));
        save.fired_timers = self.fired_timers.clone();
        save
    }

    /// Restores a session from a checkpoint, reinstating the engine
    /// transients [`GameSession::restore`] clears: an open dialogue
    /// resumes at its node, and fired timers stay fired instead of
    /// firing twice. The restored session's log starts empty — replaying
    /// the post-checkpoint inputs reproduces the original log tail
    /// bit-identically.
    ///
    /// # Errors
    /// [`RuntimeError::SaveMismatch`] when the checkpoint belongs to a
    /// different graph; [`RuntimeError::UnknownScenario`] when its
    /// scenario no longer exists.
    pub fn restore_checkpoint(
        graph: Arc<SceneGraph>,
        config: SessionConfig,
        save: &SaveGame,
    ) -> Result<GameSession> {
        save.verify(&graph)?;
        let mut session =
            GameSession::restore(graph, config, save.state.clone(), save.inventory.clone())?;
        session.fired_timers = save.fired_timers.clone();
        session.dialogue = save
            .dialogue
            .as_ref()
            .map(|(npc, node)| DialogueState { npc: npc.clone(), node: *node });
        Ok(session)
    }

    /// Routes engine counters (`engine.inputs` / `engine.dispatches` /
    /// `engine.actions` / `engine.scenario_changes`, labelled
    /// `pillar=runtime`) into `obs`. A [`Obs::noop`] handle (the
    /// default) makes every increment a single `Option` check.
    pub fn set_obs(&mut self, obs: &Obs) {
        let labels: &[(&str, &str)] = &[("pillar", "runtime")];
        self.obs = EngObs {
            inputs: obs.counter("engine.inputs", labels),
            dispatches: obs.counter("engine.dispatches", labels),
            actions: obs.counter("engine.actions", labels),
            scenario_changes: obs.counter("engine.scenario_changes", labels),
        };
    }

    /// The shared content graph.
    pub fn graph(&self) -> &SceneGraph {
        &self.graph
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Current game state (read-only).
    pub fn state(&self) -> &GameState {
        &self.state
    }

    /// The backpack (read-only).
    pub fn inventory(&self) -> &Inventory {
        &self.inventory
    }

    /// The analytics log so far.
    pub fn log(&self) -> &SessionLog {
        &self.log
    }

    /// The scenario the player is currently in.
    pub fn current_scenario(&self) -> &Scenario {
        self.graph
            .scenario_by_name(&self.state.current_scenario)
            .expect("current scenario always valid")
    }

    /// The currently visible objects, in authoring order — what a player
    /// (or a bot) can actually see and interact with.
    pub fn visible_objects(&self) -> Result<Vec<&vgbl_scene::InteractiveObject>> {
        let env = self.env();
        let mut out = Vec::new();
        for o in self.current_scenario().objects() {
            if o.is_visible(&env)? {
                out.push(o);
            }
        }
        Ok(out)
    }

    /// Handles one input event, returning the ordered feedback.
    ///
    /// # Errors
    /// [`RuntimeError::GameOver`] once the game ended; script/scene errors
    /// from authored conditions propagate.
    pub fn handle(&mut self, input: InputEvent) -> Result<Vec<Feedback>> {
        if let Some(outcome) = &self.state.ended {
            return Err(RuntimeError::GameOver { outcome: outcome.clone() });
        }
        self.obs.inputs.inc();
        if input.is_decision() {
            self.log.push(LogEvent::Decision {
                t_ms: self.state.total_clock_ms,
                kind: input.tag().to_owned(),
            });
        }
        let mut feedback = Vec::new();
        // A conversation absorbs `Choose` and is politely dropped by any
        // other decision input; time keeps flowing through it.
        if self.dialogue.is_some() {
            match &input {
                InputEvent::Choose(i) => {
                    self.on_choose(*i, &mut feedback)?;
                    if feedback.is_empty() {
                        feedback.push(Feedback::NothingHappened);
                    }
                    return Ok(feedback);
                }
                InputEvent::Tick(_) => {}
                _ => {
                    self.dialogue = None;
                    feedback.push(Feedback::DialogueEnded);
                }
            }
        }
        match input {
            InputEvent::Click(p) => self.on_click(p, &mut feedback)?,
            InputEvent::Drag { from, to } => self.on_drag(from, to, &mut feedback)?,
            InputEvent::ApplyItem { item, at } => self.on_apply(&item, at, &mut feedback)?,
            InputEvent::Key(c) => self.on_key(c, &mut feedback)?,
            InputEvent::Choose(_) => {} // no conversation: inert
            InputEvent::Tick(ms) => self.on_tick(ms, &mut feedback)?,
        }
        if feedback.is_empty() {
            feedback.push(Feedback::NothingHappened);
        }
        Ok(feedback)
    }

    /// The active conversation, if any.
    pub fn dialogue(&self) -> Option<&DialogueState> {
        self.dialogue.as_ref()
    }

    /// The response options currently offered (empty when not talking).
    pub fn dialogue_choices(&self) -> Vec<String> {
        match &self.dialogue {
            Some(d) => self
                .graph
                .npc(&d.npc)
                .and_then(|n| n.dialogue.get(d.node))
                .map(|node| node.choices.iter().map(|c| c.text.clone()).collect())
                .unwrap_or_default(),
            None => Vec::new(),
        }
    }

    /// Speaks the node the dialogue cursor points at and either offers
    /// its choices or ends the conversation at a leaf.
    fn speak_current_node(&mut self, feedback: &mut Vec<Feedback>) {
        let Some(d) = self.dialogue.clone() else {
            return;
        };
        let Some(node) = self.graph.npc(&d.npc).and_then(|n| n.dialogue.get(d.node)).cloned()
        else {
            self.dialogue = None;
            feedback.push(Feedback::DialogueEnded);
            return;
        };
        self.log.push(LogEvent::NpcTalked {
            t_ms: self.state.total_clock_ms,
            npc: d.npc.clone(),
        });
        feedback.push(Feedback::NpcLine { npc: d.npc.clone(), line: node.line.clone() });
        if node.choices.is_empty() {
            self.dialogue = None;
            feedback.push(Feedback::DialogueEnded);
        } else {
            feedback.push(Feedback::DialogueChoices(
                node.choices.iter().map(|c| c.text.clone()).collect(),
            ));
        }
    }

    fn on_choose(&mut self, index: usize, feedback: &mut Vec<Feedback>) -> Result<()> {
        let Some(d) = self.dialogue.clone() else {
            return Ok(());
        };
        let node = self
            .graph
            .npc(&d.npc)
            .and_then(|n| n.dialogue.get(d.node))
            .cloned();
        let Some(node) = node else {
            self.dialogue = None;
            feedback.push(Feedback::DialogueEnded);
            return Ok(());
        };
        let Some(choice) = node.choices.get(index) else {
            // Out-of-range pick: re-offer the same options.
            feedback.push(Feedback::DialogueChoices(
                node.choices.iter().map(|c| c.text.clone()).collect(),
            ));
            return Ok(());
        };
        match choice.next {
            Some(next) => {
                self.dialogue = Some(DialogueState { npc: d.npc, node: next });
                self.speak_current_node(feedback);
            }
            None => {
                self.dialogue = None;
                feedback.push(Feedback::DialogueEnded);
            }
        }
        Ok(())
    }

    fn env(&self) -> GameEnv<'_> {
        GameEnv { state: &self.state, inventory: &self.inventory }
    }

    /// Whether the avatar can currently reach an object with the given
    /// bounds (always true in classic point-and-click mode).
    fn within_reach(&self, bounds: &Rect) -> bool {
        match self.config.reach {
            None => true,
            Some(r) => {
                let (ax, ay) = self.state.avatar;
                let c = bounds.center();
                let dx = (ax - c.x) as i64;
                let dy = (ay - c.y) as i64;
                dx * dx + dy * dy <= (r as i64) * (r as i64)
            }
        }
    }

    /// Walks the avatar to `p` (the out-of-reach and empty-click cases).
    fn walk_avatar(&mut self, p: vgbl_scene::Point, feedback: &mut Vec<Feedback>) {
        self.state.avatar = (p.x, p.y);
        feedback.push(Feedback::AvatarMoved { x: p.x, y: p.y });
    }

    fn on_click(&mut self, p: vgbl_scene::Point, feedback: &mut Vec<Feedback>) -> Result<()> {
        let scenario = self.current_scenario();
        let hit = scenario.topmost_at(p, &self.env())?.map(|o| o.id);
        match hit {
            None => {
                self.walk_avatar(p, feedback);
            }
            Some(oid) => {
                let scenario = self.current_scenario();
                let object = scenario.object(oid).expect("hit id valid");
                if !self.within_reach(&object.bounds) {
                    // Out of reach: walk toward it first.
                    self.walk_avatar(p, feedback);
                    return Ok(());
                }
                let obj_name = object.name.clone();
                let had_click_trigger = object.listens_for(&EventKind::Click);
                let mut default_text: Option<String> = None;
                let mut start_dialogue: Option<String> = None;
                match &object.kind {
                    ObjectKind::Item { description, .. } if !had_click_trigger => {
                        default_text = Some(description.clone());
                    }
                    ObjectKind::NpcAnchor { npc } if !had_click_trigger
                        // Start (or restart) the fixed conversation.
                        && self.graph.npc(npc).is_some_and(|n| !n.dialogue.is_empty()) => {
                            start_dialogue = Some(npc.clone());
                        }
                    _ => {}
                }
                self.obs.dispatches.inc();
                let actions = object.triggers.dispatch(&EventKind::Click, &self.env())?;

                self.state.examined.insert(obj_name.clone());
                self.log.push(LogEvent::ObjectExamined {
                    t_ms: self.state.total_clock_ms,
                    scenario: self.state.current_scenario.clone(),
                    object: obj_name,
                });
                if let Some(text) = default_text {
                    self.log.push(LogEvent::KnowledgeDelivered {
                        t_ms: self.state.total_clock_ms,
                        kind: "text".into(),
                    });
                    feedback.push(Feedback::Text(text));
                }
                if let Some(npc) = start_dialogue {
                    self.dialogue = Some(DialogueState { npc, node: 0 });
                    self.speak_current_node(feedback);
                }
                self.run_actions(actions, feedback, 0)?;
            }
        }
        Ok(())
    }

    fn on_drag(
        &mut self,
        from: vgbl_scene::Point,
        to: vgbl_scene::Point,
        feedback: &mut Vec<Feedback>,
    ) -> Result<()> {
        let scenario = self.current_scenario();
        let hit = scenario.topmost_at(from, &self.env())?.map(|o| o.id);
        let Some(oid) = hit else {
            return Ok(());
        };
        let object = self.current_scenario().object(oid).expect("hit id valid");
        if !self.within_reach(&object.bounds) {
            self.walk_avatar(from, feedback);
            return Ok(());
        }
        let object = self.current_scenario().object(oid).expect("hit id valid");
        let obj_name = object.name.clone();
        let takeable = object.is_takeable();
        self.obs.dispatches.inc();
        let actions = object.triggers.dispatch(&EventKind::Drag, &self.env())?;

        if self.config.inventory_window.contains(to) && takeable {
            self.inventory.add(obj_name.clone());
            self.log.push(LogEvent::ItemTaken {
                t_ms: self.state.total_clock_ms,
                item: obj_name.clone(),
            });
            feedback.push(Feedback::ItemAdded(obj_name));
        }
        self.run_actions(actions, feedback, 0)?;
        Ok(())
    }

    fn on_apply(
        &mut self,
        item: &str,
        at: vgbl_scene::Point,
        feedback: &mut Vec<Feedback>,
    ) -> Result<()> {
        if !self.inventory.has(item) {
            return Ok(());
        }
        let scenario = self.current_scenario();
        let hit = scenario.topmost_at(at, &self.env())?.map(|o| o.id);
        let Some(oid) = hit else {
            return Ok(());
        };
        let object = self.current_scenario().object(oid).expect("hit id valid");
        if !self.within_reach(&object.bounds) {
            self.walk_avatar(at, feedback);
            return Ok(());
        }
        let object = self.current_scenario().object(oid).expect("hit id valid");
        let obj_name = object.name.clone();
        let event = EventKind::Use(item.to_owned());
        self.obs.dispatches.inc();
        let actions = object.triggers.dispatch(&event, &self.env())?;
        if !actions.is_empty() {
            self.log.push(LogEvent::ItemUsed {
                t_ms: self.state.total_clock_ms,
                item: item.to_owned(),
                object: obj_name,
            });
        }
        self.run_actions(actions, feedback, 0)?;
        Ok(())
    }

    fn on_key(&mut self, c: char, feedback: &mut Vec<Feedback>) -> Result<()> {
        // Keyboard events are scenario-global: every visible object that
        // listens receives them, in draw (z) order.
        let event = EventKind::Key(c);
        let scenario = self.current_scenario();
        let mut all_actions = Vec::new();
        {
            let env = self.env();
            for object in scenario.draw_order() {
                if object.is_visible(&env)? {
                    self.obs.dispatches.inc();
                    all_actions.extend(object.triggers.dispatch(&event, &env)?);
                }
            }
            self.obs.dispatches.inc();
            all_actions.extend(scenario.entry_triggers.dispatch(&event, &env)?);
        }
        self.run_actions(all_actions, feedback, 0)?;
        Ok(())
    }

    fn on_tick(&mut self, ms: u64, feedback: &mut Vec<Feedback>) -> Result<()> {
        let old = self.state.scenario_clock_ms;
        let new = old.saturating_add(ms);
        self.state.scenario_clock_ms = new;
        self.state.total_clock_ms = self.state.total_clock_ms.saturating_add(ms);

        // Collect timer thresholds crossed by this tick, ascending.
        let mut thresholds: Vec<u64> = Vec::new();
        let scenario_name;
        {
            let scenario = self.current_scenario();
            scenario_name = scenario.name.clone();
            let fired = &self.fired_timers;
            let mut scan = |set: &TriggerSet| {
                for t in set.triggers() {
                    if let EventKind::Timer(th) = t.event {
                        if th > old && th <= new && !fired.contains(&th) {
                            thresholds.push(th);
                        }
                    }
                }
            };
            scan(&scenario.entry_triggers);
            for o in scenario.objects() {
                scan(&o.triggers);
            }
        }
        thresholds.sort_unstable();
        thresholds.dedup();

        for th in thresholds {
            // Re-check the scenario each round: a timer's goto may move us.
            if self.state.current_scenario != scenario_name {
                break;
            }
            self.fired_timers.insert(th);
            let actions = self.collect_scenario_event(&EventKind::Timer(th))?;
            self.run_actions(actions, feedback, 0)?;
            if self.state.is_over() {
                break;
            }
        }
        Ok(())
    }

    /// Dispatches a scenario-wide event (Enter / Timer) across the entry
    /// trigger set and every object's triggers.
    fn collect_scenario_event(&self, event: &EventKind) -> Result<Vec<Action>> {
        let scenario = self.current_scenario();
        let env = self.env();
        self.obs.dispatches.inc();
        let mut actions = scenario.entry_triggers.dispatch(event, &env)?;
        for o in scenario.objects() {
            self.obs.dispatches.inc();
            actions.extend(o.triggers.dispatch(event, &env)?);
        }
        Ok(actions)
    }

    /// Executes actions in order. `hops` counts scenario transitions in
    /// the current input-handling chain.
    fn run_actions(
        &mut self,
        actions: Vec<Action>,
        feedback: &mut Vec<Feedback>,
        hops: usize,
    ) -> Result<()> {
        for action in actions {
            if self.state.is_over() {
                break;
            }
            self.obs.actions.inc();
            match action {
                Action::GoTo(target) => {
                    self.enter_scenario(&target, feedback, hops + 1)?;
                }
                Action::ShowText(text) => {
                    self.log.push(LogEvent::KnowledgeDelivered {
                        t_ms: self.state.total_clock_ms,
                        kind: "text".into(),
                    });
                    feedback.push(Feedback::Text(text));
                }
                Action::ShowImage(asset) => {
                    self.log.push(LogEvent::KnowledgeDelivered {
                        t_ms: self.state.total_clock_ms,
                        kind: "image".into(),
                    });
                    feedback.push(Feedback::Image(asset));
                }
                Action::OpenUrl(url) => {
                    self.log.push(LogEvent::KnowledgeDelivered {
                        t_ms: self.state.total_clock_ms,
                        kind: "web".into(),
                    });
                    feedback.push(Feedback::WebPage(url));
                }
                Action::GiveItem(item) => {
                    self.inventory.add(item.clone());
                    self.log.push(LogEvent::ItemTaken {
                        t_ms: self.state.total_clock_ms,
                        item: item.clone(),
                    });
                    feedback.push(Feedback::ItemAdded(item));
                }
                Action::TakeItem(item) => {
                    if self.inventory.remove(&item) {
                        feedback.push(Feedback::ItemRemoved(item));
                    }
                }
                Action::SetFlag(name, on) => {
                    self.state.set_flag(name, on);
                }
                Action::AddScore(delta) => {
                    self.state.score = self.state.score.saturating_add(delta);
                    self.log.push(LogEvent::ScoreDelta {
                        t_ms: self.state.total_clock_ms,
                        delta,
                    });
                    feedback.push(Feedback::ScoreChanged { delta, total: self.state.score });
                }
                Action::Award(name) => {
                    if self.inventory.award(name.clone()) {
                        self.log.push(LogEvent::RewardEarned {
                            t_ms: self.state.total_clock_ms,
                            name: name.clone(),
                        });
                        feedback.push(Feedback::RewardGranted(name));
                    }
                }
                Action::Say { npc, line } => {
                    self.log.push(LogEvent::NpcTalked {
                        t_ms: self.state.total_clock_ms,
                        npc: npc.clone(),
                    });
                    feedback.push(Feedback::NpcLine { npc, line });
                }
                Action::End(outcome) => {
                    self.state.ended = Some(outcome.clone());
                    self.log.push(LogEvent::Ended {
                        t_ms: self.state.total_clock_ms,
                        outcome: outcome.clone(),
                    });
                    feedback.push(Feedback::GameEnded(outcome));
                }
            }
        }
        Ok(())
    }

    /// Switches the current scenario, firing entry triggers.
    fn enter_scenario(
        &mut self,
        target: &str,
        feedback: &mut Vec<Feedback>,
        hops: usize,
    ) -> Result<()> {
        if hops > MAX_HOPS {
            return Err(RuntimeError::TransitionLoop { at: target.to_owned() });
        }
        if self.graph.scenario_by_name(target).is_none() {
            return Err(RuntimeError::UnknownScenario(target.to_owned()));
        }
        self.obs.scenario_changes.inc();
        let from = std::mem::replace(&mut self.state.current_scenario, target.to_owned());
        self.state.visited.insert(target.to_owned());
        self.state.scenario_clock_ms = 0;
        self.fired_timers.clear();
        self.dialogue = None; // walking away ends any conversation
        self.log.push(LogEvent::ScenarioEntered {
            t_ms: self.state.total_clock_ms,
            name: target.to_owned(),
        });
        feedback.push(Feedback::ScenarioChanged { from, to: target.to_owned() });
        let actions = self.collect_scenario_event(&EventKind::Enter)?;
        self.run_actions(actions, feedback, hops)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{fix_the_computer, two_room_loop, FRAME};
    use vgbl_media::SegmentId;
    use vgbl_script::Trigger;

    fn start(graph: SceneGraph) -> (GameSession, Vec<Feedback>) {
        GameSession::new(
            Arc::new(graph),
            SessionConfig::for_frame(FRAME.0, FRAME.1),
        )
        .unwrap()
    }

    #[test]
    fn session_starts_at_start_scenario_and_fires_entry() {
        let (session, feedback) = start(fix_the_computer());
        assert_eq!(session.state().current_scenario, "classroom");
        // The greeting entry trigger fired exactly once.
        assert!(feedback.iter().any(|f| matches!(
            f,
            Feedback::NpcLine { npc, .. } if npc == "teacher"
        )));
        assert!(session.state().flag("greeted"));
    }

    #[test]
    fn unplayable_game_rejected() {
        let mut g = two_room_loop();
        g.scenario_by_name_mut("a")
            .unwrap()
            .entry_triggers
            .push(Trigger::unconditional(
                EventKind::Enter,
                vec![Action::GoTo("nowhere".into())],
            ));
        let err = GameSession::new(Arc::new(g), SessionConfig::for_frame(64, 48)).unwrap_err();
        assert!(matches!(err, RuntimeError::UnplayableGame(_)));
    }

    #[test]
    fn click_on_nothing_moves_avatar() {
        let (mut session, _) = start(fix_the_computer());
        let fb = session.handle(InputEvent::click(60, 45)).unwrap();
        assert_eq!(fb, vec![Feedback::AvatarMoved { x: 60, y: 45 }]);
        assert_eq!(session.state().avatar, (60, 45));
    }

    #[test]
    fn click_examines_item_with_authored_trigger() {
        let (mut session, _) = start(fix_the_computer());
        // The computer sits at (20,16)-(36,28).
        let fb = session.handle(InputEvent::click(25, 20)).unwrap();
        assert!(fb.iter().any(|f| matches!(f, Feedback::Text(t) if t.contains("cooling fan"))));
        assert!(fb.iter().any(|f| matches!(f, Feedback::ScoreChanged { delta: 5, total: 5 })));
        assert!(session.state().flag("diagnosed"));
        assert!(session.state().examined.contains("computer"));
        // Second click hits the "needs replacement" branch.
        let fb = session.handle(InputEvent::click(25, 20)).unwrap();
        assert!(fb.iter().any(|f| matches!(f, Feedback::Text(t) if t.contains("replacement"))));
        assert_eq!(session.state().score, 5); // no double score
    }

    #[test]
    fn click_npc_walks_dialogue_entry() {
        let (mut session, _) = start(fix_the_computer());
        let fb = session.handle(InputEvent::click(5, 10)).unwrap();
        assert!(fb.iter().any(|f| matches!(
            f,
            Feedback::NpcLine { npc, line } if npc == "teacher" && line.contains("not working")
        )));
    }

    #[test]
    fn full_playthrough_of_the_paper_example() {
        let (mut session, _) = start(fix_the_computer());
        // 1. Examine the computer → diagnose.
        session.handle(InputEvent::click(25, 20)).unwrap();
        // 2. Go to the market.
        let fb = session.handle(InputEvent::click(42, 4)).unwrap();
        assert!(fb.contains(&Feedback::ScenarioChanged {
            from: "classroom".into(),
            to: "market".into()
        }));
        assert_eq!(session.state().current_scenario, "market");
        // 3. Drag the fan into the inventory window (right quarter).
        let fb = session.handle(InputEvent::drag(12, 12, 60, 20)).unwrap();
        assert!(fb.contains(&Feedback::ItemAdded("fan".into())));
        assert!(session.inventory().has("fan"));
        // The stall is now empty (visibility condition) — clicking there
        // moves the avatar instead.
        let fb = session.handle(InputEvent::click(12, 12)).unwrap();
        assert_eq!(fb, vec![Feedback::AvatarMoved { x: 12, y: 12 }]);
        // 4. Back to the classroom.
        session.handle(InputEvent::click(42, 4)).unwrap();
        assert_eq!(session.state().current_scenario, "classroom");
        // 5. Apply the fan to the computer.
        let fb = session.handle(InputEvent::apply("fan", 25, 20)).unwrap();
        assert!(fb.iter().any(|f| matches!(f, Feedback::Text(t) if t.contains("boots"))));
        assert!(fb.contains(&Feedback::ItemRemoved("fan".into())));
        assert!(fb.contains(&Feedback::RewardGranted("computer_medic".into())));
        assert!(fb.contains(&Feedback::GameEnded("fixed".into())));
        assert_eq!(session.state().score, 25);
        assert!(session.inventory().has_reward("computer_medic"));
        assert!(!session.inventory().has("fan"));
        assert_eq!(session.state().ended.as_deref(), Some("fixed"));
        // Analytics recorded the journey.
        let log = session.log();
        assert_eq!(log.outcome(), Some("fixed"));
        assert!(log.decisions() >= 5);
        assert!(log.rewards() == 1);
        // 6. Input after the end is rejected.
        assert!(matches!(
            session.handle(InputEvent::click(0, 0)),
            Err(RuntimeError::GameOver { .. })
        ));
    }

    #[test]
    fn obs_engine_counters_track_the_playthrough() {
        let obs = Obs::recording();
        let (mut session, _) = start(fix_the_computer());
        session.set_obs(&obs);
        session.handle(InputEvent::click(25, 20)).unwrap(); // diagnose
        session.handle(InputEvent::click(42, 4)).unwrap(); // market
        session.handle(InputEvent::drag(12, 12, 60, 20)).unwrap(); // take fan
        session.handle(InputEvent::click(42, 4)).unwrap(); // back
        session.handle(InputEvent::apply("fan", 25, 20)).unwrap(); // fix → end
        let snap = obs.snapshot();
        assert_eq!(snap.counter_total("engine.inputs"), 5);
        // Two door clicks + two scenario-entry dispatch rounds.
        assert_eq!(snap.counter_total("engine.scenario_changes"), 2);
        // Every transition re-dispatches Enter across the scenario, so
        // dispatches strictly exceed inputs.
        assert!(snap.counter_total("engine.dispatches") > 5);
        // Diagnose (text+flag+score), two gotos, drag text, and the
        // final fix chain all execute actions.
        assert!(snap.counter_total("engine.actions") >= 8);
        // A session without set_obs contributes nothing: counters are
        // exactly the five inputs above, not doubled by `start`'s Enter.
        let (mut silent, _) = start(fix_the_computer());
        silent.handle(InputEvent::click(25, 20)).unwrap();
        assert_eq!(obs.snapshot().counter_total("engine.inputs"), 5);
    }

    #[test]
    fn apply_without_item_or_wrong_place_is_inert() {
        let (mut session, _) = start(fix_the_computer());
        let fb = session.handle(InputEvent::apply("fan", 25, 20)).unwrap();
        assert_eq!(fb, vec![Feedback::NothingHappened]);
        // Apply before diagnosis shows the hint branch.
        session.handle(InputEvent::click(42, 4)).unwrap(); // market
        session.handle(InputEvent::drag(12, 12, 60, 20)).unwrap(); // take fan
        session.handle(InputEvent::click(42, 4)).unwrap(); // back
        let fb = session.handle(InputEvent::apply("fan", 25, 20)).unwrap();
        assert!(fb.iter().any(|f| matches!(f, Feedback::Text(t) if t.contains("Examine"))));
        assert!(session.inventory().has("fan")); // not consumed
    }

    #[test]
    fn drag_nontakeable_to_inventory_does_not_collect() {
        let (mut session, _) = start(fix_the_computer());
        let fb = session.handle(InputEvent::drag(25, 20, 60, 20)).unwrap();
        assert_eq!(fb, vec![Feedback::NothingHappened]);
        assert!(!session.inventory().has("computer"));
    }

    #[test]
    fn drag_to_non_inventory_region_does_not_collect() {
        let (mut session, _) = start(fix_the_computer());
        session.handle(InputEvent::click(42, 4)).unwrap(); // market
        let fb = session.handle(InputEvent::drag(12, 12, 30, 30)).unwrap();
        assert!(!fb.contains(&Feedback::ItemAdded("fan".into())));
        // But the drag trigger still ran (the pick-up text is authored on
        // drag regardless of destination).
        assert!(fb.iter().any(|f| matches!(f, Feedback::Text(_))));
        assert!(!session.inventory().has("fan"));
    }

    #[test]
    fn button_opens_web_page() {
        let (mut session, _) = start(fix_the_computer());
        session.handle(InputEvent::click(42, 4)).unwrap(); // market
        let fb = session.handle(InputEvent::click(28, 12)).unwrap();
        assert!(fb.iter().any(|f| matches!(f, Feedback::WebPage(u) if u.contains("cooling"))));
    }

    #[test]
    fn timer_triggers_fire_once_per_entry() {
        let mut g = two_room_loop();
        g.scenario_by_name_mut("a")
            .unwrap()
            .entry_triggers
            .push(Trigger::unconditional(
                EventKind::Timer(1000),
                vec![Action::ShowText("hint: press the button".into())],
            ));
        let (mut session, _) = start(g);
        // Before the threshold: nothing.
        let fb = session.handle(InputEvent::Tick(500)).unwrap();
        assert_eq!(fb, vec![Feedback::NothingHappened]);
        // Crossing the threshold fires once.
        let fb = session.handle(InputEvent::Tick(600)).unwrap();
        assert!(fb.iter().any(|f| matches!(f, Feedback::Text(t) if t.contains("hint"))));
        // Further ticks do not re-fire.
        let fb = session.handle(InputEvent::Tick(5000)).unwrap();
        assert_eq!(fb, vec![Feedback::NothingHappened]);
        // Re-entering the scenario re-arms the timer.
        session.handle(InputEvent::click(2, 2)).unwrap(); // to b
        session.handle(InputEvent::click(2, 2)).unwrap(); // back to a
        let fb = session.handle(InputEvent::Tick(1500)).unwrap();
        assert!(fb.iter().any(|f| matches!(f, Feedback::Text(t) if t.contains("hint"))));
    }

    #[test]
    fn key_events_reach_listening_objects() {
        let mut g = two_room_loop();
        let s = g.scenario_by_name_mut("a").unwrap();
        s.object_by_name_mut("to_b").unwrap().triggers.push(Trigger::unconditional(
            EventKind::Key('n'),
            vec![Action::GoTo("b".into())],
        ));
        let (mut session, _) = start(g);
        let fb = session.handle(InputEvent::Key('x')).unwrap();
        assert_eq!(fb, vec![Feedback::NothingHappened]);
        let fb = session.handle(InputEvent::Key('n')).unwrap();
        assert!(fb
            .iter()
            .any(|f| matches!(f, Feedback::ScenarioChanged { to, .. } if to == "b")));
    }

    #[test]
    fn transition_loops_are_detected() {
        let mut g = SceneGraph::new();
        let a = g.add_scenario("ping", SegmentId(0)).unwrap();
        let b = g.add_scenario("pong", SegmentId(1)).unwrap();
        g.scenario_mut(a).unwrap().entry_triggers.push(Trigger::unconditional(
            EventKind::Enter,
            vec![Action::GoTo("pong".into())],
        ));
        g.scenario_mut(b).unwrap().entry_triggers.push(Trigger::unconditional(
            EventKind::Enter,
            vec![Action::GoTo("ping".into())],
        ));
        let err = GameSession::new(
            Arc::new(g),
            SessionConfig {
                frame_size: (64, 48),
                inventory_window: Rect::new(48, 0, 16, 48),
                validate_on_start: false, // warnings only anyway; isolate the loop
                reach: None,
            },
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::TransitionLoop { .. }));
    }

    #[test]
    fn score_saturates_instead_of_overflowing() {
        let mut g = two_room_loop();
        let s = g.scenario_by_name_mut("a").unwrap();
        s.object_by_name_mut("to_b").unwrap().triggers.push(Trigger::unconditional(
            EventKind::Key('+'),
            vec![Action::AddScore(i64::MAX)],
        ));
        let (mut session, _) = start(g);
        session.handle(InputEvent::Key('+')).unwrap();
        session.handle(InputEvent::Key('+')).unwrap();
        assert_eq!(session.state().score, i64::MAX);
    }

    #[test]
    fn restore_resumes_without_entry_triggers() {
        let graph = Arc::new(fix_the_computer());
        let config = SessionConfig::for_frame(FRAME.0, FRAME.1);
        let mut state = GameState::new("market");
        state.score = 5;
        state.set_flag("diagnosed", true);
        let mut inv = Inventory::new();
        inv.add("fan");
        let mut session =
            GameSession::restore(graph.clone(), config.clone(), state, inv).unwrap();
        assert_eq!(session.state().current_scenario, "market");
        // Resume play: go back and fix.
        session.handle(InputEvent::click(42, 4)).unwrap();
        let fb = session.handle(InputEvent::apply("fan", 25, 20)).unwrap();
        assert!(fb.contains(&Feedback::GameEnded("fixed".into())));
        // Restoring into an unknown scenario fails.
        let bad = GameState::new("moon");
        assert!(GameSession::restore(graph, config, bad, Inventory::new()).is_err());
    }

    #[test]
    fn take_item_action_on_missing_item_is_silent() {
        let mut g = two_room_loop();
        let s = g.scenario_by_name_mut("a").unwrap();
        s.object_by_name_mut("to_b").unwrap().triggers.push(Trigger::unconditional(
            EventKind::Key('t'),
            vec![Action::TakeItem("ghost".into())],
        ));
        let (mut session, _) = start(g);
        let fb = session.handle(InputEvent::Key('t')).unwrap();
        assert_eq!(fb, vec![Feedback::NothingHappened]);
    }
}

#[cfg(test)]
mod dialogue_tests {
    use super::*;
    use crate::fixtures::{fix_the_computer, FRAME};

    fn start() -> GameSession {
        GameSession::new(
            Arc::new(fix_the_computer()),
            SessionConfig::for_frame(FRAME.0, FRAME.1),
        )
        .unwrap()
        .0
    }

    #[test]
    fn clicking_npc_opens_conversation_with_choices() {
        let mut s = start();
        let fb = s.handle(InputEvent::click(5, 10)).unwrap();
        assert!(fb.iter().any(|f| matches!(
            f,
            Feedback::NpcLine { npc, line } if npc == "teacher" && line.contains("not working")
        )));
        assert!(fb.iter().any(|f| matches!(
            f,
            Feedback::DialogueChoices(c) if c.len() == 2 && c[0].contains("What happened")
        )));
        assert!(s.dialogue().is_some());
        assert_eq!(s.dialogue_choices().len(), 2);
    }

    #[test]
    fn choosing_walks_the_tree_and_ends_at_leaf() {
        let mut s = start();
        s.handle(InputEvent::click(5, 10)).unwrap(); // open
        // "What happened?" → node 1.
        let fb = s.handle(InputEvent::Choose(0)).unwrap();
        assert!(fb.iter().any(|f| matches!(
            f,
            Feedback::NpcLine { line, .. } if line.contains("part inside broke")
        )));
        // "I'll take a look." → end.
        let fb = s.handle(InputEvent::Choose(0)).unwrap();
        assert!(fb.contains(&Feedback::DialogueEnded));
        assert!(s.dialogue().is_none());
        // NPC lines were all logged.
        assert!(s.log().knowledge_events() >= 2);
    }

    #[test]
    fn direct_exit_choice_ends_immediately() {
        let mut s = start();
        s.handle(InputEvent::click(5, 10)).unwrap();
        // "I'm on it." has next = None.
        let fb = s.handle(InputEvent::Choose(1)).unwrap();
        assert_eq!(fb, vec![Feedback::DialogueEnded]);
        assert!(s.dialogue().is_none());
    }

    #[test]
    fn out_of_range_choice_reoffers() {
        let mut s = start();
        s.handle(InputEvent::click(5, 10)).unwrap();
        let fb = s.handle(InputEvent::Choose(9)).unwrap();
        assert!(fb.iter().any(|f| matches!(f, Feedback::DialogueChoices(_))));
        assert!(s.dialogue().is_some());
    }

    #[test]
    fn other_input_drops_the_conversation() {
        let mut s = start();
        s.handle(InputEvent::click(5, 10)).unwrap();
        let fb = s.handle(InputEvent::click(25, 20)).unwrap(); // examine PC
        assert_eq!(fb[0], Feedback::DialogueEnded);
        assert!(s.dialogue().is_none());
        // The click itself still processed (diagnosis happened).
        assert!(s.state().flag("diagnosed"));
    }

    #[test]
    fn ticks_do_not_interrupt_conversation() {
        let mut s = start();
        s.handle(InputEvent::click(5, 10)).unwrap();
        s.handle(InputEvent::Tick(500)).unwrap();
        assert!(s.dialogue().is_some());
    }

    #[test]
    fn scenario_change_ends_conversation() {
        let mut s = start();
        s.handle(InputEvent::click(5, 10)).unwrap();
        assert!(s.dialogue().is_some());
        s.handle(InputEvent::click(42, 4)).unwrap(); // to market
        assert!(s.dialogue().is_none());
    }

    #[test]
    fn choose_without_conversation_is_inert() {
        let mut s = start();
        let fb = s.handle(InputEvent::Choose(0)).unwrap();
        assert_eq!(fb, vec![Feedback::NothingHappened]);
    }

    #[test]
    fn reopening_restarts_at_entry() {
        let mut s = start();
        s.handle(InputEvent::click(5, 10)).unwrap();
        s.handle(InputEvent::Choose(1)).unwrap(); // exit
        let fb = s.handle(InputEvent::click(5, 10)).unwrap();
        assert!(fb.iter().any(|f| matches!(
            f,
            Feedback::NpcLine { line, .. } if line.contains("not working")
        )));
    }
}

#[cfg(test)]
mod reach_tests {
    use super::*;
    use crate::fixtures::{fix_the_computer, FRAME};

    fn adventure_session() -> GameSession {
        GameSession::new(
            Arc::new(fix_the_computer()),
            SessionConfig::for_frame(FRAME.0, FRAME.1).with_reach(12),
        )
        .unwrap()
        .0
    }

    #[test]
    fn out_of_reach_click_walks_then_interacts() {
        let mut s = adventure_session();
        // Avatar starts at (0,0); the computer's centre is (28,22): far.
        let fb = s.handle(InputEvent::click(25, 20)).unwrap();
        assert_eq!(fb, vec![Feedback::AvatarMoved { x: 25, y: 20 }]);
        assert!(!s.state().flag("diagnosed"));
        // Now in reach: the same click examines.
        let fb = s.handle(InputEvent::click(25, 20)).unwrap();
        assert!(fb.iter().any(|f| matches!(f, Feedback::Text(t) if t.contains("cooling fan"))));
        assert!(s.state().flag("diagnosed"));
    }

    #[test]
    fn reach_gates_drag_and_apply_too() {
        let mut s = adventure_session();
        // Walk near the door first, then use it.
        s.handle(InputEvent::click(44, 6)).unwrap(); // walk
        s.handle(InputEvent::click(44, 6)).unwrap(); // press
        assert_eq!(s.state().current_scenario, "market");
        // Fan at centre (15,14); avatar still at (44,6): drag walks first.
        let fb = s.handle(InputEvent::drag(12, 12, 60, 20)).unwrap();
        assert_eq!(fb, vec![Feedback::AvatarMoved { x: 12, y: 12 }]);
        assert!(!s.inventory().has("fan"));
        let fb = s.handle(InputEvent::drag(12, 12, 60, 20)).unwrap();
        assert!(fb.contains(&Feedback::ItemAdded("fan".into())));
        // Apply out of reach also walks.
        s.handle(InputEvent::click(44, 6)).unwrap(); // walk to door
        s.handle(InputEvent::click(44, 6)).unwrap(); // back to classroom
        s.handle(InputEvent::click(25, 20)).unwrap(); // walk to computer
        s.handle(InputEvent::click(25, 20)).unwrap(); // diagnose
        s.handle(InputEvent::click(2, 45)).unwrap(); // walk away
        let fb = s.handle(InputEvent::apply("fan", 25, 20)).unwrap();
        assert_eq!(fb, vec![Feedback::AvatarMoved { x: 25, y: 20 }]);
        let fb = s.handle(InputEvent::apply("fan", 25, 20)).unwrap();
        assert!(fb.iter().any(|f| matches!(f, Feedback::GameEnded(_))));
    }

    #[test]
    fn classic_mode_ignores_distance() {
        let mut s = GameSession::new(
            Arc::new(fix_the_computer()),
            SessionConfig::for_frame(FRAME.0, FRAME.1),
        )
        .unwrap()
        .0;
        let fb = s.handle(InputEvent::click(25, 20)).unwrap();
        assert!(fb.iter().any(|f| matches!(f, Feedback::Text(_))));
    }
}
