//! The linear / DVD-menu baseline (EXP-4).
//!
//! §2.1: "Playing order of traditional video is linear; users can only
//! make simple decisions to control the flow of video playing. Simple
//! interfaces are supported to help users to switch scenarios in DVD as
//! menus." This module models those two traditional modes next to the
//! paper's interactive branching, so EXP-4 can quantify *time-to-content*
//! and *interactions-to-content*:
//!
//! * **Linear** — watch from the beginning until the target segment.
//! * **DVD menu** — open a chapter menu, arrow down to the chapter,
//!   confirm; then watch the chapter.
//! * **Interactive (VGBL)** — follow the scenario graph's shortest click
//!   path, watching only the reaction time per scenario.

use vgbl_media::SegmentTable;
use vgbl_scene::SceneGraph;

use crate::error::RuntimeError;
use crate::Result;

/// What it costs a viewer to reach a piece of content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NavigationCost {
    /// Button presses / clicks performed.
    pub interactions: usize,
    /// Frames of video watched before the target content plays.
    pub frames_watched: usize,
}

/// Cost of reaching segment `target` by linear playback from frame 0.
///
/// # Errors
/// Fails when `target` is outside the table.
pub fn linear_cost(segments: &SegmentTable, target: usize) -> Result<NavigationCost> {
    let seg = segments
        .segments()
        .get(target)
        .ok_or_else(|| RuntimeError::UnknownScenario(format!("segment #{target}")))?;
    Ok(NavigationCost { interactions: 1, frames_watched: seg.start })
}

/// Cost of reaching chapter `target` through a DVD-style chapter menu:
/// one press to open the menu, `target` arrow presses, one confirm.
/// `menu_frames` models the menu screens watched while navigating.
pub fn dvd_menu_cost(
    segments: &SegmentTable,
    target: usize,
    menu_frames_per_press: usize,
) -> Result<NavigationCost> {
    if target >= segments.len() {
        return Err(RuntimeError::UnknownScenario(format!("segment #{target}")));
    }
    let presses = 1 + target + 1;
    Ok(NavigationCost {
        interactions: presses,
        frames_watched: presses * menu_frames_per_press,
    })
}

/// Cost of reaching `target_scenario` by interactive branching: the
/// shortest click path from the start scenario, watching `react_frames`
/// of each intermediate scenario before clicking on.
///
/// # Errors
/// Fails when the scenario does not exist or is unreachable.
pub fn interactive_cost(
    graph: &SceneGraph,
    target_scenario: &str,
    react_frames: usize,
) -> Result<NavigationCost> {
    let path = graph
        .shortest_path(target_scenario)?
        .ok_or_else(|| RuntimeError::UnknownScenario(target_scenario.to_owned()))?;
    let hops = path.len() - 1;
    Ok(NavigationCost {
        interactions: hops,
        frames_watched: hops * react_frames,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fix_the_computer;

    fn table() -> SegmentTable {
        // 8 chapters of 120 frames (4 s at 30 fps) each.
        let cuts: Vec<usize> = (1..8).map(|i| i * 120).collect();
        SegmentTable::from_cuts(960, &cuts).unwrap()
    }

    #[test]
    fn linear_grows_with_depth() {
        let t = table();
        assert_eq!(
            linear_cost(&t, 0).unwrap(),
            NavigationCost { interactions: 1, frames_watched: 0 }
        );
        assert_eq!(linear_cost(&t, 4).unwrap().frames_watched, 480);
        assert_eq!(linear_cost(&t, 7).unwrap().frames_watched, 840);
        assert!(linear_cost(&t, 8).is_err());
    }

    #[test]
    fn dvd_menu_costs_presses_not_playback() {
        let t = table();
        let c = dvd_menu_cost(&t, 4, 15).unwrap();
        assert_eq!(c.interactions, 6); // open + 4 downs + confirm
        assert_eq!(c.frames_watched, 90);
        assert!(dvd_menu_cost(&t, 8, 15).is_err());
    }

    #[test]
    fn interactive_uses_graph_shortest_path() {
        let g = fix_the_computer();
        // market is one hop from classroom.
        let c = interactive_cost(&g, "market", 30).unwrap();
        assert_eq!(c, NavigationCost { interactions: 1, frames_watched: 30 });
        // The start itself costs nothing.
        let c = interactive_cost(&g, "classroom", 30).unwrap();
        assert_eq!(c, NavigationCost { interactions: 0, frames_watched: 0 });
        assert!(interactive_cost(&g, "moon", 30).is_err());
    }

    #[test]
    fn interactive_beats_linear_at_depth() {
        // The paper's claim in miniature: branching reaches deep content
        // in O(path) instead of O(position).
        let t = table();
        let linear = linear_cost(&t, 7).unwrap();
        // A star-shaped graph reaches any of 8 scenarios in one click.
        let mut g = SceneGraph::new();
        use vgbl_media::SegmentId;
        use vgbl_scene::{ObjectKind, Rect};
        use vgbl_script::{Action, EventKind, Trigger};
        g.add_scenario("hub", SegmentId(0)).unwrap();
        for i in 1..8 {
            g.add_scenario(format!("room{i}"), SegmentId(i as u32)).unwrap();
        }
        for i in 1..8 {
            let hub = g.scenario_by_name_mut("hub").unwrap();
            let btn = hub
                .add_object(
                    format!("go{i}"),
                    ObjectKind::Button { label: format!("room {i}") },
                    Rect::new(i * 8, 0, 6, 6),
                )
                .unwrap();
            hub.object_mut(btn).unwrap().triggers.push(Trigger::unconditional(
                EventKind::Click,
                vec![Action::GoTo(format!("room{i}"))],
            ));
        }
        let interactive = interactive_cost(&g, "room7", 30).unwrap();
        assert!(interactive.frames_watched < linear.frames_watched / 10);
    }
}
