//! The player's backpack and achievement objects.
//!
//! §3.1: "the players have a backpack to collect items in game. An
//! inventory window is used for displaying what items the player owned."
//! §3.3: reward objects "differ from other interactive ones in scenarios;
//! they represent the achievements which players have" — so rewards live
//! in a separate, append-only shelf.

use std::collections::BTreeMap;

/// The backpack: counted items plus the achievement shelf.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Inventory {
    items: BTreeMap<String, u32>,
    rewards: Vec<String>,
}

impl Inventory {
    /// An empty backpack.
    pub fn new() -> Inventory {
        Inventory::default()
    }

    /// Adds one unit of `item` (saturating at `u32::MAX` units).
    pub fn add(&mut self, item: impl Into<String>) {
        self.add_many(item, 1);
    }

    /// Adds `count` units of `item` in one step (saturating at
    /// `u32::MAX` units). Adding zero units is a no-op — it does *not*
    /// create an empty entry, so `has` stays consistent with `count`.
    pub fn add_many(&mut self, item: impl Into<String>, count: u32) {
        if count == 0 {
            return;
        }
        let entry = self.items.entry(item.into()).or_insert(0);
        *entry = entry.saturating_add(count);
    }

    /// Removes one unit of `item`; returns whether a unit was present.
    pub fn remove(&mut self, item: &str) -> bool {
        match self.items.get_mut(item) {
            Some(n) if *n > 1 => {
                *n -= 1;
                true
            }
            Some(_) => {
                self.items.remove(item);
                true
            }
            None => false,
        }
    }

    /// Whether at least one unit of `item` is held.
    pub fn has(&self, item: &str) -> bool {
        self.items.contains_key(item)
    }

    /// Units of `item` held.
    pub fn count(&self, item: &str) -> u32 {
        self.items.get(item).copied().unwrap_or(0)
    }

    /// Item names in display (alphabetical) order, as the inventory
    /// window shows them.
    pub fn items(&self) -> impl Iterator<Item = (&str, u32)> {
        self.items.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Total number of distinct item names.
    pub fn distinct_items(&self) -> usize {
        self.items.len()
    }

    /// Total units across all items (saturating at `u32::MAX`).
    pub fn total_units(&self) -> u32 {
        self.items.values().fold(0u32, |acc, &n| acc.saturating_add(n))
    }

    /// Grants a reward object; duplicates are ignored (an achievement is
    /// earned once).
    pub fn award(&mut self, reward: impl Into<String>) -> bool {
        let reward = reward.into();
        if self.rewards.contains(&reward) {
            false
        } else {
            self.rewards.push(reward);
            true
        }
    }

    /// Whether the reward has been earned.
    pub fn has_reward(&self, reward: &str) -> bool {
        self.rewards.iter().any(|r| r == reward)
    }

    /// Rewards in the order they were earned.
    pub fn rewards(&self) -> &[String] {
        &self.rewards
    }

    /// True when both shelves are empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty() && self.rewards.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_counts() {
        let mut inv = Inventory::new();
        assert!(inv.is_empty());
        inv.add("coin");
        inv.add("coin");
        inv.add("screwdriver");
        assert_eq!(inv.count("coin"), 2);
        assert!(inv.has("screwdriver"));
        assert_eq!(inv.distinct_items(), 2);
        assert_eq!(inv.total_units(), 3);
        assert!(inv.remove("coin"));
        assert_eq!(inv.count("coin"), 1);
        assert!(inv.remove("coin"));
        assert!(!inv.has("coin"));
        assert!(!inv.remove("coin"));
        assert_eq!(inv.count("ghost"), 0);
    }

    #[test]
    fn add_many_is_bulk_and_saturating() {
        let mut inv = Inventory::new();
        inv.add_many("coin", 3);
        assert_eq!(inv.count("coin"), 3);
        inv.add_many("coin", u32::MAX);
        assert_eq!(inv.count("coin"), u32::MAX, "saturates, never wraps");
        inv.add("coin");
        assert_eq!(inv.count("coin"), u32::MAX);
        inv.add_many("ghost", 0);
        assert!(!inv.has("ghost"), "zero units create no entry");
        assert_eq!(inv.distinct_items(), 1);
    }

    #[test]
    fn items_iterate_alphabetically() {
        let mut inv = Inventory::new();
        inv.add("zeta");
        inv.add("alpha");
        inv.add("alpha");
        let listed: Vec<(&str, u32)> = inv.items().collect();
        assert_eq!(listed, vec![("alpha", 2), ("zeta", 1)]);
    }

    #[test]
    fn rewards_are_once_only_and_ordered() {
        let mut inv = Inventory::new();
        assert!(inv.award("fixer"));
        assert!(inv.award("explorer"));
        assert!(!inv.award("fixer"));
        assert_eq!(inv.rewards(), &["fixer".to_string(), "explorer".to_string()]);
        assert!(inv.has_reward("explorer"));
        assert!(!inv.has_reward("scholar"));
        assert!(!inv.is_empty());
    }
}
