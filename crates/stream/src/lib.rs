//! # vgbl-stream — simulated network delivery of interactive video
//!
//! The paper's related work (§2) places the platform among "PC-based
//! systems … integrating network, video encoding and transmission
//! technologies", and §4.1 has designers "select video files from
//! network". Real sockets would measure the test machine, not the
//! design, so this crate *simulates* delivery (see `DESIGN.md`):
//!
//! * [`chunk`] — the unit of delivery: one GOP per chunk, derived from a
//!   real encoded stream's payload sizes.
//! * [`link`] — a bandwidth + latency link model with deterministic
//!   transfer times.
//! * [`prefetch`] — fetch-ahead policies: on-demand, linear look-ahead,
//!   and **branch-aware** (follow the scenario graph's outgoing edges —
//!   the policy interactive video uniquely enables).
//! * [`client`] — the streaming client simulation: plays a trace of
//!   segment visits against a link and policy, reporting startup delay,
//!   rebuffering and byte efficiency (EXP-7).
//! * [`fault`] — deterministic fault injection: a seeded [`FaultPlan`]
//!   of chunk loss, byte corruption and stall events, a
//!   [`FaultyLink`] wrapper composing faults with any link model
//!   (EXP-12), and [`LoadSpike`] windows that multiply fault rates for
//!   overload experiments (EXP-14).
//! * [`breaker`] — a closed/open/half-open [`CircuitBreaker`] on
//!   simulated time, so clients fail fast on persistently sick links
//!   instead of burning retry budget (EXP-14).
//! * [`batch`] — per-tick fetch batching: a [`BatchPlanner`] coalesces
//!   the chunk requests of a whole cooperative-executor tick into one
//!   deduplicated, breaker-gated plan (EXP-18).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod breaker;
pub mod chunk;
pub mod client;
pub mod fault;
pub mod link;
pub mod prefetch;

pub use batch::{BatchPlan, BatchPlanner, ChunkPlanner, PlannerStats};
pub use breaker::{BreakerConfig, BreakerState, BreakerStats, CircuitBreaker};
pub use chunk::{ChunkId, ChunkMap};
pub use client::{
    simulate, simulate_faulty, simulate_faulty_observed, simulate_faulty_with_breaker,
    simulate_faulty_with_breaker_observed, simulate_observed, FaultyStreamReport, RetryPolicy,
    StreamStats, TraceStep,
};
pub use fault::{ChunkFault, FaultPlan, FaultyLink, LoadSpike};
pub use link::{Link, LinkModel, VariableLink};
pub use prefetch::{warm_decoded_gops, PrefetchContext, PrefetchPolicy};

/// Errors from the streaming simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// A trace step references a segment outside the map.
    UnknownSegment(u32),
    /// The link model is degenerate (zero bandwidth).
    InvalidLink(String),
    /// The chunk map is empty (no video).
    EmptyVideo,
    /// Decoding a GOP for cache warming failed.
    Decode(String),
    /// The video has more GOP-chunks than a `u32` chunk id can address
    /// (carries the first out-of-range index).
    TooManyChunks(usize),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::UnknownSegment(id) => write!(f, "unknown segment {id} in trace"),
            StreamError::InvalidLink(msg) => write!(f, "invalid link model: {msg}"),
            StreamError::EmptyVideo => write!(f, "no chunks to stream"),
            StreamError::Decode(msg) => write!(f, "decode during warm-up failed: {msg}"),
            StreamError::TooManyChunks(i) => {
                write!(f, "chunk index {i} exceeds the u32 chunk-id space")
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// Result alias for streaming operations.
pub type Result<T> = std::result::Result<T, StreamError>;
