//! A deterministic circuit breaker for the delivery path.
//!
//! Retrying ([`crate::client::RetryPolicy`]) is the right reflex for
//! *transient* faults, but when a link is persistently sick every retry
//! burns its full back-off deadline before failing — under load that
//! turns one bad link into a convoy of stalled sessions. The breaker
//! gives the client a memory of recent outcomes so it can **fail fast**
//! instead: a rolling window of successes/failures trips the breaker
//! open once the failure ratio crosses a threshold, open requests are
//! rejected without touching the link, and after a cool-down on the
//! *simulated* clock a half-open probe phase decides whether to close
//! again.
//!
//! Everything is driven by caller-supplied simulated milliseconds — no
//! wall clock — so two identical runs trip, cool down and recover at
//! byte-identical times (the EXP-14 rerun check depends on this).

use crate::{Result, StreamError};

/// Tuning for a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Rolling-window size: how many recent outcomes vote on tripping.
    pub window: usize,
    /// Minimum outcomes in the window before the breaker may trip
    /// (avoids tripping on the first unlucky fetch).
    pub min_samples: usize,
    /// Failure ratio in the window at or above which the breaker trips.
    pub trip_ratio: f64,
    /// Simulated milliseconds the breaker stays open before allowing
    /// half-open probes.
    pub cooldown_ms: f64,
    /// Consecutive half-open probe successes required to close again.
    pub probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig { window: 16, min_samples: 8, trip_ratio: 0.5, cooldown_ms: 1000.0, probes: 2 }
    }
}

impl BreakerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// [`StreamError::InvalidLink`] when the window or probe counts are
    /// zero, `min_samples` exceeds `window`, `trip_ratio` is outside
    /// `(0, 1]`, or `cooldown_ms` is negative or non-finite.
    pub fn validate(&self) -> Result<()> {
        if self.window == 0 {
            return Err(StreamError::InvalidLink("breaker window must be positive".into()));
        }
        if self.min_samples == 0 || self.min_samples > self.window {
            return Err(StreamError::InvalidLink(
                "breaker min_samples must be in [1, window]".into(),
            ));
        }
        if !(self.trip_ratio.is_finite() && self.trip_ratio > 0.0 && self.trip_ratio <= 1.0) {
            return Err(StreamError::InvalidLink("breaker trip_ratio must be in (0, 1]".into()));
        }
        if !self.cooldown_ms.is_finite() || self.cooldown_ms < 0.0 {
            return Err(StreamError::InvalidLink(
                "breaker cooldown must be non-negative".into(),
            ));
        }
        if self.probes == 0 {
            return Err(StreamError::InvalidLink("breaker probes must be positive".into()));
        }
        Ok(())
    }
}

/// The breaker's position in its state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; outcomes are recorded in the rolling window.
    Closed,
    /// Requests are rejected without touching the link.
    Open,
    /// Cool-down has elapsed; a limited number of probes test the link.
    HalfOpen,
}

/// Aggregate numbers a breaker has accumulated over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BreakerStats {
    /// Times the breaker transitioned closed/half-open → open.
    pub trips: u64,
    /// Requests rejected while open (the retries *not* burned).
    pub fast_failures: u64,
    /// Successful closes out of the half-open phase.
    pub recoveries: u64,
}

impl std::ops::Add for BreakerStats {
    type Output = BreakerStats;

    fn add(self, rhs: BreakerStats) -> BreakerStats {
        BreakerStats {
            trips: self.trips + rhs.trips,
            fast_failures: self.fast_failures + rhs.fast_failures,
            recoveries: self.recoveries + rhs.recoveries,
        }
    }
}

impl std::ops::AddAssign for BreakerStats {
    fn add_assign(&mut self, rhs: BreakerStats) {
        *self = *self + rhs;
    }
}

/// Fleet aggregation: one stats row summed over every shard's breaker.
impl std::iter::Sum for BreakerStats {
    fn sum<I: Iterator<Item = BreakerStats>>(iter: I) -> BreakerStats {
        iter.fold(BreakerStats::default(), |acc, s| acc + s)
    }
}

/// A closed/open/half-open circuit breaker on simulated time.
///
/// All transitions happen inside [`CircuitBreaker::allow`],
/// [`CircuitBreaker::on_success`] and [`CircuitBreaker::on_failure`],
/// each of which takes the current simulated time; the breaker itself
/// never consults a clock. State is a bounded ring of recent outcomes
/// plus a few counters, so cloning is cheap and identical call
/// sequences reproduce identical behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Ring buffer of recent outcomes (true = failure), newest last.
    window: Vec<bool>,
    /// Simulated time the breaker last tripped open.
    opened_at_ms: f64,
    /// Consecutive successful probes while half-open.
    probe_successes: u32,
    /// Probes admitted half-open whose outcome has not yet arrived.
    /// At most one may be outstanding: coalesced fetches landing in the
    /// same tick must not all probe a barely-recovered link at once.
    probes_inflight: u32,
    stats: BreakerStats,
}

impl CircuitBreaker {
    /// A closed breaker with `config`.
    ///
    /// # Errors
    /// [`StreamError::InvalidLink`] when `config` fails validation.
    pub fn new(config: BreakerConfig) -> Result<CircuitBreaker> {
        config.validate()?;
        Ok(CircuitBreaker {
            config,
            state: BreakerState::Closed,
            window: Vec::with_capacity(config.window),
            opened_at_ms: f64::NEG_INFINITY,
            probe_successes: 0,
            probes_inflight: 0,
            stats: BreakerStats::default(),
        })
    }

    /// The breaker's configuration.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// Current state, after applying any cool-down expiry due at `now_ms`
    /// (the getter does not transition; [`CircuitBreaker::allow`] does).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Lifetime aggregates.
    pub fn stats(&self) -> BreakerStats {
        self.stats
    }

    /// Times the breaker tripped open.
    pub fn trips(&self) -> u64 {
        self.stats.trips
    }

    /// Requests rejected without touching the link.
    pub fn fast_failures(&self) -> u64 {
        self.stats.fast_failures
    }

    /// Whether a request starting at `now_ms` may proceed. An open
    /// breaker whose cool-down has elapsed transitions to half-open and
    /// admits the request as a probe; an open breaker still cooling
    /// rejects it (counted as a fast failure). Half-open, only one
    /// probe may be in flight at a time: concurrent requests coalesced
    /// into the same tick are rejected (fast failures) until the
    /// outstanding probe's outcome arrives, so a burst cannot hammer a
    /// link that has not yet proven itself.
    pub fn allow(&mut self, now_ms: f64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => {
                if self.probes_inflight == 0 {
                    self.probes_inflight = 1;
                    true
                } else {
                    self.stats.fast_failures += 1;
                    false
                }
            }
            BreakerState::Open => {
                if now_ms - self.opened_at_ms >= self.config.cooldown_ms {
                    self.state = BreakerState::HalfOpen;
                    self.probe_successes = 0;
                    self.probes_inflight = 1;
                    true
                } else {
                    self.stats.fast_failures += 1;
                    false
                }
            }
        }
    }

    /// Records a successful delivery finishing at `now_ms`.
    pub fn on_success(&mut self, _now_ms: f64) {
        match self.state {
            BreakerState::Closed => self.push_outcome(false),
            BreakerState::HalfOpen => {
                self.probes_inflight = self.probes_inflight.saturating_sub(1);
                self.probe_successes += 1;
                if self.probe_successes >= self.config.probes {
                    self.state = BreakerState::Closed;
                    self.window.clear();
                    self.probes_inflight = 0;
                    self.stats.recoveries += 1;
                }
            }
            // A late success from a request admitted before the trip
            // does not close an open breaker; the cool-down decides.
            BreakerState::Open => {}
        }
    }

    /// Records a failed delivery (timeout exhaustion, corrupt payload)
    /// observed at `now_ms`.
    pub fn on_failure(&mut self, now_ms: f64) {
        match self.state {
            BreakerState::Closed => {
                self.push_outcome(true);
                let n = self.window.len();
                if n >= self.config.min_samples {
                    let failures = self.window.iter().filter(|&&f| f).count();
                    if failures as f64 >= self.config.trip_ratio * n as f64 {
                        self.trip(now_ms);
                    }
                }
            }
            // One failed probe re-opens immediately.
            BreakerState::HalfOpen => self.trip(now_ms),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now_ms: f64) {
        self.state = BreakerState::Open;
        // Clamp the trip time to a finite value: an INF (or NaN) clock
        // would make `now - opened_at` NaN in `allow`, and NaN >=
        // cooldown is false forever — a breaker stuck open past any
        // cool-down. Same overflow class as the clock-conversion fix.
        self.opened_at_ms = if now_ms.is_finite() { now_ms } else { f64::MAX };
        self.probe_successes = 0;
        self.probes_inflight = 0;
        self.window.clear();
        self.stats.trips += 1;
    }

    fn push_outcome(&mut self, failed: bool) {
        if self.window.len() == self.config.window {
            self.window.remove(0);
        }
        self.window.push(failed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            window: 4,
            min_samples: 4,
            trip_ratio: 0.5,
            cooldown_ms: 100.0,
            probes: 2,
        })
        .unwrap()
    }

    #[test]
    fn breaker_config_validates() {
        assert!(BreakerConfig::default().validate().is_ok());
        assert!(BreakerConfig { window: 0, ..BreakerConfig::default() }.validate().is_err());
        assert!(BreakerConfig { min_samples: 0, ..BreakerConfig::default() }.validate().is_err());
        assert!(
            BreakerConfig { min_samples: 17, window: 16, ..BreakerConfig::default() }
                .validate()
                .is_err()
        );
        assert!(BreakerConfig { trip_ratio: 0.0, ..BreakerConfig::default() }.validate().is_err());
        assert!(BreakerConfig { trip_ratio: 1.5, ..BreakerConfig::default() }.validate().is_err());
        assert!(
            BreakerConfig { trip_ratio: f64::NAN, ..BreakerConfig::default() }.validate().is_err()
        );
        assert!(
            BreakerConfig { cooldown_ms: -1.0, ..BreakerConfig::default() }.validate().is_err()
        );
        assert!(BreakerConfig { probes: 0, ..BreakerConfig::default() }.validate().is_err());
    }

    /// Regression (overflow audit, PR 9): tripping at a non-finite
    /// timestamp used to store ±inf/NaN in `opened_at_ms`, making
    /// `now - opened_at` NaN in `allow` — and `NaN >= cooldown` is
    /// false forever, a breaker stuck open past any cool-down. The trip
    /// time now clamps finite, so the breaker always heals.
    #[test]
    fn breaker_tripped_at_nonfinite_clock_still_heals() {
        for bad_now in [f64::INFINITY, f64::NAN] {
            let mut b = quick();
            for _ in 0..4 {
                b.on_failure(bad_now);
            }
            assert_eq!(b.state(), BreakerState::Open);
            // A later call on the same poisoned clock must be able to
            // open the half-open window, not wedge on NaN arithmetic.
            assert!(
                b.allow(f64::INFINITY),
                "breaker tripped at {bad_now} must admit a probe eventually"
            );
            assert_eq!(b.state(), BreakerState::HalfOpen);
        }
    }

    #[test]
    fn half_open_probe_success_then_failure_burst_reopens_deterministically() {
        // Regression: a half-open probe that succeeds (but has not yet
        // closed the breaker — probes: 2) followed immediately by a
        // failure burst must re-open *at the failure's timestamp*, so the
        // next cool-down window is anchored there, not at the original
        // trip. The partial probe progress must also reset.
        let mut b = quick();
        for t in 0..4 {
            b.on_failure(f64::from(t));
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);

        // Cool-down (100 ms from t=3) elapses; the probe is admitted.
        assert!(b.allow(103.0), "cool-down elapsed: half-open probe admitted");
        b.on_success(104.0);
        assert_eq!(b.state(), BreakerState::HalfOpen, "one probe success of two: not closed yet");
        assert_eq!(b.stats().recoveries, 0, "no recovery until the breaker closes");

        // The burst: one failure re-opens immediately at t=105.
        b.on_failure(105.0);
        b.on_failure(105.5); // further failures while open are no-ops
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2, "half-open failure counts as a fresh trip");

        // Reopen timing is anchored at the failure (105), not the first
        // trip (3): still cooling one tick before 205, open at 205.
        assert!(!b.allow(204.9), "cool-down runs 105 → 205");
        assert!(b.allow(205.0), "second half-open window opens at exactly 205");
        // Probe progress restarted from zero: two fresh successes close.
        b.on_success(206.0);
        assert_eq!(b.state(), BreakerState::HalfOpen, "first probe success is not enough");
        b.on_success(207.0);
        assert_eq!(b.state(), BreakerState::Closed);
        let stats = b.stats();
        assert_eq!((stats.trips, stats.recoveries), (2, 1));
    }

    #[test]
    fn breaker_stats_sum_over_shards() {
        let a = BreakerStats { trips: 1, fast_failures: 2, recoveries: 3 };
        let b = BreakerStats { trips: 10, fast_failures: 20, recoveries: 30 };
        assert_eq!(
            [a, b].into_iter().sum::<BreakerStats>(),
            BreakerStats { trips: 11, fast_failures: 22, recoveries: 33 }
        );
        let mut acc = BreakerStats::default();
        acc += a;
        assert_eq!(acc, a);
    }

    #[test]
    fn breaker_trips_on_failure_ratio_and_fails_fast() {
        let mut b = quick();
        assert_eq!(b.state(), BreakerState::Closed);
        // 2 successes + 2 failures = 50% of a full window: trips.
        b.on_success(0.0);
        b.on_success(1.0);
        assert!(b.allow(2.0));
        b.on_failure(2.0);
        assert_eq!(b.state(), BreakerState::Closed, "below min_samples");
        b.on_failure(3.0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        // Open: requests are rejected without touching the link.
        assert!(!b.allow(50.0));
        assert!(!b.allow(99.0));
        assert_eq!(b.fast_failures(), 2);
    }

    #[test]
    fn breaker_under_min_samples_never_trips() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            window: 8,
            min_samples: 8,
            trip_ratio: 0.25,
            cooldown_ms: 100.0,
            probes: 1,
        })
        .unwrap();
        for t in 0..7 {
            b.on_failure(t as f64);
        }
        assert_eq!(b.state(), BreakerState::Closed, "7 of 8 samples is not enough evidence");
        b.on_failure(7.0);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn breaker_half_open_probes_close_after_cooldown() {
        let mut b = quick();
        for t in 0..4 {
            b.on_failure(t as f64);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Cool-down (100ms from the trip at t=3) not yet elapsed.
        assert!(!b.allow(102.9));
        // Elapsed: half-open probe admitted.
        assert!(b.allow(103.0));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success(104.0);
        assert_eq!(b.state(), BreakerState::HalfOpen, "needs 2 probe successes");
        assert!(b.allow(105.0));
        b.on_success(106.0);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.stats().recoveries, 1);
        // The window was cleared on close: old failures don't linger.
        b.on_failure(107.0);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_failed_probe_reopens() {
        let mut b = quick();
        for t in 0..4 {
            b.on_failure(t as f64);
        }
        assert!(b.allow(103.0));
        b.on_failure(104.0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // The new cool-down restarts from the re-trip.
        assert!(!b.allow(150.0));
        assert!(b.allow(204.0));
    }

    #[test]
    fn breaker_half_open_admits_exactly_one_concurrent_probe() {
        // Regression: coalesced fetches landing in the same simulated
        // tick used to all pass `allow` while half-open, hammering a
        // barely-recovered link with a whole batch of probes. Only the
        // first may go; the rest fail fast until its outcome arrives.
        let mut b = quick();
        for t in 0..4 {
            b.on_failure(f64::from(t));
        }
        assert_eq!(b.state(), BreakerState::Open);

        // Cool-down elapsed; a batch of three coalesced requests all
        // ask at the same timestamp. Exactly one is the probe.
        assert!(b.allow(103.0), "first request becomes the half-open probe");
        assert!(!b.allow(103.0), "second concurrent request is rejected");
        assert!(!b.allow(103.0), "third concurrent request is rejected");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.fast_failures(), 2, "rejected co-probes count as fast failures");

        // The probe resolves; the next tick's batch may probe again.
        b.on_success(104.0);
        assert_eq!(b.state(), BreakerState::HalfOpen, "one of two probe successes");
        assert!(b.allow(105.0), "outcome arrived: next probe admitted");
        assert!(!b.allow(105.0), "still one at a time");
        b.on_success(106.0);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.stats().recoveries, 1);

        // Closed again: concurrency limit no longer applies.
        assert!(b.allow(107.0));
        assert!(b.allow(107.0));
    }

    #[test]
    fn breaker_failed_probe_clears_inflight_accounting() {
        // A failed probe re-opens the breaker; after the next cool-down
        // a fresh probe must be admitted (the in-flight slot must not
        // leak across the trip).
        let mut b = quick();
        for t in 0..4 {
            b.on_failure(f64::from(t));
        }
        assert!(b.allow(103.0));
        assert!(!b.allow(103.0), "slot taken while probe in flight");
        b.on_failure(104.0);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow(204.0), "fresh cool-down admits a fresh probe");
        b.on_success(205.0);
        assert!(b.allow(206.0), "resolved probe frees the slot");
    }

    #[test]
    fn breaker_is_deterministic_for_identical_call_sequences() {
        let run = || {
            let mut b = quick();
            let mut log = Vec::new();
            for i in 0..200u32 {
                let t = i as f64 * 7.0;
                let admitted = b.allow(t);
                if admitted {
                    if i % 3 == 0 {
                        b.on_failure(t + 1.0);
                    } else {
                        b.on_success(t + 1.0);
                    }
                }
                log.push((admitted, b.state()));
            }
            (log, b.stats())
        };
        assert_eq!(run(), run());
    }
}
