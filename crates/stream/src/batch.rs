//! Per-tick batch planning for coalesced fetches.
//!
//! The cooperative executor (`vgbl-runtime::executor`) steps thousands
//! of sessions per simulated tick; each session that reaches a
//! fetch/decode boundary *requests* a key (a GOP keyframe, a
//! [`ChunkId`]) instead of fetching on its own. The [`BatchPlanner`]
//! collects one tick's requests, deduplicates them into a sorted
//! [`BatchPlan`] — the same miss-coalescing idea the `GopCache` applies
//! to racing threads, applied here to cohabiting tasks — and remembers
//! which requesters wait on which key so the executor can resume
//! exactly the right tasks once the batch resolves.
//!
//! Keys are issued in ascending order and the plan is a pure function
//! of the requests, so two identical ticks produce byte-identical
//! plans regardless of request arrival order within the tick.
//!
//! [`BatchPlan::admit`] gates a plan through a [`CircuitBreaker`]:
//! closed, the whole batch flows; half-open, **exactly one** key is
//! admitted as the probe and the rest fail fast (see the breaker's
//! single-probe accounting) — a freshly recovered link sees one
//! request, not a whole tick's worth.

use std::collections::BTreeMap;

use crate::breaker::CircuitBreaker;
use crate::chunk::ChunkId;

/// Lifetime counters a planner accumulates across ticks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlannerStats {
    /// Fetch requests received.
    pub requests: u64,
    /// Requests that joined a key already requested in the same tick
    /// (the fetches *not* issued thanks to batching).
    pub coalesced: u64,
    /// Plans taken (one per non-empty tick).
    pub batches: u64,
    /// Unique keys issued across all plans.
    pub batched_keys: u64,
}

/// One tick's resolved fetch batch: deduplicated keys in ascending
/// order, plus the requesters waiting on each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPlan<K> {
    /// Unique keys to fetch, ascending.
    pub keys: Vec<K>,
    /// `waiters[j]` are the requester ids that asked for `keys[j]`, in
    /// request order.
    pub waiters: Vec<Vec<u64>>,
}

impl<K> BatchPlan<K> {
    /// Number of unique keys in the plan.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the plan has no keys.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

impl<K: Copy> BatchPlan<K> {
    /// Splits the plan's keys through `breaker` at `now_ms`: closed,
    /// every key is admitted; half-open, exactly one key (the first)
    /// becomes the probe and the rest are rejected as fast failures;
    /// open, everything is rejected. Returns `(admitted, rejected)`
    /// with both halves preserving plan order.
    pub fn admit(&self, breaker: &mut CircuitBreaker, now_ms: f64) -> (Vec<K>, Vec<K>) {
        let mut admitted = Vec::new();
        let mut rejected = Vec::new();
        for &k in &self.keys {
            if breaker.allow(now_ms) {
                admitted.push(k);
            } else {
                rejected.push(k);
            }
        }
        (admitted, rejected)
    }
}

/// Collects one tick's fetch requests and coalesces them into a
/// [`BatchPlan`]. Reusable across ticks; stats accumulate.
#[derive(Debug, Default)]
pub struct BatchPlanner<K: Ord + Copy> {
    pending: BTreeMap<K, Vec<u64>>,
    stats: PlannerStats,
}

/// The common case: planning GOP-chunk fetches.
pub type ChunkPlanner = BatchPlanner<ChunkId>;

impl<K: Ord + Copy> BatchPlanner<K> {
    /// An empty planner.
    pub fn new() -> BatchPlanner<K> {
        BatchPlanner { pending: BTreeMap::new(), stats: PlannerStats::default() }
    }

    /// Records that `requester` needs `key` this tick.
    pub fn request(&mut self, requester: u64, key: K) {
        self.stats.requests += 1;
        let waiters = self.pending.entry(key).or_default();
        if !waiters.is_empty() {
            self.stats.coalesced += 1;
        }
        waiters.push(requester);
    }

    /// Number of requests not yet taken into a plan.
    pub fn pending_requests(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// Whether no requests are pending.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty()
    }

    /// Drains the tick's requests into a [`BatchPlan`] (keys ascending,
    /// waiters in request order), leaving the planner empty for the
    /// next tick. An idle planner yields an empty plan and counts no
    /// batch.
    pub fn take_plan(&mut self) -> BatchPlan<K> {
        let pending = std::mem::take(&mut self.pending);
        let mut keys = Vec::with_capacity(pending.len());
        let mut waiters = Vec::with_capacity(pending.len());
        for (k, w) in pending {
            keys.push(k);
            waiters.push(w);
        }
        if !keys.is_empty() {
            self.stats.batches += 1;
            self.stats.batched_keys += keys.len() as u64;
        }
        BatchPlan { keys, waiters }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PlannerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::{BreakerConfig, BreakerState};

    #[test]
    fn batch_planner_coalesces_and_sorts() {
        let mut p: BatchPlanner<usize> = BatchPlanner::new();
        p.request(7, 12);
        p.request(3, 0);
        p.request(9, 12);
        p.request(1, 6);
        assert_eq!(p.pending_requests(), 4);
        let plan = p.take_plan();
        assert_eq!(plan.keys, vec![0, 6, 12]);
        assert_eq!(plan.waiters, vec![vec![3], vec![1], vec![7, 9]]);
        assert!(p.is_idle());
        let stats = p.stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.coalesced, 1, "second request for key 12 coalesced");
        assert_eq!((stats.batches, stats.batched_keys), (1, 3));
    }

    #[test]
    fn batch_plan_is_order_independent() {
        let plan_of = |order: &[(u64, u32)]| {
            let mut p: BatchPlanner<ChunkId> = BatchPlanner::new();
            for &(req, key) in order {
                p.request(req, ChunkId(key));
            }
            p.take_plan().keys
        };
        // Same request set, different arrival order within the tick.
        let a = plan_of(&[(0, 5), (1, 2), (2, 5), (3, 9)]);
        let b = plan_of(&[(3, 9), (2, 5), (0, 5), (1, 2)]);
        assert_eq!(a, b);
        assert_eq!(a, vec![ChunkId(2), ChunkId(5), ChunkId(9)]);
    }

    #[test]
    fn empty_take_plan_counts_no_batch() {
        let mut p: BatchPlanner<u32> = BatchPlanner::new();
        let plan = p.take_plan();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert_eq!(p.stats().batches, 0);
    }

    #[test]
    fn half_open_breaker_admits_one_key_per_plan() {
        // A whole tick's coalesced batch lands on a breaker that has
        // just cooled down: only the first key may probe the link.
        let mut b = CircuitBreaker::new(BreakerConfig {
            window: 4,
            min_samples: 4,
            trip_ratio: 0.5,
            cooldown_ms: 100.0,
            probes: 1,
        })
        .unwrap();
        for t in 0..4 {
            b.on_failure(f64::from(t));
        }
        assert_eq!(b.state(), BreakerState::Open);

        let mut p: BatchPlanner<ChunkId> = BatchPlanner::new();
        for i in 0..5u64 {
            p.request(i, ChunkId(i as u32));
        }
        let plan = p.take_plan();
        let (admitted, rejected) = plan.admit(&mut b, 103.0);
        assert_eq!(admitted, vec![ChunkId(0)], "exactly one probe half-open");
        assert_eq!(rejected.len(), 4);
        assert_eq!(b.fast_failures(), 4);

        // The probe succeeds and closes the breaker (probes: 1): the
        // next tick's whole batch flows.
        b.on_success(104.0);
        assert_eq!(b.state(), BreakerState::Closed);
        let mut p2: BatchPlanner<ChunkId> = BatchPlanner::new();
        for i in 0..5u64 {
            p2.request(i, ChunkId(i as u32));
        }
        let (admitted, rejected) = p2.take_plan().admit(&mut b, 105.0);
        assert_eq!(admitted.len(), 5);
        assert!(rejected.is_empty());
    }
}
