//! Delivery chunks.
//!
//! The natural delivery unit for the `VGV` codec is the GOP: it starts at
//! a keyframe, so any chunk is independently decodable — exactly what
//! scenario switching needs. [`ChunkMap`] derives the chunk layout (byte
//! sizes, frame ranges, per-segment coverage) from a real encoded stream
//! and its segment table, so the simulation's sizes are the codec's
//! actual output sizes, not made-up numbers.

use vgbl_media::codec::EncodedVideo;
use vgbl_media::{SegmentId, SegmentTable};

use crate::{Result, StreamError};

/// Identifier of a chunk (the index of its GOP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkId(pub u32);

impl ChunkId {
    /// Checked conversion from a chunk index. Chunk ids are `u32` on the
    /// wire (the container's frame-table entries are fixed-width), so an
    /// index above `u32::MAX` must be rejected — the old `i as u32` cast
    /// silently wrapped, aliasing distinct chunks on pathological inputs.
    pub fn from_index(i: usize) -> Result<ChunkId> {
        u32::try_from(i).map(ChunkId).map_err(|_| StreamError::TooManyChunks(i))
    }
}

/// One GOP-chunk's layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkInfo {
    /// The chunk's id.
    pub id: ChunkId,
    /// First frame covered (a keyframe).
    pub start_frame: usize,
    /// One past the last frame covered.
    pub end_frame: usize,
    /// Payload bytes (sum of the GOP's encoded frames).
    pub bytes: usize,
    /// FNV-1a checksum of the chunk's payload bytes — the container's
    /// integrity path, so clients can verify arrivals against the
    /// pristine stream.
    pub checksum: u64,
}

impl ChunkInfo {
    /// Number of frames in the chunk.
    pub fn frames(&self) -> usize {
        self.end_frame - self.start_frame
    }
}

/// The full chunk layout of one encoded video plus its segment table.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkMap {
    chunks: Vec<ChunkInfo>,
    /// For each segment (by table index): the chunk ids overlapping it,
    /// in playback order.
    per_segment: Vec<Vec<ChunkId>>,
    /// Milliseconds of playback one frame covers.
    frame_ms: f64,
    /// Container header bytes fetched before anything plays.
    header_bytes: usize,
}

impl ChunkMap {
    /// Builds the layout from an encoded stream and its segment table.
    pub fn build(video: &EncodedVideo, segments: &SegmentTable) -> Result<ChunkMap> {
        if video.is_empty() {
            return Err(StreamError::EmptyVideo);
        }
        let keyframes = video.keyframes();
        let mut chunks = Vec::with_capacity(keyframes.len());
        for (i, &start) in keyframes.iter().enumerate() {
            let end = keyframes.get(i + 1).copied().unwrap_or(video.len());
            let bytes: usize = video.frames[start..end].iter().map(|f| f.data.len()).sum();
            chunks.push(ChunkInfo {
                id: ChunkId::from_index(i)?,
                start_frame: start,
                end_frame: end,
                bytes,
                checksum: vgbl_media::payload_checksum(&video.frames[start..end]),
            });
        }
        let mut per_segment = Vec::with_capacity(segments.len());
        for seg in segments.segments() {
            let ids: Vec<ChunkId> = chunks
                .iter()
                .filter(|c| c.start_frame < seg.end && seg.start < c.end_frame)
                .map(|c| c.id)
                .collect();
            per_segment.push(ids);
        }
        let frame_ms = 1000.0 / video.rate.as_f64();
        // Header: magic + fixed fields + frame table (5 bytes/frame).
        let header_bytes = 29 + video.len() * 5 + 8;
        Ok(ChunkMap { chunks, per_segment, frame_ms, header_bytes })
    }

    /// All chunks in playback order.
    pub fn chunks(&self) -> &[ChunkInfo] {
        &self.chunks
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// A built map is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Looks a chunk up.
    pub fn get(&self, id: ChunkId) -> Option<&ChunkInfo> {
        self.chunks.get(id.0 as usize)
    }

    /// The chunks a segment needs, in playback order.
    pub fn segment_chunks(&self, segment: SegmentId) -> Result<&[ChunkId]> {
        self.per_segment
            .get(segment.0 as usize)
            .map(Vec::as_slice)
            .ok_or(StreamError::UnknownSegment(segment.0))
    }

    /// Playback duration of one chunk in milliseconds.
    pub fn chunk_play_ms(&self, id: ChunkId) -> f64 {
        self.get(id).map(|c| c.frames() as f64 * self.frame_ms).unwrap_or(0.0)
    }

    /// Container header size in bytes.
    pub fn header_bytes(&self) -> usize {
        self.header_bytes
    }

    /// Total payload bytes across all chunks.
    pub fn total_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgbl_media::codec::{EncodeConfig, Encoder};
    use vgbl_media::color::Rgb;
    use vgbl_media::synth::{FootageSpec, ShotSpec};
    use vgbl_media::timeline::FrameRate;

    fn build(gop: usize) -> (EncodedVideo, SegmentTable) {
        let footage = FootageSpec {
            width: 32,
            height: 24,
            rate: FrameRate::FPS30,
            shots: vec![
                ShotSpec::plain(10, Rgb::new(180, 40, 40)),
                ShotSpec::plain(10, Rgb::new(40, 180, 40)),
                ShotSpec::plain(10, Rgb::new(40, 40, 180)),
            ],
            noise_seed: 6,
        }
        .render()
        .unwrap();
        let video = Encoder::new(EncodeConfig { gop, ..Default::default() })
            .encode(&footage.frames, footage.rate)
            .unwrap();
        let table = SegmentTable::from_cuts(30, &[10, 20]).unwrap();
        (video, table)
    }

    #[test]
    fn chunks_cover_video_exactly() {
        let (video, table) = build(5);
        let map = ChunkMap::build(&video, &table).unwrap();
        assert_eq!(map.len(), 6);
        let mut expect = 0;
        for c in map.chunks() {
            assert_eq!(c.start_frame, expect);
            expect = c.end_frame;
            assert_eq!(c.frames(), 5);
            assert!(c.bytes > 0);
        }
        assert_eq!(expect, 30);
        assert_eq!(map.total_bytes(), video.payload_bytes());
    }

    #[test]
    fn segment_chunks_align_on_gop_multiples() {
        let (video, table) = build(5);
        let map = ChunkMap::build(&video, &table).unwrap();
        assert_eq!(map.segment_chunks(SegmentId(0)).unwrap(), &[ChunkId(0), ChunkId(1)]);
        assert_eq!(map.segment_chunks(SegmentId(1)).unwrap(), &[ChunkId(2), ChunkId(3)]);
        assert_eq!(map.segment_chunks(SegmentId(2)).unwrap(), &[ChunkId(4), ChunkId(5)]);
        assert!(map.segment_chunks(SegmentId(9)).is_err());
    }

    #[test]
    fn misaligned_segments_share_chunks() {
        let (video, _) = build(7); // GOP 7 does not divide the cuts
        let table = SegmentTable::from_cuts(30, &[10, 20]).unwrap();
        let map = ChunkMap::build(&video, &table).unwrap();
        // Segment 1 covers frames [10,20): chunks [7,14) and [14,21).
        let ids = map.segment_chunks(SegmentId(1)).unwrap();
        assert_eq!(ids, &[ChunkId(1), ChunkId(2)]);
    }

    #[test]
    fn play_time_and_header() {
        let (video, table) = build(5);
        let map = ChunkMap::build(&video, &table).unwrap();
        // 5 frames at 30 fps ≈ 166.7 ms.
        let ms = map.chunk_play_ms(ChunkId(0));
        assert!((ms - 5000.0 / 30.0).abs() < 1e-9);
        assert_eq!(map.header_bytes(), 29 + 30 * 5 + 8);
        assert_eq!(map.chunk_play_ms(ChunkId(99)), 0.0);
    }

    #[test]
    fn chunk_checksums_follow_the_container_fault_path() {
        let (video, table) = build(5);
        let map = ChunkMap::build(&video, &table).unwrap();
        for c in map.chunks() {
            assert_eq!(
                c.checksum,
                vgbl_media::payload_checksum(&video.frames[c.start_frame..c.end_frame])
            );
        }
        // Distinct GOPs of real content should not collide.
        let mut sums: Vec<u64> = map.chunks().iter().map(|c| c.checksum).collect();
        sums.dedup();
        assert!(sums.len() > 1);
    }

    /// Regression: `ChunkMap::build` used `i as u32`, which wraps above
    /// `u32::MAX` and aliases distinct chunks. A real 4-billion-chunk
    /// video is impractical to encode, so the checked helper is public
    /// and pinned directly.
    #[test]
    fn chunk_id_from_index_rejects_overflow() {
        assert_eq!(ChunkId::from_index(0).unwrap(), ChunkId(0));
        assert_eq!(ChunkId::from_index(u32::MAX as usize).unwrap(), ChunkId(u32::MAX));
        let too_big = u32::MAX as usize + 1;
        assert!(matches!(
            ChunkId::from_index(too_big),
            Err(StreamError::TooManyChunks(i)) if i == too_big
        ));
    }

    #[test]
    fn empty_video_rejected() {
        let (video, table) = build(5);
        let empty = EncodedVideo { frames: Vec::new(), ..video };
        assert!(matches!(ChunkMap::build(&empty, &table), Err(StreamError::EmptyVideo)));
    }
}
