//! Deterministic fault injection for the delivery path.
//!
//! Classroom deployments of interactive-video platforms consistently
//! report the *student-side network* as the dominant operational problem:
//! lossy Wi-Fi, flaky proxies, mid-transfer stalls. Measuring how the
//! client degrades under those conditions requires faults that are
//! **reproducible** — the same seed must produce the same losses in the
//! same places on every run, or experiment tables and regression tests
//! are meaningless.
//!
//! * [`FaultPlan`] — a seeded, stateless schedule of chunk loss, byte
//!   corruption and link stalls. Every outcome is a pure hash of
//!   `(seed, chunk, attempt)`, so concurrent consumers and re-runs agree
//!   without any shared mutable state.
//! * [`FaultyLink`] — wraps any [`Link`] (constant or variable) and
//!   injects deterministic stall events into its transfer timing, so the
//!   whole link-model family composes with faults.
//!
//! Loss and corruption are *chunk*-level events (a response that never
//! arrives, a payload whose container checksum does not match) and are
//! consumed by the retrying client in [`crate::client`]; stalls are
//! *link*-level events visible to anything that times transfers.

use crate::chunk::ChunkId;
use crate::link::Link;
use crate::{Result, StreamError};

/// Event-type salts keeping the loss / corruption / stall / jitter
/// streams of one seed statistically independent.
const SALT_LOSS: u64 = 0x1000_0001;
const SALT_CORRUPT: u64 = 0x2000_0002;
const SALT_STALL: u64 = 0x3000_0003;
const SALT_JITTER: u64 = 0x4000_0004;

/// splitmix64 finaliser: a well-mixed 64-bit hash of its input.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform `f64` in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// What the fault plan decrees for one delivery attempt of one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkFault {
    /// The response never arrives; the client can only time out.
    pub lost: bool,
    /// The payload arrives but its checksum does not match (detected via
    /// the container's FNV-1a integrity path), so it must be re-fetched.
    pub corrupted: bool,
}

impl ChunkFault {
    /// True when the attempt delivers the chunk intact.
    pub fn is_clean(&self) -> bool {
        !self.lost && !self.corrupted
    }
}

/// A time window during which fault rates are multiplied, modelling a
/// congestion event (a lab full of students all pressing play at once).
///
/// EXP-14 uses a spike both to drive the arrival process hot and to
/// make the link sick enough to trip the circuit breaker, then checks
/// that the supervisor sheds and recovers instead of queueing forever.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSpike {
    start_ms: f64,
    duration_ms: f64,
    factor: f64,
}

impl LoadSpike {
    /// A spike multiplying fault rates by `factor` during
    /// `[start_ms, start_ms + duration_ms)`.
    ///
    /// # Errors
    /// [`StreamError::InvalidLink`] when `start_ms` is non-finite,
    /// `duration_ms` is negative or non-finite, or `factor < 1`.
    pub fn new(start_ms: f64, duration_ms: f64, factor: f64) -> Result<LoadSpike> {
        if !start_ms.is_finite() {
            return Err(StreamError::InvalidLink("spike start must be finite".into()));
        }
        if !duration_ms.is_finite() || duration_ms < 0.0 {
            return Err(StreamError::InvalidLink("spike duration must be non-negative".into()));
        }
        if !factor.is_finite() || factor < 1.0 {
            return Err(StreamError::InvalidLink("spike factor must be >= 1".into()));
        }
        Ok(LoadSpike { start_ms, duration_ms, factor })
    }

    /// Start of the spike window, simulated ms.
    pub fn start_ms(&self) -> f64 {
        self.start_ms
    }

    /// Length of the spike window, simulated ms.
    pub fn duration_ms(&self) -> f64 {
        self.duration_ms
    }

    /// The rate multiplier applying at `now_ms` (1 outside the window).
    pub fn factor_at(&self, now_ms: f64) -> f64 {
        if now_ms >= self.start_ms && now_ms < self.start_ms + self.duration_ms {
            self.factor
        } else {
            1.0
        }
    }
}

/// A seeded, reproducible schedule of delivery faults.
///
/// The plan is stateless: whether attempt `a` of chunk `c` is lost,
/// corrupted or stalled is a pure function of `(seed, c, a)` — plus the
/// current time when a [`LoadSpike`] is attached, which scales the
/// rates inside its window. Two runs with the same plan see
/// byte-identical fault sequences; distinct attempts of one chunk draw
/// independent outcomes, so bounded retries succeed with overwhelming
/// probability at realistic loss rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    loss: f64,
    corruption: f64,
    stall_rate: f64,
    stall_ms: f64,
    spike: Option<LoadSpike>,
}

impl FaultPlan {
    /// A fault-free plan with the given seed; compose rates with the
    /// `with_*` builders.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, loss: 0.0, corruption: 0.0, stall_rate: 0.0, stall_ms: 0.0, spike: None }
    }

    /// Sets the per-attempt chunk loss probability.
    ///
    /// # Errors
    /// [`StreamError::InvalidLink`] when `rate` is not in `[0, 1]`.
    pub fn with_loss(mut self, rate: f64) -> Result<FaultPlan> {
        self.loss = validated_rate(rate, "loss rate")?;
        Ok(self)
    }

    /// Sets the per-attempt payload corruption probability.
    ///
    /// # Errors
    /// [`StreamError::InvalidLink`] when `rate` is not in `[0, 1]`.
    pub fn with_corruption(mut self, rate: f64) -> Result<FaultPlan> {
        self.corruption = validated_rate(rate, "corruption rate")?;
        Ok(self)
    }

    /// Sets the per-transfer stall probability and the stall duration.
    ///
    /// # Errors
    /// [`StreamError::InvalidLink`] when `rate` is not in `[0, 1]` or
    /// `stall_ms` is negative or non-finite.
    pub fn with_stalls(mut self, rate: f64, stall_ms: f64) -> Result<FaultPlan> {
        self.stall_rate = validated_rate(rate, "stall rate")?;
        if !stall_ms.is_finite() || stall_ms < 0.0 {
            return Err(StreamError::InvalidLink("stall duration must be non-negative".into()));
        }
        self.stall_ms = stall_ms;
        Ok(self)
    }

    /// Attaches a [`LoadSpike`] window multiplying the loss and
    /// corruption rates (capped at 1) while the spike is active.
    pub fn with_load_spike(mut self, spike: LoadSpike) -> FaultPlan {
        self.spike = Some(spike);
        self
    }

    /// The attached spike window, if any.
    pub fn load_spike(&self) -> Option<&LoadSpike> {
        self.spike.as_ref()
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-attempt loss probability.
    pub fn loss_rate(&self) -> f64 {
        self.loss
    }

    /// The per-attempt corruption probability.
    pub fn corruption_rate(&self) -> f64 {
        self.corruption
    }

    /// The fate of delivery attempt `attempt` of `chunk`, ignoring any
    /// attached spike window. Loss wins over corruption when both fire
    /// (a lost response has no payload to corrupt).
    pub fn chunk_fault(&self, chunk: ChunkId, attempt: u32) -> ChunkFault {
        // NEG_INFINITY sits outside every spike window, so the
        // time-free entry point keeps its pre-spike behaviour exactly.
        self.chunk_fault_at(chunk, attempt, f64::NEG_INFINITY)
    }

    /// The fate of delivery attempt `attempt` of `chunk` starting at
    /// `now_ms`: like [`FaultPlan::chunk_fault`] but with the spike
    /// multiplier applied to the rates (capped at 1) when `now_ms`
    /// falls inside the spike window. The underlying random draws are
    /// unchanged — a chunk lost at base rates is still lost during the
    /// spike, the spike only loses *more*.
    pub fn chunk_fault_at(&self, chunk: ChunkId, attempt: u32, now_ms: f64) -> ChunkFault {
        let factor = self.spike.map_or(1.0, |s| s.factor_at(now_ms));
        let loss = (self.loss * factor).min(1.0);
        let corruption = (self.corruption * factor).min(1.0);
        let key = (chunk.0 as u64) << 32 | attempt as u64;
        let lost = unit(mix(self.seed ^ SALT_LOSS ^ mix(key))) < loss;
        let corrupted = !lost && unit(mix(self.seed ^ SALT_CORRUPT ^ mix(key))) < corruption;
        ChunkFault { lost, corrupted }
    }

    /// Extra delay a transfer starting at `start_ms` of `bytes` suffers
    /// from a stall event (0 when no stall fires). Keyed on the transfer
    /// coordinates so identical request sequences stall identically.
    pub fn stall_delay_ms(&self, start_ms: f64, bytes: usize) -> f64 {
        if self.stall_rate == 0.0 {
            return 0.0;
        }
        let key = start_ms.to_bits() ^ mix(bytes as u64);
        if unit(mix(self.seed ^ SALT_STALL ^ key)) < self.stall_rate {
            self.stall_ms
        } else {
            0.0
        }
    }

    /// Deterministic uniform jitter in `[0, 1)` for retry back-off,
    /// decorrelated per `(chunk, attempt)`.
    pub fn jitter(&self, chunk: ChunkId, attempt: u32) -> f64 {
        let key = (chunk.0 as u64) << 32 | attempt as u64;
        unit(mix(self.seed ^ SALT_JITTER ^ mix(key)))
    }
}

fn validated_rate(rate: f64, what: &str) -> Result<f64> {
    if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
        return Err(StreamError::InvalidLink(format!("{what} must be in [0, 1]")));
    }
    Ok(rate)
}

/// A [`Link`] wrapper that injects the stall events of a [`FaultPlan`]
/// into any inner link's transfer timing, and carries the plan the
/// fault-aware client consults for chunk loss and corruption.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyLink<L: Link> {
    inner: L,
    plan: FaultPlan,
}

impl<L: Link> FaultyLink<L> {
    /// Wraps `inner` with `plan`'s faults.
    pub fn new(inner: L, plan: FaultPlan) -> FaultyLink<L> {
        FaultyLink { inner, plan }
    }

    /// The fault schedule.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped link.
    pub fn inner(&self) -> &L {
        &self.inner
    }
}

impl<L: Link> Link for FaultyLink<L> {
    fn complete_at(&self, start_ms: f64, bytes: usize) -> f64 {
        let start = start_ms + self.plan.stall_delay_ms(start_ms, bytes);
        self.inner.complete_at(start, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{LinkModel, VariableLink};

    #[test]
    fn fault_plan_validates_rates() {
        assert!(FaultPlan::new(1).with_loss(-0.1).is_err());
        assert!(FaultPlan::new(1).with_loss(1.5).is_err());
        assert!(FaultPlan::new(1).with_loss(f64::NAN).is_err());
        assert!(FaultPlan::new(1).with_corruption(2.0).is_err());
        assert!(FaultPlan::new(1).with_stalls(0.5, -1.0).is_err());
        assert!(FaultPlan::new(1).with_stalls(0.5, f64::INFINITY).is_err());
        assert!(FaultPlan::new(1).with_loss(0.0).is_ok());
        assert!(FaultPlan::new(1).with_loss(1.0).is_ok());
    }

    #[test]
    fn fault_outcomes_are_deterministic() {
        let a = FaultPlan::new(42).with_loss(0.3).unwrap().with_corruption(0.2).unwrap();
        let b = FaultPlan::new(42).with_loss(0.3).unwrap().with_corruption(0.2).unwrap();
        for chunk in 0..200u32 {
            for attempt in 0..4 {
                assert_eq!(
                    a.chunk_fault(ChunkId(chunk), attempt),
                    b.chunk_fault(ChunkId(chunk), attempt)
                );
                assert_eq!(a.jitter(ChunkId(chunk), attempt), b.jitter(ChunkId(chunk), attempt));
            }
        }
    }

    #[test]
    fn fault_seeds_decorrelate() {
        let a = FaultPlan::new(1).with_loss(0.5).unwrap();
        let b = FaultPlan::new(2).with_loss(0.5).unwrap();
        let differing = (0..200u32)
            .filter(|&c| a.chunk_fault(ChunkId(c), 0) != b.chunk_fault(ChunkId(c), 0))
            .count();
        assert!(differing > 50, "only {differing} outcomes differ between seeds");
    }

    #[test]
    fn fault_rates_are_respected_empirically() {
        let plan = FaultPlan::new(7).with_loss(0.10).unwrap();
        let lost = (0..10_000u32)
            .filter(|&c| plan.chunk_fault(ChunkId(c), 0).lost)
            .count();
        // 10% ± generous tolerance over 10k draws.
        assert!((800..1200).contains(&lost), "lost {lost}/10000");
        // Attempts draw independently: a chunk lost on attempt 0 is not
        // doomed on attempt 1.
        let both = (0..10_000u32)
            .filter(|&c| {
                plan.chunk_fault(ChunkId(c), 0).lost && plan.chunk_fault(ChunkId(c), 1).lost
            })
            .count();
        assert!(both < 300, "correlated losses: {both}");
    }

    #[test]
    fn fault_free_plan_is_transparent() {
        let plan = FaultPlan::new(9);
        for c in 0..50u32 {
            assert!(plan.chunk_fault(ChunkId(c), 0).is_clean());
        }
        assert_eq!(plan.stall_delay_ms(123.0, 4096), 0.0);
        let link = LinkModel::mbps(2.0, 20.0).unwrap();
        let faulty = FaultyLink::new(link, plan);
        for bytes in [0usize, 100, 50_000] {
            assert_eq!(link.complete_at(10.0, bytes), faulty.complete_at(10.0, bytes));
        }
    }

    #[test]
    fn fault_stalls_stretch_transfers_deterministically() {
        let plan = FaultPlan::new(3).with_stalls(1.0, 500.0).unwrap();
        let link = LinkModel::mbps(8.0, 10.0).unwrap();
        let faulty = FaultyLink::new(link, plan);
        let plain = link.complete_at(0.0, 10_000);
        let stalled = faulty.complete_at(0.0, 10_000);
        assert!((stalled - plain - 500.0).abs() < 1e-9, "{stalled} vs {plain}");
        assert_eq!(stalled, faulty.complete_at(0.0, 10_000), "deterministic");
    }

    #[test]
    fn faulty_link_composes_with_variable_links() {
        let var = VariableLink::new(vec![(0.0, 8e6), (1000.0, 0.8e6)], 0.0).unwrap();
        let plan = FaultPlan::new(5).with_stalls(0.0, 0.0).unwrap();
        let faulty = FaultyLink::new(var.clone(), plan);
        assert_eq!(var.complete_at(900.0, 125_000), faulty.complete_at(900.0, 125_000));
        assert_eq!(faulty.inner(), &var);
    }

    #[test]
    fn load_spike_validates_and_windows() {
        assert!(LoadSpike::new(f64::NAN, 10.0, 2.0).is_err());
        assert!(LoadSpike::new(0.0, -1.0, 2.0).is_err());
        assert!(LoadSpike::new(0.0, 10.0, 0.5).is_err());
        assert!(LoadSpike::new(0.0, 10.0, f64::INFINITY).is_err());
        let s = LoadSpike::new(100.0, 50.0, 4.0).unwrap();
        assert_eq!(s.factor_at(99.9), 1.0);
        assert_eq!(s.factor_at(100.0), 4.0);
        assert_eq!(s.factor_at(149.9), 4.0);
        assert_eq!(s.factor_at(150.0), 1.0, "window end is exclusive");
    }

    #[test]
    fn load_spike_scales_rates_only_inside_window() {
        let base = FaultPlan::new(21).with_loss(0.05).unwrap();
        let spiked =
            base.with_load_spike(LoadSpike::new(1000.0, 1000.0, 8.0).unwrap());
        // Outside the window the spiked plan behaves exactly like base —
        // including via the time-free entry point.
        for c in 0..300u32 {
            assert_eq!(spiked.chunk_fault_at(ChunkId(c), 0, 0.0), base.chunk_fault(ChunkId(c), 0));
            assert_eq!(spiked.chunk_fault(ChunkId(c), 0), base.chunk_fault(ChunkId(c), 0));
        }
        // Inside: monotone — everything lost at base rate stays lost,
        // and materially more is lost overall.
        let mut base_lost = 0;
        let mut spike_lost = 0;
        for c in 0..2000u32 {
            let b = base.chunk_fault(ChunkId(c), 0);
            let s = spiked.chunk_fault_at(ChunkId(c), 0, 1500.0);
            if b.lost {
                base_lost += 1;
                assert!(s.lost, "spike must not heal chunk {c}");
            }
            if s.lost {
                spike_lost += 1;
            }
        }
        assert!(
            spike_lost > base_lost * 4,
            "spike x8 should multiply losses: {base_lost} -> {spike_lost}"
        );
    }

    #[test]
    fn loss_wins_over_corruption() {
        // With both rates at 1.0 every attempt is lost, never corrupted:
        // a response that never arrives has no payload to corrupt.
        let plan = FaultPlan::new(11).with_loss(1.0).unwrap().with_corruption(1.0).unwrap();
        for c in 0..20u32 {
            let f = plan.chunk_fault(ChunkId(c), 0);
            assert!(f.lost);
            assert!(!f.corrupted);
        }
    }
}
