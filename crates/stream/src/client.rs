//! The streaming-client simulation (EXP-7).
//!
//! Plays a *trace* — the sequence of segments a player visited and for
//! how long (loops included, since scenarios loop their segment while the
//! player explores) — against a [`crate::LinkModel`] and a
//! [`PrefetchPolicy`], accounting startup delay, rebuffering stalls and
//! byte efficiency. Time is simulated; results are exactly reproducible.

use std::collections::{HashMap, HashSet};

use vgbl_media::SegmentId;

use crate::chunk::{ChunkId, ChunkMap};
use crate::link::Link;
#[cfg(test)]
use crate::link::LinkModel;
use crate::prefetch::{PrefetchContext, PrefetchPolicy};
use crate::Result;

/// One step of a playback trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// The segment the player is in.
    pub segment: SegmentId,
    /// How long they stay (the segment loops to fill the time).
    pub watch_ms: f64,
    /// Segments reachable in one transition from here (the scenario
    /// graph's out-edges; input to branch-aware prefetch).
    pub branch_targets: Vec<SegmentId>,
}

/// Results of one simulated session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamStats {
    /// Milliseconds from pressing play to the first frame.
    pub startup_ms: f64,
    /// Mid-session rebuffer events.
    pub stalls: usize,
    /// Total milliseconds spent rebuffering (excluding startup).
    pub stall_ms: f64,
    /// Bytes fetched, including the container header.
    pub bytes_fetched: usize,
    /// Bytes fetched for chunks that never played.
    pub wasted_bytes: usize,
    /// Total milliseconds of content played.
    pub play_ms: f64,
}

impl StreamStats {
    /// Fraction of fetched payload bytes that never played.
    pub fn waste_ratio(&self) -> f64 {
        if self.bytes_fetched == 0 {
            0.0
        } else {
            self.wasted_bytes as f64 / self.bytes_fetched as f64
        }
    }

    /// Rebuffering ratio: stall time over play time.
    pub fn rebuffer_ratio(&self) -> f64 {
        if self.play_ms == 0.0 {
            0.0
        } else {
            self.stall_ms / self.play_ms
        }
    }
}

struct Net<'a, L: Link + ?Sized> {
    link: &'a L,
    busy_until: f64,
    completion: HashMap<ChunkId, f64>,
    bytes: usize,
}

impl<L: Link + ?Sized> Net<'_, L> {
    /// Enqueues a chunk fetch at `now` (no-op if already requested) and
    /// returns its completion time.
    fn fetch(&mut self, map: &ChunkMap, id: ChunkId, now: f64) -> f64 {
        if let Some(&done) = self.completion.get(&id) {
            return done;
        }
        let bytes = map.get(id).map(|c| c.bytes).unwrap_or(0);
        let start = self.busy_until.max(now);
        let done = self.link.complete_at(start, bytes);
        self.busy_until = done;
        self.bytes += bytes;
        self.completion.insert(id, done);
        done
    }
}

/// Simulates one session.
///
/// # Errors
/// Propagates unknown segments in the trace.
pub fn simulate<L: Link + ?Sized>(
    map: &ChunkMap,
    link: &L,
    policy: PrefetchPolicy,
    trace: &[TraceStep],
) -> Result<StreamStats> {
    let mut net = Net { link, busy_until: 0.0, completion: HashMap::new(), bytes: 0 };
    let mut now: f64;
    let mut played: HashSet<ChunkId> = HashSet::new();
    let mut stats = StreamStats {
        startup_ms: 0.0,
        stalls: 0,
        stall_ms: 0.0,
        bytes_fetched: 0,
        wasted_bytes: 0,
        play_ms: 0.0,
    };

    // The container header must arrive before anything can play.
    let header_done = link.complete_at(0.0, map.header_bytes());
    net.busy_until = header_done;
    net.bytes += map.header_bytes();
    now = header_done;

    let mut started = false;
    for step in trace {
        let chunks = map.segment_chunks(step.segment)?;
        if chunks.is_empty() {
            continue;
        }
        let mut watched = 0.0f64;
        let mut idx = 0usize;
        while watched < step.watch_ms || idx == 0 {
            let id = chunks[idx % chunks.len()];
            let done = net.fetch(map, id, now);
            if done > now {
                let wait = done - now;
                if started {
                    stats.stalls += 1;
                    stats.stall_ms += wait;
                }
                now = done;
            }
            if !started {
                stats.startup_ms = now;
                started = true;
            }
            // Prefetch while this chunk plays.
            let ctx = PrefetchContext {
                map,
                playing: id,
                segment: step.segment,
                branch_targets: &step.branch_targets,
            };
            for want in policy.plan(&ctx) {
                net.fetch(map, want, now);
            }
            let play = map.chunk_play_ms(id);
            now += play;
            watched += play;
            stats.play_ms += play;
            played.insert(id);
            idx += 1;
        }
    }

    stats.bytes_fetched = net.bytes;
    stats.wasted_bytes = net
        .completion
        .keys()
        .filter(|id| !played.contains(id))
        .map(|id| map.get(*id).map(|c| c.bytes).unwrap_or(0))
        .sum();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgbl_media::codec::{EncodeConfig, Encoder, Quality};
    use vgbl_media::color::Rgb;
    use vgbl_media::synth::{FootageSpec, ShotSpec, SpriteShape, SpriteSpec};
    use vgbl_media::timeline::FrameRate;
    use vgbl_media::SegmentTable;

    /// 4 segments × 30 frames, busy content so chunks have real weight.
    fn setup() -> ChunkMap {
        let shots = (0..4)
            .map(|i| ShotSpec {
                frames: 30,
                background: Rgb::from_seed(i * 7 + 1),
                sprites: vec![SpriteSpec {
                    shape: SpriteShape::Rect(12, 10),
                    color: Rgb::from_seed(i * 13 + 5),
                    pos: (10.0, 10.0),
                    vel: (2.5, 1.5),
                }],
                luma_drift: 5,
                noise: 2,
            })
            .collect();
        let footage = FootageSpec {
            width: 64,
            height: 48,
            rate: FrameRate::FPS30,
            shots,
            noise_seed: 77,
        }
        .render()
        .unwrap();
        let video = Encoder::new(EncodeConfig {
            gop: 10,
            quality: Quality::Medium,
            ..Default::default()
        })
        .encode(&footage.frames, footage.rate)
        .unwrap();
        let table = SegmentTable::from_cuts(120, &[30, 60, 90]).unwrap();
        ChunkMap::build(&video, &table).unwrap()
    }

    fn linear_trace() -> Vec<TraceStep> {
        (0..4)
            .map(|i| TraceStep {
                segment: SegmentId(i),
                watch_ms: 1000.0,
                branch_targets: if i + 1 < 4 { vec![SegmentId(i + 1)] } else { vec![] },
            })
            .collect()
    }

    #[test]
    fn fast_link_never_stalls_after_startup_with_linear_prefetch() {
        let map = setup();
        let link = LinkModel::mbps(100.0, 5.0).unwrap();
        let stats = simulate(&map, &link, PrefetchPolicy::Linear { lookahead: 3 }, &linear_trace())
            .unwrap();
        assert!(stats.startup_ms > 0.0);
        assert_eq!(stats.stalls, 0, "{stats:?}");
        assert!(stats.play_ms >= 4000.0);
    }

    #[test]
    fn no_prefetch_on_slow_link_stalls_every_new_chunk() {
        let map = setup();
        let link = LinkModel::mbps(0.3, 40.0).unwrap();
        let stats = simulate(&map, &link, PrefetchPolicy::None, &linear_trace()).unwrap();
        assert!(stats.stalls > 0, "{stats:?}");
        assert!(stats.stall_ms > 0.0);
        assert_eq!(stats.wasted_bytes, 0); // on-demand never wastes
    }

    #[test]
    fn prefetch_reduces_stalling_at_equal_bandwidth() {
        let map = setup();
        let link = LinkModel::mbps(1.2, 30.0).unwrap();
        let none = simulate(&map, &link, PrefetchPolicy::None, &linear_trace()).unwrap();
        let linear = simulate(&map, &link, PrefetchPolicy::Linear { lookahead: 3 }, &linear_trace())
            .unwrap();
        assert!(
            linear.stall_ms < none.stall_ms,
            "linear {:?} vs none {:?}",
            linear.stall_ms,
            none.stall_ms
        );
    }

    /// A branching trace: the player jumps 0 → 2 → 1 (non-linear).
    fn branchy_trace() -> Vec<TraceStep> {
        vec![
            TraceStep {
                segment: SegmentId(0),
                watch_ms: 2500.0,
                branch_targets: vec![SegmentId(2), SegmentId(3)],
            },
            TraceStep {
                segment: SegmentId(2),
                watch_ms: 2500.0,
                branch_targets: vec![SegmentId(1)],
            },
            TraceStep {
                segment: SegmentId(1),
                watch_ms: 1000.0,
                branch_targets: vec![],
            },
        ]
    }

    #[test]
    fn branch_aware_beats_linear_on_jumps() {
        let map = setup();
        let link = LinkModel::mbps(1.5, 30.0).unwrap();
        let linear =
            simulate(&map, &link, PrefetchPolicy::Linear { lookahead: 2 }, &branchy_trace())
                .unwrap();
        let branch =
            simulate(&map, &link, PrefetchPolicy::BranchAware { per_branch: 2 }, &branchy_trace())
                .unwrap();
        assert!(
            branch.stall_ms < linear.stall_ms,
            "branch {:?} vs linear {:?}",
            branch.stall_ms,
            linear.stall_ms
        );
    }

    #[test]
    fn branch_aware_wastes_unvisited_branches() {
        let map = setup();
        let link = LinkModel::mbps(50.0, 5.0).unwrap();
        let stats =
            simulate(&map, &link, PrefetchPolicy::BranchAware { per_branch: 2 }, &branchy_trace())
                .unwrap();
        // Segment 3 was prefetched but never visited.
        assert!(stats.wasted_bytes > 0);
        assert!(stats.waste_ratio() > 0.0 && stats.waste_ratio() < 1.0);
    }

    #[test]
    fn startup_scales_with_bandwidth() {
        let map = setup();
        let slow = simulate(
            &map,
            &LinkModel::mbps(0.5, 30.0).unwrap(),
            PrefetchPolicy::None,
            &linear_trace(),
        )
        .unwrap();
        let fast = simulate(
            &map,
            &LinkModel::mbps(16.0, 30.0).unwrap(),
            PrefetchPolicy::None,
            &linear_trace(),
        )
        .unwrap();
        assert!(fast.startup_ms < slow.startup_ms);
    }

    #[test]
    fn unknown_segment_in_trace_errors() {
        let map = setup();
        let link = LinkModel::mbps(1.0, 10.0).unwrap();
        let trace = vec![TraceStep {
            segment: SegmentId(99),
            watch_ms: 100.0,
            branch_targets: vec![],
        }];
        assert!(simulate(&map, &link, PrefetchPolicy::None, &trace).is_err());
    }

    #[test]
    fn simulation_is_deterministic() {
        let map = setup();
        let link = LinkModel::mbps(2.0, 20.0).unwrap();
        let a = simulate(&map, &link, PrefetchPolicy::BranchAware { per_branch: 1 }, &branchy_trace())
            .unwrap();
        let b = simulate(&map, &link, PrefetchPolicy::BranchAware { per_branch: 1 }, &branchy_trace())
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rebuffer_ratio_sane() {
        let map = setup();
        let link = LinkModel::mbps(0.4, 30.0).unwrap();
        let stats = simulate(&map, &link, PrefetchPolicy::None, &linear_trace()).unwrap();
        assert!(stats.rebuffer_ratio() > 0.0);
        let zero = StreamStats {
            startup_ms: 0.0,
            stalls: 0,
            stall_ms: 0.0,
            bytes_fetched: 0,
            wasted_bytes: 0,
            play_ms: 0.0,
        };
        assert_eq!(zero.rebuffer_ratio(), 0.0);
        assert_eq!(zero.waste_ratio(), 0.0);
    }
}
