//! The streaming-client simulation (EXP-7, EXP-12).
//!
//! Plays a *trace* — the sequence of segments a player visited and for
//! how long (loops included, since scenarios loop their segment while the
//! player explores) — against a [`crate::LinkModel`] and a
//! [`PrefetchPolicy`], accounting startup delay, rebuffering stalls and
//! byte efficiency. Time is simulated; results are exactly reproducible.
//!
//! The fault-aware entry point [`simulate_faulty`] additionally drives a
//! [`FaultyLink`]: chunk fetches get per-chunk deadlines, bounded retries
//! with capped exponential back-off and deterministic jitter, corrupted
//! arrivals are detected by the container checksum and re-fetched, and a
//! chunk whose retry budget runs out is *concealed* (freeze-frame for its
//! play duration) instead of aborting the session.

use std::collections::{HashMap, HashSet};

use vgbl_media::SegmentId;
use vgbl_obs::{us_from_ms, Counter, Histogram, Obs, Series, SeriesSpec, SpanRecorder};

use crate::breaker::CircuitBreaker;
use crate::chunk::{ChunkId, ChunkMap};
use crate::fault::{FaultPlan, FaultyLink};
use crate::link::Link;
#[cfg(test)]
use crate::link::LinkModel;
use crate::prefetch::{PrefetchContext, PrefetchPolicy};
use crate::{Result, StreamError};

/// One step of a playback trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// The segment the player is in.
    pub segment: SegmentId,
    /// How long they stay (the segment loops to fill the time).
    pub watch_ms: f64,
    /// Segments reachable in one transition from here (the scenario
    /// graph's out-edges; input to branch-aware prefetch).
    pub branch_targets: Vec<SegmentId>,
}

/// Results of one simulated session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamStats {
    /// Milliseconds from pressing play to the first frame.
    pub startup_ms: f64,
    /// Mid-session rebuffer events.
    pub stalls: usize,
    /// Total milliseconds spent rebuffering (excluding startup).
    pub stall_ms: f64,
    /// Bytes fetched, including the container header.
    pub bytes_fetched: usize,
    /// Bytes fetched for chunks that never played.
    pub wasted_bytes: usize,
    /// Total milliseconds of content played.
    pub play_ms: f64,
    /// Re-requests issued after a lost or corrupted delivery attempt.
    pub retries: usize,
    /// Delivery attempts that hit their deadline (lost responses).
    pub timeouts: usize,
    /// Chunks abandoned after exhausting the retry budget (or rejected
    /// outright by an open circuit breaker; see
    /// [`StreamStats::fast_failed`]).
    pub gave_up: usize,
    /// Milliseconds covered by freeze-frame concealment of abandoned
    /// chunks (never part of [`StreamStats::play_ms`]).
    pub conceal_ms: f64,
    /// Chunk requests rejected by an open [`crate::CircuitBreaker`]
    /// without touching the link (a subset of
    /// [`StreamStats::gave_up`]; 0 when no breaker is attached).
    pub fast_failed: usize,
}

impl StreamStats {
    /// Fraction of fetched payload bytes that never played. Lower is
    /// better; **empty input (nothing fetched) returns the perfect
    /// value `0.0`** — the workspace-wide convention for ratio metrics.
    pub fn waste_ratio(&self) -> f64 {
        if self.bytes_fetched == 0 {
            0.0
        } else {
            self.wasted_bytes as f64 / self.bytes_fetched as f64
        }
    }

    /// Rebuffering ratio: stall time over play time. Lower is better;
    /// **empty input (no stalls, no playback) returns the perfect value
    /// `0.0`**. A session that stalled without ever playing a frame is
    /// the *worst* possible playback, not a perfect one, so it returns
    /// `f64::INFINITY` rather than silently reporting `0.0`.
    pub fn rebuffer_ratio(&self) -> f64 {
        if self.play_ms == 0.0 {
            if self.stall_ms > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            self.stall_ms / self.play_ms
        }
    }

    /// Fraction of watched time served from real content rather than
    /// concealment; 1.0 for a fault-free session. Higher is better;
    /// **empty input (nothing watched) returns the perfect value
    /// `1.0`** — the workspace-wide convention for ratio metrics.
    pub fn delivery_ratio(&self) -> f64 {
        let total = self.play_ms + self.conceal_ms;
        if total == 0.0 {
            1.0
        } else {
            self.play_ms / total
        }
    }
}

/// Bounded-retry schedule for chunk fetches over a faulty link: capped
/// exponential back-off deadlines plus deterministic jitter (drawn from
/// the fault plan's seed, so runs reproduce exactly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Re-requests allowed per chunk after the initial attempt.
    pub max_retries: u32,
    /// Deadline for the first attempt, in milliseconds.
    pub base_timeout_ms: f64,
    /// Multiplier applied to the deadline per retry (≥ 1).
    pub backoff: f64,
    /// Upper bound on any single deadline, in milliseconds.
    pub max_timeout_ms: f64,
    /// Amplitude of the deterministic jitter added to each deadline.
    pub jitter_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_timeout_ms: 250.0,
            backoff: 2.0,
            max_timeout_ms: 2000.0,
            jitter_ms: 25.0,
        }
    }
}

impl RetryPolicy {
    /// The deadline of attempt `attempt` (0-based), given a uniform
    /// jitter draw in `[0, 1)`.
    ///
    /// Saturates rather than overflowing: the exponent is clamped before
    /// `powi` (beyond ~2^64 every realistic back-off has hit the cap
    /// anyway), and a back-off product that still lands on ±inf/NaN —
    /// possible for degenerate, unvalidated policies — collapses to
    /// `max_timeout_ms` instead of poisoning the simulated clock.
    pub fn deadline_ms(&self, attempt: u32, jitter_unit: f64) -> f64 {
        let backed_off = self.base_timeout_ms * self.backoff.powi(attempt.min(64) as i32);
        let capped = if backed_off.is_finite() {
            backed_off.min(self.max_timeout_ms)
        } else {
            self.max_timeout_ms
        };
        // The jitter term can still be ±inf/NaN for an unvalidated
        // policy (infinite jitter_ms, or a hostile jitter_unit); the
        // final sum must stay finite or the caller's clock is poisoned.
        let deadline = capped + jitter_unit * self.jitter_ms;
        if deadline.is_finite() {
            deadline
        } else {
            self.max_timeout_ms
        }
    }

    fn validate(&self) -> Result<()> {
        let bad = |msg: &str| StreamError::InvalidLink(msg.into());
        if !self.base_timeout_ms.is_finite() || self.base_timeout_ms <= 0.0 {
            return Err(bad("retry base timeout must be positive"));
        }
        if !self.backoff.is_finite() || self.backoff < 1.0 {
            return Err(bad("retry backoff factor must be >= 1"));
        }
        if !self.max_timeout_ms.is_finite() || self.max_timeout_ms < self.base_timeout_ms {
            return Err(bad("retry timeout cap must be >= the base timeout"));
        }
        if !self.jitter_ms.is_finite() || self.jitter_ms < 0.0 {
            return Err(bad("retry jitter must be non-negative"));
        }
        Ok(())
    }
}

/// Outcome of one fault-aware session: the stats plus exactly which
/// chunks arrived intact and which were abandoned to concealment —
/// the inputs a bit-exactness check needs.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyStreamReport {
    /// Session statistics (same schema as the fault-free path).
    pub stats: StreamStats,
    /// Chunks delivered intact (checksum-verified), ascending.
    pub delivered: Vec<ChunkId>,
    /// Chunks abandoned after the retry budget, ascending.
    pub concealed: Vec<ChunkId>,
}

/// Resolved observability handles plus the session's span recorder,
/// threaded through the simulation core. The disabled form (what the
/// unobserved entry points use) costs one `Option`/`bool` check per
/// event site, keeping the hot path unaffected.
///
/// The counters accumulate in the obs registry *independently* of
/// [`StreamStats`]' own accounting — two separate tallies of the same
/// event sites — which is exactly what lets EXP-13 cross-check them
/// against each other and catch silent drift in either.
struct SimObs {
    rec: SpanRecorder,
    requests: Counter,
    retries: Counter,
    timeouts: Counter,
    gave_up: Counter,
    fast_failed: Counter,
    delivered: Counter,
    stalls: Counter,
    concealed_chunks: Counter,
    fetch_latency_us: Histogram,
    // Windowed time series on the simulated playback clock, so a
    // latency spike or stall burst is attributable to *when* it
    // happened, not just that it happened somewhere in the session.
    fetch_latency_series: Series,
    timeout_series: Series,
    stall_series: Series,
}

/// Bin width for the stream time series: quarter-second bins over a
/// 16 s sliding horizon, matching the scale of a chunked session.
const STREAM_BIN_US: u64 = 250_000;
/// Ring length for the stream time series.
const STREAM_BINS: usize = 64;

impl SimObs {
    fn disabled() -> SimObs {
        SimObs::new(&Obs::noop(), String::new())
    }

    fn new(obs: &Obs, label: String) -> SimObs {
        let labels: &[(&str, &str)] = &[("pillar", "stream")];
        SimObs {
            rec: obs.recorder(label),
            requests: obs.counter("fetch.requests", labels),
            retries: obs.counter("fetch.retries", labels),
            timeouts: obs.counter("fetch.timeouts", labels),
            gave_up: obs.counter("fetch.gave_up", labels),
            fast_failed: obs.counter("fetch.fast_failed", labels),
            delivered: obs.counter("fetch.delivered", labels),
            stalls: obs.counter("session.stalls", labels),
            concealed_chunks: obs.counter("conceal.chunks", labels),
            fetch_latency_us: obs.histogram("fetch.latency_us", labels),
            fetch_latency_series: obs.series(SeriesSpec::histogram(
                "stream.fetch_latency_us",
                STREAM_BIN_US,
                STREAM_BINS,
            )),
            timeout_series: obs
                .series(SeriesSpec::counter("stream.timeouts", STREAM_BIN_US, STREAM_BINS)),
            stall_series: obs
                .series(SeriesSpec::counter("stream.stalls", STREAM_BIN_US, STREAM_BINS)),
        }
    }
}

/// How a chunk request resolved.
enum Fetched {
    /// Intact payload available at the given time.
    Delivered(f64),
    /// Retry budget exhausted at the given time; the chunk never arrives.
    Failed(f64),
}

struct Net<'a, L: Link + ?Sized> {
    link: &'a L,
    faults: Option<(&'a FaultPlan, &'a RetryPolicy)>,
    breaker: Option<&'a mut CircuitBreaker>,
    busy_until: f64,
    completion: HashMap<ChunkId, f64>,
    failed: HashSet<ChunkId>,
    bytes: usize,
    retries: usize,
    timeouts: usize,
    fast_failed: usize,
}

impl<L: Link + ?Sized> Net<'_, L> {
    /// Resolves a chunk fetch at `now` (memoised: a chunk is fetched —
    /// or abandoned — at most once per session) and returns when its
    /// payload is available, or when the client gave up on it.
    fn fetch(&mut self, map: &ChunkMap, id: ChunkId, now: f64, sobs: &mut SimObs) -> Fetched {
        if let Some(&done) = self.completion.get(&id) {
            return Fetched::Delivered(done);
        }
        if self.failed.contains(&id) {
            return Fetched::Failed(now);
        }
        sobs.requests.inc();
        let (bytes, checksum) = map
            .get(id)
            .map(|c| (c.bytes, c.checksum))
            .unwrap_or((0, 0));
        let Some((plan, retry)) = self.faults else {
            // Pristine pipe: one attempt, always delivered.
            let start = self.busy_until.max(now);
            let done = self.link.complete_at(start, bytes);
            self.busy_until = done;
            self.bytes += bytes;
            self.completion.insert(id, done);
            sobs.delivered.inc();
            sobs.fetch_latency_us.record(us_from_ms(done - now));
            sobs.fetch_latency_series.record(us_from_ms(done), us_from_ms(done - now));
            return Fetched::Delivered(done);
        };
        let mut t = self.busy_until.max(now);
        // Fail fast on an open breaker: the chunk is abandoned to
        // concealment without burning any retry budget or link time.
        if let Some(b) = self.breaker.as_deref_mut() {
            if !b.allow(t) {
                self.fast_failed += 1;
                sobs.fast_failed.inc();
                self.failed.insert(id);
                sobs.gave_up.inc();
                return Fetched::Failed(t);
            }
        }
        for attempt in 0..=retry.max_retries {
            if attempt > 0 {
                self.retries += 1;
                sobs.retries.inc();
            }
            let fault = plan.chunk_fault_at(id, attempt, t);
            if fault.lost {
                // The response never arrives: the pipe is blocked until
                // the attempt's deadline expires, then we re-request.
                self.timeouts += 1;
                sobs.timeouts.inc();
                sobs.timeout_series.record(us_from_ms(t), 1);
                t += retry.deadline_ms(attempt, plan.jitter(id, attempt));
                if let Some(b) = self.breaker.as_deref_mut() {
                    b.on_failure(t);
                }
                continue;
            }
            let done = self.link.complete_at(t, bytes);
            self.bytes += bytes;
            // Integrity check on arrival: the container checksum path.
            // A corrupted payload hashes to a different FNV-1a value
            // than the chunk map recorded at build time.
            let received = if fault.corrupted {
                checksum ^ (1u64 << (attempt % 64)).max(1)
            } else {
                checksum
            };
            if received != checksum {
                // Discard the damaged payload and re-request.
                t = done;
                if let Some(b) = self.breaker.as_deref_mut() {
                    b.on_failure(t);
                }
                continue;
            }
            self.busy_until = done;
            self.completion.insert(id, done);
            if let Some(b) = self.breaker.as_deref_mut() {
                b.on_success(done);
            }
            sobs.delivered.inc();
            sobs.fetch_latency_us.record(us_from_ms(done - now));
            sobs.fetch_latency_series.record(us_from_ms(done), us_from_ms(done - now));
            return Fetched::Delivered(done);
        }
        self.busy_until = t;
        self.failed.insert(id);
        sobs.gave_up.inc();
        Fetched::Failed(t)
    }
}

/// Simulates one session over a pristine link.
///
/// # Errors
/// Propagates unknown segments in the trace.
pub fn simulate<L: Link + ?Sized>(
    map: &ChunkMap,
    link: &L,
    policy: PrefetchPolicy,
    trace: &[TraceStep],
) -> Result<StreamStats> {
    sim_core(map, link, None, None, policy, trace, &mut SimObs::disabled()).map(|r| r.stats)
}

/// [`simulate`] with observability: fetch events feed `fetch.*`
/// counters and the `fetch.latency_us` histogram (labelled
/// `pillar=stream`), and the session exports a trace under `label` with
/// a `session` root span, one `dwell` span per trace step (arg = the
/// segment id) and `stall` spans over rebuffer waits — all on the
/// simulated millisecond clock, never wall time.
///
/// # Errors
/// Propagates unknown segments in the trace (the partial trace recorded
/// up to the error is still attached, panic-safe-flush style).
pub fn simulate_observed<L: Link + ?Sized>(
    map: &ChunkMap,
    link: &L,
    policy: PrefetchPolicy,
    trace: &[TraceStep],
    obs: &Obs,
    label: String,
) -> Result<StreamStats> {
    let mut sobs = SimObs::new(obs, label);
    let out = sim_core(map, link, None, None, policy, trace, &mut sobs);
    obs.attach(sobs.rec);
    out.map(|r| r.stats)
}

/// Simulates one session over a faulty link: deadlines, bounded retries
/// with capped exponential back-off + deterministic jitter, checksum
/// verification of arrivals, and freeze-frame concealment of chunks
/// whose retry budget runs out. Never panics and never errors on
/// delivery failures — only on structural problems (unknown segments,
/// invalid retry policy).
///
/// # Errors
/// Propagates unknown segments in the trace and invalid [`RetryPolicy`]
/// parameters.
pub fn simulate_faulty<L: Link>(
    map: &ChunkMap,
    link: &FaultyLink<L>,
    policy: PrefetchPolicy,
    retry: &RetryPolicy,
    trace: &[TraceStep],
) -> Result<FaultyStreamReport> {
    retry.validate()?;
    sim_core(map, link, Some((link.plan(), retry)), None, policy, trace, &mut SimObs::disabled())
}

/// [`simulate_faulty`] with observability: everything
/// [`simulate_observed`] records, plus the fault path's `fetch.retries`
/// / `fetch.timeouts` / `fetch.gave_up` / `conceal.chunks` counters and
/// `conceal` spans (arg = the abandoned chunk id) in the session trace.
/// These counters tally the same event sites as
/// [`FaultyStreamReport::stats`] through an independent accumulation
/// path, so EXP-13 can cross-check the two exactly.
///
/// # Errors
/// Propagates unknown segments in the trace and invalid [`RetryPolicy`]
/// parameters.
pub fn simulate_faulty_observed<L: Link>(
    map: &ChunkMap,
    link: &FaultyLink<L>,
    policy: PrefetchPolicy,
    retry: &RetryPolicy,
    trace: &[TraceStep],
    obs: &Obs,
    label: String,
) -> Result<FaultyStreamReport> {
    retry.validate()?;
    let mut sobs = SimObs::new(obs, label);
    let out = sim_core(map, link, Some((link.plan(), retry)), None, policy, trace, &mut sobs);
    obs.attach(sobs.rec);
    out
}

/// [`simulate_faulty`] with a [`CircuitBreaker`] guarding the chunk
/// path: each chunk request first asks the breaker; while it is open,
/// chunks are abandoned to concealment immediately (counted in
/// [`StreamStats::fast_failed`]) instead of burning the retry budget.
/// Per-attempt outcomes (timeouts, corrupt arrivals, deliveries) feed
/// the breaker, and the caller's breaker carries its state across
/// sessions — the supervisor shares one per link.
///
/// # Errors
/// Propagates unknown segments in the trace and invalid [`RetryPolicy`]
/// parameters.
pub fn simulate_faulty_with_breaker<L: Link>(
    map: &ChunkMap,
    link: &FaultyLink<L>,
    policy: PrefetchPolicy,
    retry: &RetryPolicy,
    breaker: &mut CircuitBreaker,
    trace: &[TraceStep],
) -> Result<FaultyStreamReport> {
    retry.validate()?;
    sim_core(
        map,
        link,
        Some((link.plan(), retry)),
        Some(breaker),
        policy,
        trace,
        &mut SimObs::disabled(),
    )
}

/// [`simulate_faulty_with_breaker`] with observability (the union of
/// [`simulate_faulty_observed`]'s recording and the breaker's
/// `fetch.fast_failed` counter).
///
/// # Errors
/// Propagates unknown segments in the trace and invalid [`RetryPolicy`]
/// parameters.
#[allow(clippy::too_many_arguments)]
pub fn simulate_faulty_with_breaker_observed<L: Link>(
    map: &ChunkMap,
    link: &FaultyLink<L>,
    policy: PrefetchPolicy,
    retry: &RetryPolicy,
    breaker: &mut CircuitBreaker,
    trace: &[TraceStep],
    obs: &Obs,
    label: String,
) -> Result<FaultyStreamReport> {
    retry.validate()?;
    let mut sobs = SimObs::new(obs, label);
    let out =
        sim_core(map, link, Some((link.plan(), retry)), Some(breaker), policy, trace, &mut sobs);
    obs.attach(sobs.rec);
    out
}

fn sim_core<L: Link + ?Sized>(
    map: &ChunkMap,
    link: &L,
    faults: Option<(&FaultPlan, &RetryPolicy)>,
    breaker: Option<&mut CircuitBreaker>,
    policy: PrefetchPolicy,
    trace: &[TraceStep],
    sobs: &mut SimObs,
) -> Result<FaultyStreamReport> {
    let mut net = Net {
        link,
        faults,
        breaker,
        busy_until: 0.0,
        completion: HashMap::new(),
        failed: HashSet::new(),
        bytes: 0,
        retries: 0,
        timeouts: 0,
        fast_failed: 0,
    };
    let mut now: f64;
    let mut played: HashSet<ChunkId> = HashSet::new();
    let mut stats = StreamStats {
        startup_ms: 0.0,
        stalls: 0,
        stall_ms: 0.0,
        bytes_fetched: 0,
        wasted_bytes: 0,
        play_ms: 0.0,
        retries: 0,
        timeouts: 0,
        gave_up: 0,
        conceal_ms: 0.0,
        fast_failed: 0,
    };

    // The container header must arrive before anything can play.
    let header_done = link.complete_at(0.0, map.header_bytes());
    net.busy_until = header_done;
    net.bytes += map.header_bytes();
    now = header_done;

    sobs.rec.enter("session", 0);
    let mut started = false;
    for step in trace {
        let chunks = match map.segment_chunks(step.segment) {
            Ok(chunks) => chunks,
            Err(e) => {
                // Panic-safe-flush convention: the partial trace stays
                // well-formed even when the session dies structurally.
                sobs.rec.close_all(us_from_ms(now));
                return Err(e);
            }
        };
        if chunks.is_empty() {
            continue;
        }
        sobs.rec.enter_with("dwell", step.segment.0 as u64, us_from_ms(now));
        let mut watched = 0.0f64;
        let mut idx = 0usize;
        while watched < step.watch_ms || idx == 0 {
            let id = chunks[idx % chunks.len()];
            let (available, delivered) = match net.fetch(map, id, now, sobs) {
                Fetched::Delivered(t) => (t, true),
                Fetched::Failed(t) => (t, false),
            };
            if available > now {
                let wait = available - now;
                if started {
                    stats.stalls += 1;
                    stats.stall_ms += wait;
                    sobs.stalls.inc();
                    sobs.stall_series.record(us_from_ms(now), 1);
                    sobs.rec.enter_with("stall", id.0 as u64, us_from_ms(now));
                    sobs.rec.exit(us_from_ms(available));
                }
                now = available;
            }
            if !started {
                stats.startup_ms = now;
                started = true;
            }
            let play = map.chunk_play_ms(id);
            if delivered {
                // Prefetch while this chunk plays.
                let ctx = PrefetchContext {
                    map,
                    playing: id,
                    segment: step.segment,
                    branch_targets: &step.branch_targets,
                };
                for want in policy.plan(&ctx) {
                    net.fetch(map, want, now, sobs);
                }
                stats.play_ms += play;
                played.insert(id);
            } else {
                // Freeze-frame concealment: wall time advances over the
                // chunk's duration, but no new content plays.
                stats.conceal_ms += play;
                sobs.concealed_chunks.inc();
                sobs.rec.enter_with("conceal", id.0 as u64, us_from_ms(now));
                sobs.rec.exit(us_from_ms(now + play));
            }
            now += play;
            watched += play;
            idx += 1;
        }
        sobs.rec.exit(us_from_ms(now));
    }
    sobs.rec.exit(us_from_ms(now));

    stats.bytes_fetched = net.bytes;
    stats.retries = net.retries;
    stats.timeouts = net.timeouts;
    stats.gave_up = net.failed.len();
    stats.fast_failed = net.fast_failed;
    stats.wasted_bytes = net
        .completion
        .keys()
        .filter(|id| !played.contains(id))
        .map(|id| map.get(*id).map(|c| c.bytes).unwrap_or(0))
        .sum();
    let mut delivered: Vec<ChunkId> = net.completion.keys().copied().collect();
    delivered.sort_unstable();
    let mut concealed: Vec<ChunkId> = net.failed.iter().copied().collect();
    concealed.sort_unstable();
    Ok(FaultyStreamReport { stats, delivered, concealed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgbl_media::codec::{EncodeConfig, Encoder, Quality};
    use vgbl_media::color::Rgb;
    use vgbl_media::synth::{FootageSpec, ShotSpec, SpriteShape, SpriteSpec};
    use vgbl_media::timeline::FrameRate;
    use vgbl_media::SegmentTable;

    /// 4 segments × 30 frames, busy content so chunks have real weight.
    fn setup() -> ChunkMap {
        let shots = (0..4)
            .map(|i| ShotSpec {
                frames: 30,
                background: Rgb::from_seed(i * 7 + 1),
                sprites: vec![SpriteSpec {
                    shape: SpriteShape::Rect(12, 10),
                    color: Rgb::from_seed(i * 13 + 5),
                    pos: (10.0, 10.0),
                    vel: (2.5, 1.5),
                }],
                luma_drift: 5,
                noise: 2,
            })
            .collect();
        let footage = FootageSpec {
            width: 64,
            height: 48,
            rate: FrameRate::FPS30,
            shots,
            noise_seed: 77,
        }
        .render()
        .unwrap();
        let video = Encoder::new(EncodeConfig {
            gop: 10,
            quality: Quality::Medium,
            ..Default::default()
        })
        .encode(&footage.frames, footage.rate)
        .unwrap();
        let table = SegmentTable::from_cuts(120, &[30, 60, 90]).unwrap();
        ChunkMap::build(&video, &table).unwrap()
    }

    fn linear_trace() -> Vec<TraceStep> {
        (0..4)
            .map(|i| TraceStep {
                segment: SegmentId(i),
                watch_ms: 1000.0,
                branch_targets: if i + 1 < 4 { vec![SegmentId(i + 1)] } else { vec![] },
            })
            .collect()
    }

    #[test]
    fn fast_link_never_stalls_after_startup_with_linear_prefetch() {
        let map = setup();
        let link = LinkModel::mbps(100.0, 5.0).unwrap();
        let stats = simulate(&map, &link, PrefetchPolicy::Linear { lookahead: 3 }, &linear_trace())
            .unwrap();
        assert!(stats.startup_ms > 0.0);
        assert_eq!(stats.stalls, 0, "{stats:?}");
        assert!(stats.play_ms >= 4000.0);
    }

    #[test]
    fn no_prefetch_on_slow_link_stalls_every_new_chunk() {
        let map = setup();
        let link = LinkModel::mbps(0.3, 40.0).unwrap();
        let stats = simulate(&map, &link, PrefetchPolicy::None, &linear_trace()).unwrap();
        assert!(stats.stalls > 0, "{stats:?}");
        assert!(stats.stall_ms > 0.0);
        assert_eq!(stats.wasted_bytes, 0); // on-demand never wastes
    }

    #[test]
    fn prefetch_reduces_stalling_at_equal_bandwidth() {
        let map = setup();
        let link = LinkModel::mbps(1.2, 30.0).unwrap();
        let none = simulate(&map, &link, PrefetchPolicy::None, &linear_trace()).unwrap();
        let linear = simulate(&map, &link, PrefetchPolicy::Linear { lookahead: 3 }, &linear_trace())
            .unwrap();
        assert!(
            linear.stall_ms < none.stall_ms,
            "linear {:?} vs none {:?}",
            linear.stall_ms,
            none.stall_ms
        );
    }

    /// A branching trace: the player jumps 0 → 2 → 1 (non-linear).
    fn branchy_trace() -> Vec<TraceStep> {
        vec![
            TraceStep {
                segment: SegmentId(0),
                watch_ms: 2500.0,
                branch_targets: vec![SegmentId(2), SegmentId(3)],
            },
            TraceStep {
                segment: SegmentId(2),
                watch_ms: 2500.0,
                branch_targets: vec![SegmentId(1)],
            },
            TraceStep {
                segment: SegmentId(1),
                watch_ms: 1000.0,
                branch_targets: vec![],
            },
        ]
    }

    #[test]
    fn branch_aware_beats_linear_on_jumps() {
        let map = setup();
        let link = LinkModel::mbps(1.5, 30.0).unwrap();
        let linear =
            simulate(&map, &link, PrefetchPolicy::Linear { lookahead: 2 }, &branchy_trace())
                .unwrap();
        let branch =
            simulate(&map, &link, PrefetchPolicy::BranchAware { per_branch: 2 }, &branchy_trace())
                .unwrap();
        assert!(
            branch.stall_ms < linear.stall_ms,
            "branch {:?} vs linear {:?}",
            branch.stall_ms,
            linear.stall_ms
        );
    }

    #[test]
    fn branch_aware_wastes_unvisited_branches() {
        let map = setup();
        let link = LinkModel::mbps(50.0, 5.0).unwrap();
        let stats =
            simulate(&map, &link, PrefetchPolicy::BranchAware { per_branch: 2 }, &branchy_trace())
                .unwrap();
        // Segment 3 was prefetched but never visited.
        assert!(stats.wasted_bytes > 0);
        assert!(stats.waste_ratio() > 0.0 && stats.waste_ratio() < 1.0);
    }

    #[test]
    fn startup_scales_with_bandwidth() {
        let map = setup();
        let slow = simulate(
            &map,
            &LinkModel::mbps(0.5, 30.0).unwrap(),
            PrefetchPolicy::None,
            &linear_trace(),
        )
        .unwrap();
        let fast = simulate(
            &map,
            &LinkModel::mbps(16.0, 30.0).unwrap(),
            PrefetchPolicy::None,
            &linear_trace(),
        )
        .unwrap();
        assert!(fast.startup_ms < slow.startup_ms);
    }

    #[test]
    fn unknown_segment_in_trace_errors() {
        let map = setup();
        let link = LinkModel::mbps(1.0, 10.0).unwrap();
        let trace = vec![TraceStep {
            segment: SegmentId(99),
            watch_ms: 100.0,
            branch_targets: vec![],
        }];
        assert!(simulate(&map, &link, PrefetchPolicy::None, &trace).is_err());
    }

    #[test]
    fn simulation_is_deterministic() {
        let map = setup();
        let link = LinkModel::mbps(2.0, 20.0).unwrap();
        let a = simulate(&map, &link, PrefetchPolicy::BranchAware { per_branch: 1 }, &branchy_trace())
            .unwrap();
        let b = simulate(&map, &link, PrefetchPolicy::BranchAware { per_branch: 1 }, &branchy_trace())
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rebuffer_ratio_sane() {
        let map = setup();
        let link = LinkModel::mbps(0.4, 30.0).unwrap();
        let stats = simulate(&map, &link, PrefetchPolicy::None, &linear_trace()).unwrap();
        assert!(stats.rebuffer_ratio() > 0.0);
        let zero = StreamStats {
            startup_ms: 0.0,
            stalls: 0,
            stall_ms: 0.0,
            bytes_fetched: 0,
            wasted_bytes: 0,
            play_ms: 0.0,
            retries: 0,
            timeouts: 0,
            gave_up: 0,
            conceal_ms: 0.0,
            fast_failed: 0,
        };
        assert_eq!(zero.rebuffer_ratio(), 0.0);
        assert_eq!(zero.waste_ratio(), 0.0);
        assert_eq!(zero.delivery_ratio(), 1.0);
    }

    /// Regression: a session that only ever stalled (stall time but zero
    /// play time) used to report a *perfect* rebuffer ratio of 0.0.
    #[test]
    fn rebuffer_ratio_stalled_forever_is_degraded_not_perfect() {
        let stalled = StreamStats {
            startup_ms: 0.0,
            stalls: 3,
            stall_ms: 1500.0,
            bytes_fetched: 0,
            wasted_bytes: 0,
            play_ms: 0.0,
            retries: 0,
            timeouts: 0,
            gave_up: 0,
            conceal_ms: 0.0,
            fast_failed: 0,
        };
        assert_eq!(stalled.rebuffer_ratio(), f64::INFINITY);
        // And a normal session is unaffected by the fix.
        let playing = StreamStats { play_ms: 1000.0, ..stalled };
        assert!((playing.rebuffer_ratio() - 1.5).abs() < 1e-12);
    }

    // ---- fault-injection coverage ----------------------------------

    #[test]
    fn fault_free_faulty_path_matches_pristine_simulation() {
        let map = setup();
        let link = LinkModel::mbps(1.5, 25.0).unwrap();
        let plain = simulate(&map, &link, PrefetchPolicy::Linear { lookahead: 2 }, &linear_trace())
            .unwrap();
        let faulty = FaultyLink::new(link, FaultPlan::new(1));
        let report = simulate_faulty(
            &map,
            &faulty,
            PrefetchPolicy::Linear { lookahead: 2 },
            &RetryPolicy::default(),
            &linear_trace(),
        )
        .unwrap();
        assert_eq!(plain, report.stats);
        assert!(report.concealed.is_empty());
    }

    #[test]
    fn fault_loss_triggers_timeouts_and_retries() {
        let map = setup();
        let link = LinkModel::mbps(2.0, 20.0).unwrap();
        let faulty =
            FaultyLink::new(link, FaultPlan::new(42).with_loss(0.3).unwrap());
        let report = simulate_faulty(
            &map,
            &faulty,
            PrefetchPolicy::None,
            &RetryPolicy::default(),
            &linear_trace(),
        )
        .unwrap();
        assert!(report.stats.timeouts > 0, "{:?}", report.stats);
        assert!(report.stats.retries > 0);
        assert!(report.stats.retries >= report.stats.timeouts - report.stats.gave_up);
        // Heavy loss costs wall time versus the clean run.
        let clean = simulate(&map, &link, PrefetchPolicy::None, &linear_trace()).unwrap();
        assert!(report.stats.stall_ms + report.stats.startup_ms > clean.stall_ms + clean.startup_ms);
    }

    #[test]
    fn fault_corruption_refetches_until_checksum_matches() {
        let map = setup();
        let link = LinkModel::mbps(4.0, 10.0).unwrap();
        let faulty =
            FaultyLink::new(link, FaultPlan::new(7).with_corruption(0.4).unwrap());
        let report = simulate_faulty(
            &map,
            &faulty,
            PrefetchPolicy::None,
            &RetryPolicy::default(),
            &linear_trace(),
        )
        .unwrap();
        // Corrupted arrivals are discarded and re-fetched: more bytes
        // than the clean run, no timeouts (payloads do arrive).
        let clean = simulate(&map, &link, PrefetchPolicy::None, &linear_trace()).unwrap();
        assert!(report.stats.retries > 0);
        assert_eq!(report.stats.timeouts, 0);
        assert!(report.stats.bytes_fetched > clean.bytes_fetched);
    }

    #[test]
    fn fault_total_loss_conceals_everything_and_terminates() {
        let map = setup();
        let link = LinkModel::mbps(2.0, 20.0).unwrap();
        let faulty = FaultyLink::new(link, FaultPlan::new(5).with_loss(1.0).unwrap());
        let report = simulate_faulty(
            &map,
            &faulty,
            PrefetchPolicy::None,
            &RetryPolicy::default(),
            &linear_trace(),
        )
        .unwrap();
        assert_eq!(report.stats.play_ms, 0.0);
        assert!(report.stats.conceal_ms > 0.0);
        assert!(report.delivered.is_empty());
        assert!(!report.concealed.is_empty());
        assert_eq!(report.stats.gave_up, report.concealed.len());
        assert_eq!(report.stats.delivery_ratio(), 0.0);
    }

    #[test]
    fn fault_runs_are_byte_identical_across_repeats() {
        let map = setup();
        let link = LinkModel::mbps(1.0, 30.0).unwrap();
        let plan = FaultPlan::new(99)
            .with_loss(0.2)
            .unwrap()
            .with_corruption(0.1)
            .unwrap()
            .with_stalls(0.1, 250.0)
            .unwrap();
        let run = || {
            simulate_faulty(
                &map,
                &FaultyLink::new(link, plan),
                PrefetchPolicy::BranchAware { per_branch: 1 },
                &RetryPolicy::default(),
                &branchy_trace(),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed + same plan must reproduce exactly");
    }

    #[test]
    fn fault_retry_policy_validation() {
        let map = setup();
        let faulty =
            FaultyLink::new(LinkModel::mbps(1.0, 10.0).unwrap(), FaultPlan::new(0));
        for bad in [
            RetryPolicy { base_timeout_ms: 0.0, ..Default::default() },
            RetryPolicy { base_timeout_ms: f64::NAN, ..Default::default() },
            RetryPolicy { backoff: 0.5, ..Default::default() },
            RetryPolicy { max_timeout_ms: 1.0, ..Default::default() },
            RetryPolicy { jitter_ms: -2.0, ..Default::default() },
        ] {
            assert!(
                simulate_faulty(&map, &faulty, PrefetchPolicy::None, &bad, &linear_trace())
                    .is_err(),
                "{bad:?} accepted"
            );
        }
    }

    #[test]
    fn fault_backoff_deadlines_grow_and_cap() {
        let retry = RetryPolicy::default();
        let d0 = retry.deadline_ms(0, 0.0);
        let d1 = retry.deadline_ms(1, 0.0);
        let d4 = retry.deadline_ms(4, 0.0);
        assert_eq!(d0, 250.0);
        assert_eq!(d1, 500.0);
        assert_eq!(d4, 2000.0, "capped at max_timeout_ms");
        // Jitter adds at most jitter_ms.
        assert!(retry.deadline_ms(0, 0.999) < d0 + retry.jitter_ms);
    }

    /// Regression (overflow audit): huge attempt counts and extreme
    /// back-off factors must saturate at the cap, never produce inf/NaN
    /// or wrap, and the deadline must be non-decreasing in `attempt`.
    #[test]
    fn fault_backoff_deadlines_saturate_at_extreme_attempts() {
        let retry = RetryPolicy::default();
        for attempt in [64, 65, 1000, u32::MAX] {
            let d = retry.deadline_ms(attempt, 0.0);
            assert!(d.is_finite(), "attempt {attempt} gave {d}");
            assert_eq!(d, retry.max_timeout_ms);
        }
        // A back-off factor whose powi overflows f64 to +inf.
        let extreme = RetryPolicy { backoff: 1e300, ..RetryPolicy::default() };
        let d = extreme.deadline_ms(2, 0.5);
        assert!(d.is_finite());
        assert_eq!(d, extreme.max_timeout_ms + 0.5 * extreme.jitter_ms);
        // Monotone non-decreasing into the cap.
        let mut prev = 0.0;
        for attempt in 0..200u32 {
            let d = retry.deadline_ms(attempt, 0.0);
            assert!(d >= prev, "deadline shrank at attempt {attempt}: {prev} -> {d}");
            prev = d;
        }
    }

    /// Regression (overflow audit, PR 9): the *jitter term* can also go
    /// non-finite on an unvalidated policy — infinite jitter amplitude
    /// or a hostile jitter draw — and used to leak straight into the
    /// returned deadline, poisoning the caller's simulated clock.
    #[test]
    fn fault_backoff_deadline_saturates_nonfinite_jitter() {
        let inf_jitter = RetryPolicy { jitter_ms: f64::INFINITY, ..RetryPolicy::default() };
        let d = inf_jitter.deadline_ms(0, 0.5);
        assert!(d.is_finite(), "infinite jitter amplitude gave {d}");
        assert_eq!(d, inf_jitter.max_timeout_ms);

        let retry = RetryPolicy::default();
        for unit in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let d = retry.deadline_ms(0, unit);
            assert!(d.is_finite(), "jitter draw {unit} gave {d}");
            assert_eq!(d, retry.max_timeout_ms);
        }
    }

    // ---- circuit-breaker coverage -----------------------------------

    use crate::breaker::{BreakerConfig, BreakerState};

    fn sick_plan() -> FaultPlan {
        FaultPlan::new(13).with_loss(0.95).unwrap()
    }

    #[test]
    fn breaker_fails_fast_and_saves_retry_budget_on_a_sick_link() {
        let map = setup();
        let link = LinkModel::mbps(2.0, 20.0).unwrap();
        let faulty = FaultyLink::new(link, sick_plan());
        let retry = RetryPolicy::default();
        let without = simulate_faulty(
            &map,
            &faulty,
            PrefetchPolicy::None,
            &retry,
            &linear_trace(),
        )
        .unwrap();
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            window: 8,
            min_samples: 4,
            trip_ratio: 0.5,
            cooldown_ms: 60_000.0,
            probes: 1,
        })
        .unwrap();
        let with = simulate_faulty_with_breaker(
            &map,
            &faulty,
            PrefetchPolicy::None,
            &retry,
            &mut breaker,
            &linear_trace(),
        )
        .unwrap();
        assert!(breaker.trips() >= 1, "a 95%-loss link must trip the breaker");
        assert!(with.stats.fast_failed > 0, "{:?}", with.stats);
        assert!(
            with.stats.timeouts < without.stats.timeouts,
            "fail-fast must burn fewer deadlines: {} vs {}",
            with.stats.timeouts,
            without.stats.timeouts
        );
        assert!(with.stats.fast_failed <= with.stats.gave_up, "fast-fails are a subset");
        assert_eq!(with.stats.gave_up, with.concealed.len());
        assert_eq!(breaker.fast_failures(), with.stats.fast_failed as u64);
    }

    #[test]
    fn breaker_closed_on_clean_link_changes_nothing() {
        let map = setup();
        let link = LinkModel::mbps(1.5, 25.0).unwrap();
        let faulty = FaultyLink::new(link, FaultPlan::new(1));
        let retry = RetryPolicy::default();
        let plain =
            simulate_faulty(&map, &faulty, PrefetchPolicy::Linear { lookahead: 2 }, &retry, &linear_trace())
                .unwrap();
        let mut breaker = CircuitBreaker::new(BreakerConfig::default()).unwrap();
        let guarded = simulate_faulty_with_breaker(
            &map,
            &faulty,
            PrefetchPolicy::Linear { lookahead: 2 },
            &retry,
            &mut breaker,
            &linear_trace(),
        )
        .unwrap();
        assert_eq!(plain, guarded);
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(breaker.trips(), 0);
    }

    #[test]
    fn breaker_runs_are_byte_identical_across_repeats() {
        let map = setup();
        let link = LinkModel::mbps(1.0, 30.0).unwrap();
        let run = || {
            let faulty = FaultyLink::new(link, sick_plan());
            let mut breaker = CircuitBreaker::new(BreakerConfig {
                window: 8,
                min_samples: 4,
                trip_ratio: 0.5,
                cooldown_ms: 2000.0,
                probes: 1,
            })
            .unwrap();
            let report = simulate_faulty_with_breaker(
                &map,
                &faulty,
                PrefetchPolicy::None,
                &RetryPolicy::default(),
                &mut breaker,
                &linear_trace(),
            )
            .unwrap();
            (report, breaker.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn breaker_observed_counters_match_stats() {
        let map = setup();
        let link = LinkModel::mbps(2.0, 20.0).unwrap();
        let faulty = FaultyLink::new(link, sick_plan());
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            window: 8,
            min_samples: 4,
            trip_ratio: 0.5,
            cooldown_ms: 60_000.0,
            probes: 1,
        })
        .unwrap();
        let obs = Obs::recording();
        let report = simulate_faulty_with_breaker_observed(
            &map,
            &faulty,
            PrefetchPolicy::None,
            &RetryPolicy::default(),
            &mut breaker,
            &linear_trace(),
            &obs,
            "stream-0000".into(),
        )
        .unwrap();
        let snap = obs.snapshot();
        assert_eq!(snap.counter_total("fetch.fast_failed"), report.stats.fast_failed as u64);
        assert_eq!(snap.counter_total("fetch.gave_up"), report.stats.gave_up as u64);
        assert_eq!(snap.counter_total("fetch.timeouts"), report.stats.timeouts as u64);
        assert!(report.stats.fast_failed > 0);
    }

    #[test]
    fn obs_observed_sim_matches_unobserved_and_counters_match_stats() {
        let map = setup();
        let link = LinkModel::mbps(1.0, 30.0).unwrap();
        let plan = FaultPlan::new(99).with_loss(0.2).unwrap().with_corruption(0.1).unwrap();
        let unobserved = simulate_faulty(
            &map,
            &FaultyLink::new(link, plan),
            PrefetchPolicy::Linear { lookahead: 1 },
            &RetryPolicy::default(),
            &linear_trace(),
        )
        .unwrap();
        let obs = Obs::recording();
        let observed = simulate_faulty_observed(
            &map,
            &FaultyLink::new(link, plan),
            PrefetchPolicy::Linear { lookahead: 1 },
            &RetryPolicy::default(),
            &linear_trace(),
            &obs,
            "stream-0000".into(),
        )
        .unwrap();
        // Observability must not perturb the simulation.
        assert_eq!(observed, unobserved);
        // The registry's independent tally agrees with StreamStats exactly.
        let snap = obs.snapshot();
        assert_eq!(snap.counter_total("fetch.retries"), observed.stats.retries as u64);
        assert_eq!(snap.counter_total("fetch.timeouts"), observed.stats.timeouts as u64);
        assert_eq!(snap.counter_total("fetch.gave_up"), observed.stats.gave_up as u64);
        assert_eq!(snap.counter_total("fetch.gave_up"), observed.concealed.len() as u64);
        assert_eq!(snap.counter_total("fetch.delivered"), observed.delivered.len() as u64);
        assert_eq!(snap.counter_total("session.stalls"), observed.stats.stalls as u64);
        // The trace is a session root with one dwell per trace step.
        assert_eq!(snap.traces.len(), 1);
        let trace = &snap.traces[0];
        assert_eq!(trace.label, "stream-0000");
        assert_eq!(trace.spans[0].name, "session");
        let dwells = trace.spans.iter().filter(|s| s.name == "dwell").count();
        assert_eq!(dwells, 4, "one dwell span per trace step");
        // Spans run on the simulated clock, microsecond units. The two
        // f64 sums accumulate in different orders, so allow 1 µs of
        // rounding slack.
        let session = trace.spans[0];
        let total_ms =
            observed.stats.startup_ms + observed.stats.play_ms + observed.stats.stall_ms
                + observed.stats.conceal_ms;
        let diff = session.end_us.abs_diff(us_from_ms(total_ms));
        assert!(diff <= 1, "session end {} vs stats total {}", session.end_us, total_ms);
    }

    #[test]
    fn obs_observed_sim_exports_are_byte_identical_across_runs() {
        let map = setup();
        let link = LinkModel::mbps(1.0, 30.0).unwrap();
        let run = || {
            let obs = Obs::recording();
            let plan = FaultPlan::new(7).with_loss(0.3).unwrap();
            simulate_faulty_observed(
                &map,
                &FaultyLink::new(link, plan),
                PrefetchPolicy::None,
                &RetryPolicy::default(),
                &linear_trace(),
                &obs,
                "stream-0000".into(),
            )
            .unwrap();
            let snap = obs.snapshot();
            (snap.to_table(), snap.metrics_csv(), snap.spans_csv(), snap.to_jsonl())
        };
        assert_eq!(run(), run());
    }
}
