//! The network link model.
//!
//! A deterministic first-order model: every transfer costs one round-trip
//! latency plus `bytes / bandwidth`. The link is a single FIFO pipe —
//! transfers queue behind each other, as they would on one HTTP/1.1
//! connection of the paper's era.

use crate::{Result, StreamError};

/// Anything that can carry chunk transfers: answers *when* a transfer
/// started at `start_ms` completes. The client's FIFO queueing sits on
/// top of this, so both constant and time-varying links plug in.
pub trait Link {
    /// Completion time of a `bytes`-sized transfer started at `start_ms`.
    fn complete_at(&self, start_ms: f64, bytes: usize) -> f64;
}

/// A fixed-rate, fixed-latency downlink.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Downlink bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// Per-request latency in milliseconds.
    pub latency_ms: f64,
}

impl LinkModel {
    /// A link, validated.
    pub fn new(bandwidth_bps: f64, latency_ms: f64) -> Result<LinkModel> {
        if !bandwidth_bps.is_finite() || bandwidth_bps <= 0.0 {
            return Err(StreamError::InvalidLink("bandwidth must be positive".into()));
        }
        if !latency_ms.is_finite() || latency_ms < 0.0 {
            return Err(StreamError::InvalidLink("latency must be non-negative".into()));
        }
        Ok(LinkModel { bandwidth_bps, latency_ms })
    }

    /// Convenience constructor in megabits per second.
    pub fn mbps(mbps: f64, latency_ms: f64) -> Result<LinkModel> {
        LinkModel::new(mbps * 1_000_000.0, latency_ms)
    }

    /// Milliseconds to transfer `bytes` (latency + serialisation).
    pub fn transfer_ms(&self, bytes: usize) -> f64 {
        self.latency_ms + (bytes as f64 * 8.0 * 1000.0) / self.bandwidth_bps
    }
}

impl Link for LinkModel {
    fn complete_at(&self, start_ms: f64, bytes: usize) -> f64 {
        start_ms + self.transfer_ms(bytes)
    }
}

/// A time-varying downlink: piecewise-constant bandwidth over wall time —
/// the Wi-Fi of a 2007 lecture hall. Transfers integrate over the
/// schedule, so a rate drop mid-chunk stretches exactly that chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct VariableLink {
    /// `(start_ms, bandwidth_bps)` steps, strictly increasing in time;
    /// the first step must start at 0 and the last extends forever.
    steps: Vec<(f64, f64)>,
    latency_ms: f64,
}

impl VariableLink {
    /// Builds a schedule. Steps must start at 0 ms, be strictly
    /// increasing in time, and carry positive bandwidth.
    pub fn new(steps: Vec<(f64, f64)>, latency_ms: f64) -> Result<VariableLink> {
        if steps.is_empty() || steps[0].0 != 0.0 {
            return Err(StreamError::InvalidLink("schedule must start at 0 ms".into()));
        }
        if !latency_ms.is_finite() || latency_ms < 0.0 {
            return Err(StreamError::InvalidLink("latency must be non-negative".into()));
        }
        for pair in steps.windows(2) {
            // NaN times also fail this ordering test.
            if pair[1].0.partial_cmp(&pair[0].0) != Some(std::cmp::Ordering::Greater) {
                return Err(StreamError::InvalidLink(
                    "schedule times must strictly increase".into(),
                ));
            }
        }
        if steps.iter().any(|(_, bps)| !bps.is_finite() || *bps <= 0.0) {
            return Err(StreamError::InvalidLink("bandwidth must be positive".into()));
        }
        Ok(VariableLink { steps, latency_ms })
    }

    fn rate_at(&self, t: f64) -> (f64, f64) {
        // Returns (bps, end-of-step time or +inf).
        let idx = self.steps.iter().rposition(|(s, _)| *s <= t).unwrap_or(0);
        let end = self.steps.get(idx + 1).map(|(s, _)| *s).unwrap_or(f64::INFINITY);
        (self.steps[idx].1, end)
    }
}

impl Link for VariableLink {
    fn complete_at(&self, start_ms: f64, bytes: usize) -> f64 {
        let mut t = start_ms + self.latency_ms;
        let mut remaining_bits = bytes as f64 * 8.0;
        while remaining_bits > 0.0 {
            let (bps, step_end) = self.rate_at(t);
            let window_ms = step_end - t;
            let capacity_bits = bps * window_ms / 1000.0;
            if capacity_bits >= remaining_bits || !window_ms.is_finite() {
                t += remaining_bits / bps * 1000.0;
                break;
            }
            remaining_bits -= capacity_bits;
            t = step_end;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_parameters() {
        assert!(LinkModel::new(0.0, 10.0).is_err());
        assert!(LinkModel::new(-5.0, 10.0).is_err());
        assert!(LinkModel::new(f64::NAN, 10.0).is_err());
        assert!(LinkModel::new(1e6, -1.0).is_err());
        assert!(LinkModel::new(1e6, 0.0).is_ok());
    }

    #[test]
    fn transfer_time_arithmetic() {
        // 1 Mbit/s, 20 ms RTT: 125 000 bytes = 1 Mbit = 1000 ms + 20.
        let link = LinkModel::mbps(1.0, 20.0).unwrap();
        let t = link.transfer_ms(125_000);
        assert!((t - 1020.0).abs() < 1e-9);
        // Zero bytes costs exactly the latency.
        assert_eq!(link.transfer_ms(0), 20.0);
    }

    #[test]
    fn faster_link_transfers_faster() {
        let slow = LinkModel::mbps(0.5, 20.0).unwrap();
        let fast = LinkModel::mbps(8.0, 20.0).unwrap();
        assert!(fast.transfer_ms(100_000) < slow.transfer_ms(100_000));
    }
}

#[cfg(test)]
mod variable_tests {
    use super::*;

    #[test]
    fn constant_schedule_matches_fixed_link() {
        let fixed = LinkModel::mbps(2.0, 25.0).unwrap();
        let var = VariableLink::new(vec![(0.0, 2_000_000.0)], 25.0).unwrap();
        for bytes in [0usize, 100, 50_000, 1_000_000] {
            for start in [0.0f64, 123.0, 9999.5] {
                let a = fixed.complete_at(start, bytes);
                let b = var.complete_at(start, bytes);
                assert!((a - b).abs() < 1e-6, "bytes={bytes} start={start}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn rate_drop_stretches_midflight_transfer() {
        // 8 Mbit/s for the first second, then 0.8 Mbit/s.
        let var = VariableLink::new(vec![(0.0, 8e6), (1000.0, 0.8e6)], 0.0).unwrap();
        // 1 Mbit transfer started at t=0: finishes in 125 ms (fast phase).
        let t = var.complete_at(0.0, 125_000);
        assert!((t - 125.0).abs() < 1e-6);
        // Started at t=900: 100 ms fast (0.8 Mbit done), 0.2 Mbit left at
        // 0.8 Mbit/s = 250 ms → completes at 1250 ms.
        let t = var.complete_at(900.0, 125_000);
        assert!((t - 1250.0).abs() < 1e-6, "{t}");
        // Started after the drop: full slow rate.
        let t = var.complete_at(2000.0, 125_000);
        assert!((t - 2000.0 - 1250.0).abs() < 1e-6, "{t}");
    }

    #[test]
    fn latency_applies_before_schedule_lookup() {
        let var = VariableLink::new(vec![(0.0, 1e6), (100.0, 2e6)], 150.0).unwrap();
        // Starts at t=0 but latency pushes serialisation to t=150, where
        // the 2 Mbit/s step is active: 1 Mbit → 500 ms → total 650.
        let t = var.complete_at(0.0, 125_000);
        assert!((t - 650.0).abs() < 1e-6, "{t}");
    }

    #[test]
    fn schedule_validation() {
        assert!(VariableLink::new(vec![], 0.0).is_err());
        assert!(VariableLink::new(vec![(5.0, 1e6)], 0.0).is_err()); // not at 0
        assert!(VariableLink::new(vec![(0.0, 1e6), (0.0, 2e6)], 0.0).is_err());
        assert!(VariableLink::new(vec![(0.0, 1e6), (10.0, 0.0)], 0.0).is_err());
        assert!(VariableLink::new(vec![(0.0, 1e6)], -1.0).is_err());
        assert!(VariableLink::new(vec![(0.0, 1e6), (10.0, 2e6)], 0.0).is_ok());
    }

    #[test]
    fn zero_bytes_costs_latency_only() {
        let var = VariableLink::new(vec![(0.0, 1e6)], 40.0).unwrap();
        assert_eq!(var.complete_at(10.0, 0), 50.0);
    }

    #[test]
    fn simulation_accepts_variable_links() {
        use crate::chunk::ChunkMap;
        use crate::client::{simulate, TraceStep};
        use crate::prefetch::PrefetchPolicy;
        use vgbl_media::codec::{EncodeConfig, Encoder};
        use vgbl_media::color::Rgb;
        use vgbl_media::synth::{FootageSpec, ShotSpec};
        use vgbl_media::timeline::FrameRate;
        use vgbl_media::{SegmentId, SegmentTable};

        let footage = FootageSpec {
            width: 48,
            height: 32,
            rate: FrameRate::FPS30,
            shots: vec![ShotSpec::plain(30, Rgb::new(90, 120, 150))],
            noise_seed: 1,
        }
        .render()
        .unwrap();
        let video = Encoder::new(EncodeConfig { gop: 10, ..Default::default() })
            .encode(&footage.frames, footage.rate)
            .unwrap();
        let table = SegmentTable::whole(30).unwrap();
        let map = ChunkMap::build(&video, &table).unwrap();
        let trace = vec![TraceStep {
            segment: SegmentId(0),
            watch_ms: 3000.0,
            branch_targets: vec![],
        }];
        // A link that collapses after half a second.
        let crashy = VariableLink::new(vec![(0.0, 8e6), (500.0, 0.05e6)], 20.0).unwrap();
        let healthy = LinkModel::mbps(8.0, 20.0).unwrap();
        let bad = simulate(&map, &crashy, PrefetchPolicy::None, &trace).unwrap();
        let good = simulate(&map, &healthy, PrefetchPolicy::None, &trace).unwrap();
        assert!(bad.stall_ms >= good.stall_ms);
        // Both start in the fast phase (float rounding differs slightly).
        assert!((bad.startup_ms - good.startup_ms).abs() < 0.01);
    }
}
