//! Prefetch policies.
//!
//! Linear streaming prefetches "whatever comes next on the timeline" —
//! correct for TV, wrong for interactive video, where the next content is
//! whichever scenario the *player* jumps to. The branch-aware policy uses
//! the scenario graph's outgoing edges to warm exactly those segments,
//! which is the measurable payoff of owning both the player and the
//! content model (EXP-7).

use vgbl_media::cache::{GopCache, VideoId};
use vgbl_media::codec::{Decoder, EncodedVideo};
use vgbl_media::SegmentId;

use crate::chunk::{ChunkId, ChunkMap};
use crate::{Result, StreamError};

/// What the policy may look at when planning fetches.
#[derive(Debug, Clone)]
pub struct PrefetchContext<'a> {
    /// The chunk layout.
    pub map: &'a ChunkMap,
    /// The chunk currently playing.
    pub playing: ChunkId,
    /// The segment currently playing.
    pub segment: SegmentId,
    /// Segments reachable from the current scenario in one transition
    /// (the scenario graph's out-edges), in authoring order.
    pub branch_targets: &'a [SegmentId],
}

/// A fetch-ahead strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchPolicy {
    /// Fetch nothing ahead; every miss stalls.
    None,
    /// Fetch the next `lookahead` chunks in timeline order.
    Linear {
        /// Chunks to stay ahead by.
        lookahead: usize,
    },
    /// Fetch the remainder of the current segment, then the first
    /// `per_branch` chunks of every one-transition-away segment.
    BranchAware {
        /// Chunks to warm per outgoing branch.
        per_branch: usize,
    },
}

impl PrefetchPolicy {
    /// Stable label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            PrefetchPolicy::None => "none",
            PrefetchPolicy::Linear { .. } => "linear",
            PrefetchPolicy::BranchAware { .. } => "branch-aware",
        }
    }

    /// The ordered chunk wish-list for the given moment (already-fetched
    /// chunks are filtered by the client).
    pub fn plan(&self, ctx: &PrefetchContext<'_>) -> Vec<ChunkId> {
        match *self {
            PrefetchPolicy::None => Vec::new(),
            PrefetchPolicy::Linear { lookahead } => {
                let start = ctx.playing.0 as usize + 1;
                (start..(start + lookahead).min(ctx.map.len()))
                    .map(|i| ChunkId(i as u32))
                    .collect()
            }
            PrefetchPolicy::BranchAware { per_branch } => {
                let mut out = Vec::new();
                // Rest of the current segment first (the player keeps
                // looping it while exploring).
                if let Ok(ids) = ctx.map.segment_chunks(ctx.segment) {
                    for &id in ids {
                        if id.0 > ctx.playing.0 {
                            out.push(id);
                        }
                    }
                }
                // Then the heads of every branch target.
                for &seg in ctx.branch_targets {
                    if let Ok(ids) = ctx.map.segment_chunks(seg) {
                        for &id in ids.iter().take(per_branch) {
                            if !out.contains(&id) {
                                out.push(id);
                            }
                        }
                    }
                }
                out
            }
        }
    }
}

/// Decode-ahead: warms a shared decoded-GOP cache for a prefetch plan.
///
/// Fetching bytes ahead of a branch (what [`PrefetchPolicy::plan`]
/// schedules) hides *network* latency; this hides the *decode* latency
/// that remains — each planned chunk is one GOP (`start_frame` is its
/// keyframe), so decoding it into `cache` turns the seek that follows the
/// branch the player actually takes into a pure cache hit. Sessions
/// sharing `cache` benefit even when a different session took the branch
/// first.
///
/// Already-resident GOPs cost nothing; the return value is the number of
/// GOPs newly decoded. Plan entries outside the map are ignored.
///
/// # Errors
/// [`StreamError::Decode`] when the underlying bitstream fails to decode.
pub fn warm_decoded_gops(
    plan: &[ChunkId],
    map: &ChunkMap,
    decoder: &Decoder,
    video: &EncodedVideo,
    video_id: VideoId,
    cache: &GopCache,
) -> Result<usize> {
    let mut warmed = 0usize;
    for &id in plan {
        let Some(chunk) = map.get(id) else { continue };
        let mut decoded = false;
        cache
            .get_or_decode(video_id, chunk.start_frame, || {
                let frames = decoder.decode_gop_at(video, chunk.start_frame)?;
                decoded = true;
                Ok(frames)
            })
            .map_err(|e| StreamError::Decode(e.to_string()))?;
        warmed += usize::from(decoded);
    }
    Ok(warmed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgbl_media::codec::{EncodeConfig, Encoder};
    use vgbl_media::color::Rgb;
    use vgbl_media::synth::{FootageSpec, ShotSpec};
    use vgbl_media::timeline::FrameRate;
    use vgbl_media::SegmentTable;

    fn video_and_map() -> (EncodedVideo, ChunkMap) {
        let footage = FootageSpec {
            width: 24,
            height: 16,
            rate: FrameRate::FPS30,
            shots: vec![ShotSpec::plain(40, Rgb::GREY)],
            noise_seed: 0,
        }
        .render()
        .unwrap();
        let video = Encoder::new(EncodeConfig { gop: 5, ..Default::default() })
            .encode(&footage.frames, footage.rate)
            .unwrap();
        // 4 segments of 10 frames = 2 chunks each.
        let table = SegmentTable::from_cuts(40, &[10, 20, 30]).unwrap();
        let map = ChunkMap::build(&video, &table).unwrap();
        (video, map)
    }

    fn map() -> ChunkMap {
        video_and_map().1
    }

    #[test]
    fn none_plans_nothing() {
        let m = map();
        let ctx = PrefetchContext {
            map: &m,
            playing: ChunkId(0),
            segment: SegmentId(0),
            branch_targets: &[],
        };
        assert!(PrefetchPolicy::None.plan(&ctx).is_empty());
    }

    #[test]
    fn linear_plans_next_chunks_capped() {
        let m = map();
        let ctx = PrefetchContext {
            map: &m,
            playing: ChunkId(2),
            segment: SegmentId(1),
            branch_targets: &[],
        };
        let plan = PrefetchPolicy::Linear { lookahead: 3 }.plan(&ctx);
        assert_eq!(plan, vec![ChunkId(3), ChunkId(4), ChunkId(5)]);
        // Near the end, the plan truncates.
        let ctx = PrefetchContext { playing: ChunkId(6), ..ctx };
        let plan = PrefetchPolicy::Linear { lookahead: 5 }.plan(&ctx);
        assert_eq!(plan, vec![ChunkId(7)]);
    }

    #[test]
    fn branch_aware_warms_current_then_branches() {
        let m = map();
        // Playing chunk 0 of segment 0; branches to segments 2 and 3.
        let ctx = PrefetchContext {
            map: &m,
            playing: ChunkId(0),
            segment: SegmentId(0),
            branch_targets: &[SegmentId(2), SegmentId(3)],
        };
        let plan = PrefetchPolicy::BranchAware { per_branch: 1 }.plan(&ctx);
        // Rest of segment 0 (chunk 1), then heads of segments 2 (chunk 4)
        // and 3 (chunk 6).
        assert_eq!(plan, vec![ChunkId(1), ChunkId(4), ChunkId(6)]);
    }

    #[test]
    fn branch_aware_dedups_shared_targets() {
        let m = map();
        let ctx = PrefetchContext {
            map: &m,
            playing: ChunkId(0),
            segment: SegmentId(0),
            branch_targets: &[SegmentId(1), SegmentId(1)],
        };
        let plan = PrefetchPolicy::BranchAware { per_branch: 2 }.plan(&ctx);
        assert_eq!(plan, vec![ChunkId(1), ChunkId(2), ChunkId(3)]);
    }

    #[test]
    fn warming_makes_branch_seeks_free() {
        let (video, m) = video_and_map();
        let id = VideoId::of(&video);
        let dec = Decoder::default();
        let cache = GopCache::new(16);
        let ctx = PrefetchContext {
            map: &m,
            playing: ChunkId(0),
            segment: SegmentId(0),
            branch_targets: &[SegmentId(2), SegmentId(3)],
        };
        let plan = PrefetchPolicy::BranchAware { per_branch: 1 }.plan(&ctx);
        let warmed = warm_decoded_gops(&plan, &m, &dec, &video, id, &cache).unwrap();
        assert_eq!(warmed, 3, "chunk 1 + branch heads 4 and 6");
        // The seek into either branch target now decodes nothing.
        for target in [20usize, 30] {
            let (frame, stats) =
                vgbl_media::seek::seek_cached(&dec, &video, id, &cache, target).unwrap();
            assert_eq!(stats.frames_decoded, 0, "target {target} warmed");
            let (direct, _) = vgbl_media::seek::seek(&dec, &video, target).unwrap();
            assert_eq!(frame, direct);
        }
        // Re-warming the same plan decodes nothing new.
        let again = warm_decoded_gops(&plan, &m, &dec, &video, id, &cache).unwrap();
        assert_eq!(again, 0);
    }

    #[test]
    fn warming_ignores_out_of_map_chunks() {
        let (video, m) = video_and_map();
        let cache = GopCache::new(8);
        let warmed = warm_decoded_gops(
            &[ChunkId(99), ChunkId(0)],
            &m,
            &Decoder::default(),
            &video,
            VideoId::of(&video),
            &cache,
        )
        .unwrap();
        assert_eq!(warmed, 1);
        assert_eq!(cache.stats().resident_gops, 1);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PrefetchPolicy::None.label(), "none");
        assert_eq!(PrefetchPolicy::Linear { lookahead: 2 }.label(), "linear");
        assert_eq!(PrefetchPolicy::BranchAware { per_branch: 1 }.label(), "branch-aware");
    }
}
