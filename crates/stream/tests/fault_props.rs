//! Chaos properties of the fault-injection path (EXP-12's foundations):
//! for *any* seeded fault plan short of total loss, the simulation
//! terminates, every chunk it reports delivered is byte-identical to the
//! pristine stream (so playback of delivered frames is bit-exact), and
//! identical seeds reproduce identical reports.

use std::sync::OnceLock;

use proptest::prelude::*;
use vgbl_media::codec::{Decoder, EncodeConfig, Encoder, EncodedVideo, Quality};
use vgbl_media::color::Rgb;
use vgbl_media::synth::{FootageSpec, ShotSpec, SpriteShape, SpriteSpec};
use vgbl_media::timeline::FrameRate;
use vgbl_media::{Frame, SegmentId, SegmentTable};
use vgbl_stream::{
    simulate, simulate_faulty, ChunkMap, FaultPlan, FaultyLink, LinkModel, PrefetchPolicy,
    RetryPolicy, TraceStep,
};

struct Fixture {
    video: EncodedVideo,
    map: ChunkMap,
    reference: Vec<Frame>,
}

/// One shared encode + reference decode for every proptest case.
fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let shots = (0..3)
            .map(|i| ShotSpec {
                frames: 20,
                background: Rgb::from_seed(i * 11 + 3),
                sprites: vec![SpriteSpec {
                    shape: SpriteShape::Rect(8, 8),
                    color: Rgb::from_seed(i * 5 + 1),
                    pos: (6.0, 6.0),
                    vel: (1.5, 1.0),
                }],
                luma_drift: 4,
                noise: 2,
            })
            .collect();
        let footage = FootageSpec {
            width: 48,
            height: 32,
            rate: FrameRate::FPS30,
            shots,
            noise_seed: 31,
        }
        .render()
        .unwrap();
        let video = Encoder::new(EncodeConfig {
            gop: 10,
            quality: Quality::Medium,
            ..Default::default()
        })
        .encode(&footage.frames, footage.rate)
        .unwrap();
        let table = SegmentTable::from_cuts(60, &[20, 40]).unwrap();
        let map = ChunkMap::build(&video, &table).unwrap();
        let reference = Decoder::default().decode_all(&video).unwrap().frames;
        Fixture { video, map, reference }
    })
}

fn trace() -> Vec<TraceStep> {
    vec![
        TraceStep {
            segment: SegmentId(0),
            watch_ms: 1200.0,
            branch_targets: vec![SegmentId(1), SegmentId(2)],
        },
        TraceStep {
            segment: SegmentId(2),
            watch_ms: 1200.0,
            branch_targets: vec![SegmentId(1)],
        },
        TraceStep {
            segment: SegmentId(1),
            watch_ms: 800.0,
            branch_targets: vec![],
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The tentpole chaos property: any seeded plan with loss < 100%
    // terminates with Ok; delivered chunks are byte-identical to the
    // originals (their GOPs decode bit-exactly against the pristine
    // reference); concealed chunks are exactly the gave-up ones; and the
    // whole report reproduces byte-identically from the same seed.
    #[test]
    fn fault_chaos_delivered_chunks_are_bit_exact(
        seed in any::<u64>(),
        loss in 0.0f64..0.9,
        corruption in 0.0f64..0.5,
        stall_rate in 0.0f64..0.5,
        mbps in 0.5f64..8.0,
        latency in 1.0f64..60.0,
    ) {
        let fx = fixture();
        let plan = FaultPlan::new(seed)
            .with_loss(loss).unwrap()
            .with_corruption(corruption).unwrap()
            .with_stalls(stall_rate, 200.0).unwrap();
        let link = FaultyLink::new(LinkModel::mbps(mbps, latency).unwrap(), plan);
        let retry = RetryPolicy::default();
        let run = || {
            simulate_faulty(
                &fx.map,
                &link,
                PrefetchPolicy::BranchAware { per_branch: 1 },
                &retry,
                &trace(),
            )
            .expect("fault simulation terminates with Ok")
        };
        let report = run();

        // Delivered and concealed partition the touched chunks.
        for id in &report.delivered {
            prop_assert!(!report.concealed.contains(id));
        }
        prop_assert_eq!(report.stats.gave_up, report.concealed.len());

        // Bit-exactness on every delivered chunk: the payload the client
        // accepted passed the container checksum, so decoding its GOP
        // reproduces the pristine frames exactly.
        let dec = Decoder::default();
        for id in &report.delivered {
            let info = fx.map.get(*id).unwrap();
            prop_assert_eq!(
                vgbl_media::payload_checksum(
                    &fx.video.frames[info.start_frame..info.end_frame]
                ),
                info.checksum,
                "delivered chunk {:?} is byte-identical to the original",
                id
            );
            let frames = dec.decode_gop_at(&fx.video, info.start_frame).unwrap();
            for (off, frame) in frames.iter().enumerate() {
                prop_assert_eq!(
                    frame,
                    &fx.reference[info.start_frame + off],
                    "frame {} of delivered chunk {:?}",
                    off,
                    id
                );
            }
        }

        // Accounting sanity: concealment accrues play-time for exactly
        // the chunks that gave up; everything watched is accounted.
        if report.stats.gave_up == 0 {
            prop_assert_eq!(report.stats.conceal_ms, 0.0);
        } else {
            prop_assert!(report.stats.conceal_ms > 0.0);
        }

        // Determinism: same seed + same plan ⇒ byte-identical report.
        let again = run();
        prop_assert_eq!(&report, &again);
    }

    // A plan with zero fault rates must match the pristine path exactly,
    // for any seed — the fault layer is a no-op when faults are off.
    #[test]
    fn fault_free_plan_is_transparent(seed in any::<u64>(), mbps in 0.5f64..8.0) {
        let fx = fixture();
        let link = LinkModel::mbps(mbps, 20.0).unwrap();
        let plain = simulate(
            &fx.map,
            &link,
            PrefetchPolicy::Linear { lookahead: 2 },
            &trace(),
        )
        .unwrap();
        let report = simulate_faulty(
            &fx.map,
            &FaultyLink::new(link, FaultPlan::new(seed)),
            PrefetchPolicy::Linear { lookahead: 2 },
            &RetryPolicy::default(),
            &trace(),
        )
        .unwrap();
        prop_assert_eq!(plain, report.stats);
        prop_assert!(report.concealed.is_empty());
    }
}
