//! Drive the authoring tool from your terminal — the Figure-1 interface
//! as a working CLI.
//!
//! ```text
//! cargo run --release --example author_interactive
//! commands:
//!   import N SECONDS                 synthesise N scenes of footage and import
//!   scenario NAME SEG                create a scenario over segment SEG
//!   start NAME                       set the start scenario
//!   desc NAME TEXT...                describe a scenario
//!   button SCENARIO NAME LABEL...    mount a button
//!   item SCENARIO NAME take|fixed DESC...   mount an item
//!   npc NAME LINE...                 register an NPC with a fixed line
//!   anchor SCENARIO NAME NPC         mount an NPC anchor
//!   wire SCENARIO TARGET :: EVENT :: COND|- :: ACTION ; ACTION ...
//!        (TARGET is an object name or `entry`)
//!   cut FRAME / merge FRAME          recut the timeline
//!   undo / redo                      the command stack at work
//!   show [SCENARIO OBJECT]           the Figure-1 window
//!   lint                             validation + advisories
//!   dot                              Graphviz map of the scenario graph
//!   cost                             video-vs-3D authoring cost (§5)
//!   playtest                         bot-plays your game, reports coverage
//!   save DIR BASE / load DIR/BASE.vgp
//!   quit
//! ```
//!
//! Example session (pipe-friendly):
//! `printf 'import 2 2\nscenario intro 0\nscenario lab 1\nwire intro entry :: enter :: - :: text "hi"\nshow\nquit\n' | cargo run --example author_interactive`

use std::io::{self, BufRead, Write};

use vgbl::author::command::{Command, CommandStack, TriggerTarget};
use vgbl::author::cost::{estimate, CostParams};
use vgbl::author::fileio::{load_project, save_project};
use vgbl::author::import::{import_footage, ImportConfig};
use vgbl::author::lint::lint_project;
use vgbl::author::render::ascii_ui;
use vgbl::author::Project;
use vgbl::media::color::Rgb;
use vgbl::media::synth::{FootageSpec, ShotSpec, SpriteShape, SpriteSpec};
use vgbl::media::{FrameRate, SegmentId};
use vgbl::scene::{ObjectKind, Rect};

const FRAME: (u32, u32) = (64, 48);

fn place(index: usize) -> Rect {
    // Deterministic non-overlapping slots for mounted objects.
    let col = (index % 4) as i32;
    let row = (index / 4 % 3) as i32;
    Rect::new(2 + col * 15, 6 + row * 13, 12, 10)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut project = Project::new("untitled", FRAME, FrameRate::FPS30);
    let mut stack = CommandStack::new();
    println!("VGBL authoring tool — type `help` for commands");

    let stdin = io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        print!("vgbl> ");
        io::stdout().flush()?;
        let Some(Ok(line)) = lines.next() else {
            break;
        };
        let words: Vec<&str> = line.split_whitespace().collect();
        let result: Result<String, Box<dyn std::error::Error>> = (|| {
            match words.as_slice() {
                [] => Ok(String::new()),
                ["quit"] | ["exit"] => Ok("__quit".into()),
                ["help"] => Ok("see the doc comment at the top of this example".into()),
                ["import", n, secs] => {
                    let n: usize = n.parse()?;
                    let secs: usize = secs.parse()?;
                    let shots = (0..n as u64)
                        .map(|i| ShotSpec {
                            frames: secs.max(1) * 30,
                            background: Rgb::from_seed(i * 31 + 7),
                            sprites: vec![SpriteSpec {
                                shape: SpriteShape::Rect(12, 9),
                                color: Rgb::from_seed(i * 13 + 3),
                                pos: (16.0 + i as f32 * 3.0, 18.0),
                                vel: (0.8, 0.4),
                            }],
                            luma_drift: 4,
                            noise: 2,
                        })
                        .collect();
                    let footage = FootageSpec {
                        width: FRAME.0,
                        height: FRAME.1,
                        rate: FrameRate::FPS30,
                        shots,
                        noise_seed: 11,
                    }
                    .render()?;
                    let report = import_footage(
                        &mut project,
                        &footage.frames,
                        footage.rate,
                        &ImportConfig::default(),
                        Some(&footage.cuts),
                    )?;
                    Ok(format!(
                        "imported {} frames -> {} segments ({:.1}x compression)",
                        report.frames, report.segments, report.compression_ratio
                    ))
                }
                ["scenario", name, seg] => {
                    stack.apply(
                        &mut project,
                        Command::AddScenario {
                            name: (*name).into(),
                            segment: SegmentId(seg.parse()?),
                        },
                    )?;
                    Ok(format!("scenario `{name}` created"))
                }
                ["start", name] => {
                    stack.apply(&mut project, Command::SetStart { name: (*name).into() })?;
                    Ok(format!("start = `{name}`"))
                }
                ["desc", name, rest @ ..] => {
                    stack.apply(
                        &mut project,
                        Command::SetDescription {
                            scenario: (*name).into(),
                            text: rest.join(" "),
                        },
                    )?;
                    Ok("described".into())
                }
                ["button", scenario, name, label @ ..] => {
                    let idx = project
                        .graph
                        .scenario_by_name(scenario)
                        .map(|s| s.objects().len())
                        .unwrap_or(0);
                    stack.apply(
                        &mut project,
                        Command::AddObject {
                            scenario: (*scenario).into(),
                            name: (*name).into(),
                            kind: ObjectKind::Button { label: label.join(" ") },
                            bounds: place(idx),
                        },
                    )?;
                    Ok(format!("button `{name}` mounted at {:?}", place(idx)))
                }
                ["item", scenario, name, take, desc @ ..] => {
                    let takeable = match *take {
                        "take" => true,
                        "fixed" => false,
                        other => return Err(format!("expected take|fixed, got {other}").into()),
                    };
                    let idx = project
                        .graph
                        .scenario_by_name(scenario)
                        .map(|s| s.objects().len())
                        .unwrap_or(0);
                    stack.apply(
                        &mut project,
                        Command::AddAsset {
                            name: format!("{name}_img"),
                            width: 10,
                            height: 10,
                        },
                    )?;
                    stack.apply(
                        &mut project,
                        Command::AddObject {
                            scenario: (*scenario).into(),
                            name: (*name).into(),
                            kind: ObjectKind::Item {
                                asset: format!("{name}_img"),
                                description: desc.join(" "),
                                takeable,
                            },
                            bounds: place(idx),
                        },
                    )?;
                    Ok(format!("item `{name}` mounted"))
                }
                ["npc", name, line @ ..] => {
                    stack.apply(
                        &mut project,
                        Command::AddNpc { name: (*name).into(), line: line.join(" ") },
                    )?;
                    Ok(format!("npc `{name}` registered"))
                }
                ["anchor", scenario, name, npc] => {
                    let idx = project
                        .graph
                        .scenario_by_name(scenario)
                        .map(|s| s.objects().len())
                        .unwrap_or(0);
                    stack.apply(
                        &mut project,
                        Command::AddObject {
                            scenario: (*scenario).into(),
                            name: (*name).into(),
                            kind: ObjectKind::NpcAnchor { npc: (*npc).into() },
                            bounds: place(idx),
                        },
                    )?;
                    Ok(format!("anchor `{name}` -> npc `{npc}`"))
                }
                ["wire", scenario, target, "::", rest @ ..] => {
                    // EVENT :: COND|- :: ACTION ; ACTION ...
                    let joined = rest.join(" ");
                    let mut parts = joined.splitn(3, " :: ");
                    let event = parts.next().unwrap_or_default().trim().to_owned();
                    let cond = parts.next().unwrap_or("-").trim().to_owned();
                    let actions_src = parts.next().unwrap_or_default();
                    let actions: Vec<String> = actions_src
                        .split(" ; ")
                        .map(|a| a.trim().to_owned())
                        .filter(|a| !a.is_empty())
                        .collect();
                    if actions.is_empty() {
                        return Err("wire needs at least one action".into());
                    }
                    let target = if *target == "entry" {
                        TriggerTarget::Entry
                    } else {
                        TriggerTarget::Object((*target).into())
                    };
                    stack.apply(
                        &mut project,
                        Command::AddTrigger {
                            scenario: (*scenario).into(),
                            target,
                            event,
                            condition: if cond == "-" { None } else { Some(cond) },
                            actions,
                        },
                    )?;
                    Ok("wired".into())
                }
                ["cut", frame] => {
                    stack.apply(&mut project, Command::SplitSegment { frame: frame.parse()? })?;
                    Ok(format!("timeline now has {} segments", project.segments.len()))
                }
                ["merge", frame] => {
                    stack.apply(
                        &mut project,
                        Command::MergeSegmentAfter { frame: frame.parse()? },
                    )?;
                    Ok(format!("timeline now has {} segments", project.segments.len()))
                }
                ["undo"] => {
                    stack.undo(&mut project)?;
                    Ok("undone".into())
                }
                ["redo"] => {
                    stack.redo(&mut project)?;
                    Ok("redone".into())
                }
                ["show"] => Ok(ascii_ui(&project, None, Some(&stack))),
                ["show", scenario, object] => {
                    Ok(ascii_ui(&project, Some((scenario, object)), Some(&stack)))
                }
                ["lint"] => {
                    let report = lint_project(&project);
                    let mut out = String::new();
                    for issue in &report.scene.issues {
                        out.push_str(&format!("  {issue}\n"));
                    }
                    for advisory in &report.author {
                        out.push_str(&format!("  (advisory) {advisory}\n"));
                    }
                    out.push_str(&format!(
                        "publishable: {}",
                        if report.is_publishable() { "yes" } else { "NO" }
                    ));
                    Ok(out)
                }
                ["dot"] => Ok(project.graph.to_dot()),
                ["playtest"] => {
                    let report = vgbl::playtest::playtest(
                        &project,
                        vgbl::playtest::PlaytestStyle::Guided,
                        200,
                    )?;
                    let mut out = format!(
                        "outcome: {:?}, {} decisions, score {}, {} knowledge event(s)\n",
                        report.outcome, report.steps, report.score, report.knowledge_events
                    );
                    if !report.unvisited_scenarios.is_empty() {
                        out.push_str(&format!(
                            "never visited: {:?}\n",
                            report.unvisited_scenarios
                        ));
                    }
                    if !report.unexamined_objects.is_empty() {
                        out.push_str(&format!(
                            "never examined: {:?}\n",
                            report.unexamined_objects
                        ));
                    }
                    out.push_str(if report.completed() {
                        "the game is completable"
                    } else {
                        "NOT completed within the budget - check your wiring"
                    });
                    Ok(out)
                }
                ["cost"] => {
                    let c = estimate(&project, &CostParams::default());
                    Ok(format!(
                        "video {} ops vs 3D {} ops -> {:.1}x cheaper",
                        c.video_ops,
                        c.threed_ops,
                        c.advantage()
                    ))
                }
                ["save", dir, base] => {
                    let (vgp, vgv) = save_project(&project, std::path::Path::new(dir), base)?;
                    Ok(format!(
                        "saved {} {}",
                        vgp.display(),
                        vgv.map(|p| p.display().to_string()).unwrap_or_default()
                    ))
                }
                ["load", path] => {
                    project = load_project(std::path::Path::new(path))?;
                    stack = CommandStack::new();
                    Ok(format!("loaded `{}`", project.name))
                }
                other => Err(format!("unknown command {other:?}; try `help`").into()),
            }
        })();
        match result {
            Ok(msg) if msg == "__quit" => break,
            Ok(msg) if msg.is_empty() => {}
            Ok(msg) => println!("{msg}"),
            Err(e) => println!("! {e}"),
        }
    }
    Ok(())
}
