//! Delivering an interactive lesson over a network (§2's interactive-TV
//! setting): startup delay and rebuffering across link speeds and
//! prefetch policies, including the branch-aware policy that exploits the
//! scenario graph's out-edges — something linear streaming cannot do.
//!
//! The lesson is hub-shaped (a lobby with doors to five rooms), so the
//! "next" content on the timeline is usually *not* where the player goes
//! — the worst case for linear prefetch, the home turf of branch-aware.
//!
//! Run with: `cargo run --example streaming_lesson`

use vgbl::media::codec::{EncodeConfig, Encoder, Quality};
use vgbl::media::color::Rgb;
use vgbl::media::synth::{FootageSpec, ShotSpec, SpriteShape, SpriteSpec};
use vgbl::media::{FrameRate, SegmentId, SegmentTable};
use vgbl::stream::{simulate, ChunkMap, LinkModel, PrefetchPolicy, TraceStep};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Six locations: hub (segment 0) plus five rooms, 2 s each.
    let shots = (0..6u64)
        .map(|i| ShotSpec {
            frames: 60,
            background: Rgb::from_seed(i * 11 + 3),
            sprites: vec![SpriteSpec {
                shape: SpriteShape::Rect(14, 10),
                color: Rgb::from_seed(i * 5 + 1),
                pos: (12.0 + i as f32 * 4.0, 14.0),
                vel: (1.5, 0.7),
            }],
            luma_drift: 4,
            noise: 2,
        })
        .collect();
    let footage = FootageSpec {
        width: 64,
        height: 48,
        rate: FrameRate::FPS30,
        shots,
        noise_seed: 9,
    }
    .render()?;
    let video = Encoder::new(EncodeConfig {
        gop: 15,
        quality: Quality::Medium,
        ..Default::default()
    })
    .encode(&footage.frames, footage.rate)?;
    let table = SegmentTable::from_cuts(footage.len(), &footage.cuts)?;
    let map = ChunkMap::build(&video, &table)?;
    println!(
        "lesson: 6 locations, {} chunks, {} payload bytes\n",
        map.len(),
        map.total_bytes()
    );

    // The player pops between the hub and far rooms — non-linear jumps.
    let rooms = [3u32, 1, 5, 2];
    let all_rooms: Vec<SegmentId> = (1..6).map(SegmentId).collect();
    let mut trace = Vec::new();
    for &room in &rooms {
        trace.push(TraceStep {
            segment: SegmentId(0),
            watch_ms: 1500.0,
            branch_targets: all_rooms.clone(),
        });
        trace.push(TraceStep {
            segment: SegmentId(room),
            watch_ms: 2500.0,
            branch_targets: vec![SegmentId(0)],
        });
    }

    println!(
        "{:<10} {:<14} {:>11} {:>8} {:>10} {:>8}",
        "link", "policy", "startup ms", "stalls", "stall ms", "waste %"
    );
    for mbps in [0.5, 1.0, 2.0, 8.0] {
        let link = LinkModel::mbps(mbps, 30.0)?;
        for policy in [
            PrefetchPolicy::None,
            PrefetchPolicy::Linear { lookahead: 3 },
            PrefetchPolicy::BranchAware { per_branch: 1 },
        ] {
            let stats = simulate(&map, &link, policy, &trace)?;
            println!(
                "{:<10} {:<14} {:>11.0} {:>8} {:>10.0} {:>8.1}",
                format!("{mbps} Mbit/s"),
                policy.label(),
                stats.startup_ms,
                stats.stalls,
                stats.stall_ms,
                stats.waste_ratio() * 100.0
            );
        }
    }
    println!("\nbranch-aware trades some wasted bytes for fewer mid-lesson stalls.");
    Ok(())
}
