//! Play "Fix the Computer" interactively from the terminal.
//!
//! The closest thing to sitting in front of the paper's runtime
//! environment: the Figure-2 window redraws after every command, with the
//! live (toy-codec-decoded) video behind the objects.
//!
//! ```text
//! cargo run --release --example play_interactive
//! commands:
//!   click X Y         examine / press whatever is at (X, Y)
//!   drag X Y          drag the object at (X, Y) into the backpack
//!   use ITEM X Y      apply a backpack item to the object at (X, Y)
//!   choose N          pick response N in a conversation
//!   wait MS           let the video play for MS milliseconds
//!   look              redraw the window
//!   save / load       snapshot / restore progress (in-memory)
//!   help, quit
//! ```
//!
//! Also works non-interactively: pipe commands in, e.g.
//! `printf 'click 25 20\nquit\n' | cargo run --example play_interactive`.

use std::io::{self, BufRead, Write};

use vgbl::prelude::*;
use vgbl::runtime::save::SaveGame;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (project, _) = vgbl::sample::fix_the_computer_project(3)?;
    let game = vgbl::publish::publish(project)?;
    let mut player = Player::new(&game)?;
    let mut saved: Option<SaveGame> = None;

    println!("{}", player.ui()?);
    println!("(type `help` for commands)");

    let stdin = io::stdin();
    let mut lines = stdin.lock().lines();
    loop {
        print!("> ");
        io::stdout().flush()?;
        let Some(Ok(line)) = lines.next() else {
            break;
        };
        let words: Vec<&str> = line.split_whitespace().collect();
        let input = match words.as_slice() {
            [] => continue,
            ["quit"] | ["exit"] => break,
            ["help"] => {
                println!(
                    "commands: click X Y | drag X Y | use ITEM X Y | choose N |\n\
                     wait MS | look | save | load | quit"
                );
                continue;
            }
            ["look"] => {
                println!("{}", player.ui()?);
                continue;
            }
            ["save"] => {
                saved = Some(SaveGame::capture(
                    &game.graph,
                    player.session().state(),
                    player.session().inventory(),
                ));
                println!("(progress saved)");
                continue;
            }
            ["load"] => {
                match saved.take() {
                    Some(save) => {
                        player = Player::restore(&game, save.state, save.inventory)?;
                        println!("(progress restored)");
                        println!("{}", player.ui()?);
                    }
                    None => println!("(nothing saved yet)"),
                }
                continue;
            }
            ["click", x, y] => match (x.parse(), y.parse()) {
                (Ok(x), Ok(y)) => InputEvent::click(x, y),
                _ => {
                    println!("usage: click X Y");
                    continue;
                }
            },
            ["drag", x, y] => match (x.parse::<i32>(), y.parse::<i32>()) {
                (Ok(x), Ok(y)) => {
                    let c = game.session_config().inventory_window.center();
                    InputEvent::drag(x, y, c.x, c.y)
                }
                _ => {
                    println!("usage: drag X Y");
                    continue;
                }
            },
            ["use", item, x, y] => match (x.parse(), y.parse()) {
                (Ok(x), Ok(y)) => InputEvent::apply(*item, x, y),
                _ => {
                    println!("usage: use ITEM X Y");
                    continue;
                }
            },
            ["choose", n] => match n.parse::<usize>() {
                Ok(n) if n >= 1 => InputEvent::Choose(n - 1),
                _ => {
                    println!("usage: choose N (1-based)");
                    continue;
                }
            },
            ["wait", ms] => match ms.parse() {
                Ok(ms) => InputEvent::Tick(ms),
                _ => {
                    println!("usage: wait MS");
                    continue;
                }
            },
            other => {
                println!("unknown command {other:?}; try `help`");
                continue;
            }
        };

        match player.handle(input) {
            Ok(feedback) => {
                for fb in &feedback {
                    println!("  {fb}");
                }
                println!("{}", player.ui()?);
                if player.session().state().is_over() {
                    println!("The game is over — thanks for playing!");
                    break;
                }
            }
            Err(e) => println!("  ! {e}"),
        }
    }
    Ok(())
}
