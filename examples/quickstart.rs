//! Quickstart: author → publish → play in under a minute.
//!
//! Builds the paper's §3.2 "fix the computer" game end-to-end through the
//! authoring pipeline (synthetic footage, shot detection, the two
//! editors), publishes it, and plays the winning line while printing what
//! the player sees.
//!
//! Run with: `cargo run --example quickstart`

use vgbl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Author the game (footage synthesis + import + editors).
    let (project, import) = vgbl::sample::fix_the_computer_project(3)?;
    println!(
        "Imported {} frames -> {} segments ({} bytes encoded, {:.1}x compression)",
        import.frames,
        import.segments,
        import.encoded_bytes,
        import.compression_ratio
    );

    // 2. Publish: freeze content, validate, ready for any number of players.
    let game = vgbl::publish::publish(project)?;
    println!("Published '{}' with {} scenarios\n", game.title, game.graph.len());

    // 3. Play the intended solution.
    let mut player = Player::new(&game)?;
    let solution: Vec<(&str, InputEvent)> = vec![
        ("Examine the computer", InputEvent::click(25, 20)),
        ("Walk to the market", InputEvent::click(42, 4)),
        ("Take the fan", InputEvent::drag(12, 12, 60, 20)),
        ("Return to class", InputEvent::click(42, 4)),
        ("Install the fan", InputEvent::apply("fan", 25, 20)),
    ];
    for (what, input) in solution {
        println!("> {what}");
        for fb in player.handle(input)? {
            println!("  {fb}");
        }
        if !player.session().state().is_over() {
            player.handle(InputEvent::Tick(400))?; // watch the video a moment
        }
    }

    let state = player.session().state();
    println!(
        "\nOutcome: {:?}, score {}, rewards {:?}",
        state.ended,
        state.score,
        player.session().inventory().rewards()
    );
    Ok(())
}
