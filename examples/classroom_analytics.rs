//! A distance-learning cohort: many simulated students, one report.
//!
//! The paper motivates the platform with distance learning — many
//! students playing the same course concurrently. This example hosts a
//! mixed cohort (guided and random players) on the parallel session
//! server and prints the learning report an instructor would read
//! (completion, decisions, knowledge delivery, rewards — §3.2/§3.3).
//!
//! Run with: `cargo run --example classroom_analytics`

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use vgbl::runtime::bot::{Bot, GuidedBot, RandomBot};
use vgbl::runtime::fixtures::{fix_the_computer, FRAME};
use vgbl::runtime::server::run_cohort;
use vgbl::runtime::SessionConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = Arc::new(fix_the_computer());
    let config = SessionConfig::for_frame(FRAME.0, FRAME.1);

    for (label, factory) in [
        (
            "guided students",
            Box::new(|_i: usize| Box::new(GuidedBot::new()) as Box<dyn Bot>)
                as Box<dyn Fn(usize) -> Box<dyn Bot> + Sync>,
        ),
        (
            "random clickers",
            Box::new(|i: usize| {
                Box::new(RandomBot::new(StdRng::seed_from_u64(i as u64))) as Box<dyn Bot>
            }),
        ),
    ] {
        let report = run_cohort(graph.clone(), config.clone(), 40, 4, &*factory, 120, 50)?;
        let l = &report.learning;
        println!("cohort: {label} ({} sessions, 4 worker threads)", report.sessions);
        println!("  completion    : {:>5.1}%", l.completion_rate() * 100.0);
        println!("  avg decisions : {:>5.1}", l.avg_decisions);
        println!("  avg knowledge : {:>5.1} events", l.avg_knowledge);
        println!("  avg rewards   : {:>5.2}", l.avg_rewards);
        println!("  avg score     : {:>5.1}", l.avg_score);
        println!("  avg duration  : {:>5.0} ms (game time)\n", l.avg_duration_ms);
    }

    // The instructor's attention heatmap: which props does a diligent
    // student actually investigate, and for how long per scenario?
    let mut bot = vgbl::runtime::ExplorerBot::new();
    let run = vgbl::runtime::bot::run_session(graph, config, &mut bot, 200, 50)?;
    println!("attention heatmap (one explorer session):");
    for ((scenario, object), count) in run.log.examinations_per_object() {
        println!("  {scenario:<12} {object:<12} {}", "#".repeat(count));
    }
    println!("time per scenario:");
    for (scenario, ms) in run.log.time_per_scenario() {
        println!("  {scenario:<12} {ms:>6} ms");
    }
    let (gained, lost) = run.log.score_swings();
    println!("score swings: +{gained} / -{lost}");
    Ok(())
}
