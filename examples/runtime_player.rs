//! The runtime environment — the reproduction of the paper's **Figure 2**.
//!
//! Publishes the sample game and plays it step by step, printing the full
//! player window after the moments Figure 2 depicts: a video frame with a
//! mounted image object, the inventory window filling up, and buttons
//! that switch video segments.
//!
//! Run with: `cargo run --example runtime_player`

use vgbl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (project, _) = vgbl::sample::fix_the_computer_project(3)?;
    let game = vgbl::publish::publish(project)?;
    let mut player = Player::new(&game)?;

    println!("=== On entry (classroom, teacher greeting) ===");
    println!("{}", player.ui()?);

    player.handle(InputEvent::click(25, 20))?; // examine the computer
    player.handle(InputEvent::Tick(300))?;
    println!("=== After examining the computer ===");
    println!("{}", player.ui()?);

    player.handle(InputEvent::click(42, 4))?; // to market
    player.handle(InputEvent::Tick(300))?;
    player.handle(InputEvent::drag(12, 12, 60, 20))?; // drag item to backpack
    println!("=== Market: the fan is now in the inventory window ===");
    println!("{}", player.ui()?);

    player.handle(InputEvent::click(42, 4))?; // back to class
    let feedback = player.handle(InputEvent::apply("fan", 25, 20))?; // fix it
    println!("=== Ending ===");
    for fb in &feedback {
        println!("  {fb}");
    }

    let stats = player.playback_stats();
    println!(
        "\nplayback: {} frames served, {} decoded, {} segment switches",
        stats.frames_served, stats.frames_decoded, stats.switches
    );
    let log = player.session().log();
    println!(
        "analytics: {} decisions, {} knowledge events, outcome {:?}",
        log.decisions(),
        log.knowledge_events(),
        log.outcome()
    );
    Ok(())
}
