//! The authoring-tool interface — the reproduction of the paper's
//! **Figure 1**.
//!
//! Builds the sample project through the §4.1 import and both editors,
//! prints the authoring window (timeline, project tree, palette,
//! property pane), demonstrates undo/redo, runs the lint pass, compares
//! authoring cost against a 3D workflow (the paper's §5 claim), and
//! round-trips the project through the `.vgp` format.
//!
//! Run with: `cargo run --example authoring_tool`

use vgbl::author::command::Command;
use vgbl::author::cost::{estimate, CostParams};
use vgbl::author::lint::lint_project;
use vgbl::author::render::ascii_ui;
use vgbl::author::serialize::{from_vgp, to_vgp};
use vgbl::author::CommandStack;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (mut project, import) = vgbl::sample::fix_the_computer_project(3)?;
    println!(
        "Import: {} frames, detected cuts at {:?} (accuracy: {:?})\n",
        import.frames,
        import.cuts,
        import.accuracy.map(|a| (a.precision(), a.recall()))
    );

    // Figure 1: the authoring window with the computer object selected.
    let mut stack = CommandStack::new();
    println!("{}", ascii_ui(&project, Some(("classroom", "computer")), Some(&stack)));

    // Undo/redo at work: a quick edit, reverted.
    stack.apply(
        &mut project,
        Command::SetDescription {
            scenario: "market".into(),
            text: "A temporary note.".into(),
        },
    )?;
    println!("after edit : {}", project.graph.scenario_by_name("market").unwrap().description);
    stack.undo(&mut project)?;
    println!("after undo : {}", project.graph.scenario_by_name("market").unwrap().description);
    stack.redo(&mut project)?;
    stack.undo(&mut project)?;

    // Lint report.
    let lint = lint_project(&project);
    println!(
        "\nlint: {} scene issue(s), {} authoring advisory(ies); publishable: {}",
        lint.scene.issues.len(),
        lint.author.len(),
        lint.is_publishable()
    );

    // The §5 cost claim, quantified.
    let cost = estimate(&project, &CostParams::default());
    println!(
        "authoring cost: video {} ops vs 3D {} ops -> {:.1}x cheaper",
        cost.video_ops,
        cost.threed_ops,
        cost.advantage()
    );

    // Save / load through the .vgp project format.
    let text = to_vgp(&project)?;
    let reloaded = from_vgp(&text)?;
    println!(
        "\n.vgp round-trip: {} bytes, graphs equal: {}",
        text.len(),
        reloaded.graph == project.graph
    );
    Ok(())
}
