//! Cross-crate property tests: every persistence boundary and codec path
//! must round-trip for *arbitrary* inputs, not just the fixtures.

use proptest::prelude::*;

use vgbl::media::codec::{Decoder, EncodeConfig, Encoder, Quality};
use vgbl::media::color::Rgb;
use vgbl::media::synth::{FootageSpec, ShotSpec, SpriteShape, SpriteSpec};
use vgbl::media::{ContainerReader, ContainerWriter, FrameRate, SegmentTable};
use vgbl::script::{parse_expr, Action, EventKind};

/// Strategy: small random footage specs (kept tiny so codec tests stay
/// fast in debug builds).
fn footage_spec() -> impl Strategy<Value = FootageSpec> {
    let shot = (
        1usize..8,                      // frames
        any::<u64>(),                   // background seed
        0u8..3,                         // noise
        -10i16..10,                     // drift
        proptest::option::of((1u32..6, any::<u64>(), -3.0f32..3.0, -3.0f32..3.0)),
    )
        .prop_map(|(frames, bg, noise, drift, sprite)| ShotSpec {
            frames,
            background: Rgb::from_seed(bg),
            sprites: sprite
                .map(|(r, seed, vx, vy)| {
                    vec![SpriteSpec {
                        shape: SpriteShape::Circle(r),
                        color: Rgb::from_seed(seed),
                        pos: (8.0, 8.0),
                        vel: (vx, vy),
                    }]
                })
                .unwrap_or_default(),
            luma_drift: drift,
            noise,
        });
    (proptest::collection::vec(shot, 1..4), any::<u64>()).prop_map(|(shots, seed)| FootageSpec {
        width: 24,
        height: 16,
        rate: FrameRate::FPS30,
        shots,
        noise_seed: seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lossless_codec_roundtrip(spec in footage_spec(), gop in 1usize..6) {
        let footage = spec.render().unwrap();
        let enc = Encoder::new(EncodeConfig {
            quality: Quality::Lossless,
            gop,
            search_range: 3,
            threads: 1,
        });
        let video = enc.encode(&footage.frames, footage.rate).unwrap();
        let decoded = Decoder::default().decode_all(&video).unwrap();
        prop_assert_eq!(&decoded.frames, &footage.frames);
    }

    #[test]
    fn lossy_codec_error_bounded(spec in footage_spec()) {
        let footage = spec.render().unwrap();
        for quality in [Quality::High, Quality::Medium, Quality::Low] {
            let enc = Encoder::new(EncodeConfig {
                quality,
                gop: 4,
                search_range: 3,
                threads: 1,
            });
            let video = enc.encode(&footage.frames, footage.rate).unwrap();
            let decoded = Decoder::default().decode_all(&video).unwrap();
            let bound = (quality.qstep() * quality.qstep()) as f64;
            for (a, b) in footage.frames.iter().zip(decoded.frames.iter()) {
                prop_assert!(a.mse(b).unwrap() <= bound);
            }
        }
    }

    #[test]
    fn container_roundtrip(spec in footage_spec()) {
        let footage = spec.render().unwrap();
        let video = Encoder::new(EncodeConfig { gop: 3, search_range: 2, ..Default::default() })
            .encode(&footage.frames, footage.rate)
            .unwrap();
        let bytes = ContainerWriter::write(&video);
        let back = ContainerReader::read(&bytes).unwrap();
        prop_assert_eq!(back, video);
    }

    #[test]
    fn container_never_panics_on_corruption(
        spec in footage_spec(),
        flip_at in any::<prop::sample::Index>(),
        flip_bits in 1u8..=255,
    ) {
        let footage = spec.render().unwrap();
        let video = Encoder::new(EncodeConfig { gop: 3, search_range: 2, ..Default::default() })
            .encode(&footage.frames, footage.rate)
            .unwrap();
        let mut bytes = ContainerWriter::write(&video);
        let idx = flip_at.index(bytes.len());
        bytes[idx] ^= flip_bits;
        // Must return (Ok or Err), never panic. If it parses, decoding
        // must also not panic.
        if let Ok(parsed) = ContainerReader::read(&bytes) {
            let _ = Decoder::default().decode_all(&parsed);
        }
    }

    #[test]
    fn segment_table_partitions(frame_count in 1usize..500, cuts in proptest::collection::btree_set(1usize..499, 0..12)) {
        let cuts: Vec<usize> = cuts.into_iter().filter(|&c| c < frame_count).collect();
        let table = SegmentTable::from_cuts(frame_count, &cuts).unwrap();
        // Exact partition.
        let mut expect = 0usize;
        for seg in table.segments() {
            prop_assert_eq!(seg.start, expect);
            prop_assert!(seg.end > seg.start);
            expect = seg.end;
        }
        prop_assert_eq!(expect, frame_count);
        // Point lookup agrees with linear scan.
        for f in (0..frame_count).step_by((frame_count / 17).max(1)) {
            let found = table.segment_at(f).unwrap();
            prop_assert!(found.contains(f));
        }
    }
}

/// Strategies for script-language values.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("not a keyword", |s| s != "true" && s != "false")
}

fn text() -> impl Strategy<Value = String> {
    // Includes quotes, backslashes, newlines and unicode.
    proptest::collection::vec(
        prop_oneof![
            Just('a'),
            Just('Z'),
            Just(' '),
            Just('"'),
            Just('\\'),
            Just('\n'),
            Just('\t'),
            Just('傘'),
            Just('%'),
        ],
        0..12,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        ident().prop_map(Action::GoTo),
        text().prop_map(Action::ShowText),
        ident().prop_map(Action::ShowImage),
        text().prop_map(Action::OpenUrl),
        ident().prop_map(Action::GiveItem),
        ident().prop_map(Action::TakeItem),
        (ident(), any::<bool>()).prop_map(|(n, b)| Action::SetFlag(n, b)),
        any::<i64>().prop_map(Action::AddScore),
        ident().prop_map(Action::Award),
        (ident(), text()).prop_map(|(npc, line)| Action::Say { npc, line }),
        text().prop_map(Action::End),
    ]
}

fn event() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        Just(EventKind::Click),
        Just(EventKind::Drag),
        ident().prop_map(EventKind::Use),
        proptest::char::range('!', '~').prop_map(EventKind::Key),
        Just(EventKind::Enter),
        any::<u64>().prop_map(EventKind::Timer),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn action_display_parse_roundtrip(a in action()) {
        let s = a.to_string();
        let back = Action::parse(&s).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn event_display_parse_roundtrip(e in event()) {
        let s = e.to_string();
        let back = EventKind::parse(&s).unwrap();
        prop_assert_eq!(back, e);
    }

    #[test]
    fn parser_never_panics(src in "[ -~]{0,40}") {
        let _ = parse_expr(&src);
    }

    #[test]
    fn expr_display_reparses(
        a in ident(), b in ident(), n in -1000i64..1000, s in text()
    ) {
        // Build a few structured expressions and round-trip via Display.
        let sources = [
            format!("{a} + {n} * {b}"),
            format!("!({a} == {b}) && has(\"{}\")", s.replace(['\\', '"'], "")),
            format!("({a} - {n}) >= {b} || false"),
        ];
        for src in &sources {
            if let Ok(expr) = parse_expr(src) {
                let printed = expr.to_string();
                let back = parse_expr(&printed).unwrap();
                prop_assert_eq!(back, expr, "source {}", src);
            }
        }
    }
}

mod save_props {
    use super::*;
    use vgbl::runtime::{GameState, Inventory, SaveGame};

    fn game_state() -> impl Strategy<Value = GameState> {
        (
            ident(),
            any::<i64>(),
            proptest::collection::btree_map(ident(), any::<bool>(), 0..5),
            proptest::collection::btree_set(ident(), 0..5),
            proptest::collection::btree_set(ident(), 0..5),
            (any::<u32>(), any::<u32>()),
            (any::<i32>(), any::<i32>()),
            proptest::option::of(ident()),
        )
            .prop_map(
                |(scenario, score, flags, visited, examined, clocks, avatar, ended)| {
                    let mut s = GameState::new(scenario);
                    s.score = score;
                    s.flags = flags;
                    s.visited.extend(visited);
                    s.examined = examined;
                    s.scenario_clock_ms = clocks.0 as u64;
                    s.total_clock_ms = clocks.1 as u64;
                    s.avatar = avatar;
                    s.ended = ended;
                    s
                },
            )
    }

    fn inventory() -> impl Strategy<Value = Inventory> {
        (
            proptest::collection::btree_map(ident(), 1u32..4, 0..5),
            proptest::collection::vec(ident(), 0..4),
        )
            .prop_map(|(items, rewards)| {
                let mut inv = Inventory::new();
                for (item, n) in items {
                    for _ in 0..n {
                        inv.add(&item);
                    }
                }
                for r in rewards {
                    inv.award(r);
                }
                inv
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn save_game_roundtrip(
            state in game_state(),
            inv in inventory(),
            hash in any::<u64>(),
            dialogue in proptest::option::of((ident(), any::<u32>())),
            fired in proptest::collection::btree_set(any::<u64>(), 0..4),
            trace in proptest::option::of((any::<u64>(), any::<u64>())),
        ) {
            let save = SaveGame {
                game_hash: hash,
                state,
                inventory: inv,
                dialogue,
                fired_timers: fired,
                trace,
            };
            let text = save.to_text();
            let back = SaveGame::from_text(&text).unwrap();
            prop_assert_eq!(back, save);
        }

        #[test]
        fn save_parser_never_panics(text in "[ -~\n]{0,300}") {
            let _ = SaveGame::from_text(&text);
        }
    }
}

/// `SessionLog::to_csv` is the instructor-facing interchange format, so
/// it must round-trip through any minimal RFC-4180 reader for arbitrary
/// content — including fields containing commas, quotes, `\n` and `\r`.
mod session_log_csv {
    use super::*;
    use vgbl::runtime::{LogEvent, SessionLog};

    /// A minimal RFC-4180 parser: quoted fields with `""` escapes, `,`
    /// separators, rows ending in LF or CRLF. Anything `to_csv` emits
    /// that this cannot reassemble is an escaping bug.
    fn parse_csv(s: &str) -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        let mut row = Vec::new();
        let mut field = String::new();
        let mut in_quotes = false;
        let mut chars = s.chars().peekable();
        while let Some(c) = chars.next() {
            if in_quotes {
                if c == '"' {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                } else {
                    field.push(c);
                }
            } else {
                match c {
                    '"' => in_quotes = true,
                    ',' => row.push(std::mem::take(&mut field)),
                    // A compliant reader ends the row at CR, CRLF or LF;
                    // an unquoted carriage return therefore *breaks* row
                    // structure — exactly the bug this property pins.
                    '\r' | '\n' => {
                        if c == '\r' && chars.peek() == Some(&'\n') {
                            chars.next();
                        }
                        row.push(std::mem::take(&mut field));
                        rows.push(std::mem::take(&mut row));
                    }
                    _ => field.push(c),
                }
            }
        }
        if !field.is_empty() || !row.is_empty() {
            row.push(field);
            rows.push(row);
        }
        rows
    }

    /// Strings that stress every quoting rule at once.
    fn awkward() -> impl Strategy<Value = String> {
        proptest::collection::vec(
            prop_oneof![
                Just('a'),
                Just('Z'),
                Just(' '),
                Just(','),
                Just('"'),
                Just('\n'),
                Just('\r'),
                Just('é'),
                Just('中'),
            ],
            0..10,
        )
        .prop_map(|cs| cs.into_iter().collect())
    }

    fn log_event() -> impl Strategy<Value = LogEvent> {
        prop_oneof![
            (0u64..1_000_000, awkward())
                .prop_map(|(t_ms, name)| LogEvent::ScenarioEntered { t_ms, name }),
            (0u64..1_000_000, awkward(), awkward()).prop_map(|(t_ms, scenario, object)| {
                LogEvent::ObjectExamined { t_ms, scenario, object }
            }),
            (0u64..1_000_000, awkward(), awkward())
                .prop_map(|(t_ms, item, object)| LogEvent::ItemUsed { t_ms, item, object }),
            (0u64..1_000_000, awkward())
                .prop_map(|(t_ms, item)| LogEvent::ItemTaken { t_ms, item }),
            (0u64..1_000_000, -500i64..500)
                .prop_map(|(t_ms, delta)| LogEvent::ScoreDelta { t_ms, delta }),
            (0u64..1_000_000, awkward())
                .prop_map(|(t_ms, outcome)| LogEvent::Ended { t_ms, outcome }),
        ]
    }

    /// What `to_csv` should put in the `(t_ms, event, a, b)` columns.
    fn expected(e: &LogEvent) -> (u64, &'static str, String, String) {
        match e {
            LogEvent::ScenarioEntered { t_ms, name } => {
                (*t_ms, "scenario_entered", name.clone(), String::new())
            }
            LogEvent::ObjectExamined { t_ms, scenario, object } => {
                (*t_ms, "object_examined", scenario.clone(), object.clone())
            }
            LogEvent::ItemUsed { t_ms, item, object } => {
                (*t_ms, "item_used", item.clone(), object.clone())
            }
            LogEvent::ItemTaken { t_ms, item } => (*t_ms, "item_taken", item.clone(), String::new()),
            LogEvent::ScoreDelta { t_ms, delta } => {
                (*t_ms, "score_delta", delta.to_string(), String::new())
            }
            LogEvent::Ended { t_ms, outcome } => (*t_ms, "ended", outcome.clone(), String::new()),
            _ => unreachable!("strategy only builds the variants above"),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        #[test]
        fn session_log_csv_roundtrips(events in proptest::collection::vec(log_event(), 0..12)) {
            let mut log = SessionLog::new();
            for e in events.clone() {
                log.push(e);
            }
            let rows = parse_csv(&log.to_csv());
            prop_assert_eq!(rows.len(), events.len() + 1, "one row per event plus the header");
            prop_assert_eq!(rows[0].join("\u{1}"), "t_ms\u{1}event\u{1}a\u{1}b");
            for (row, e) in rows[1..].iter().zip(&events) {
                prop_assert_eq!(row.len(), 4, "every row has 4 columns");
                let (t_ms, kind, a, b) = expected(e);
                prop_assert_eq!(&row[0], &t_ms.to_string());
                prop_assert_eq!(&row[1], kind);
                prop_assert_eq!(&row[2], &a);
                prop_assert_eq!(&row[3], &b);
            }
        }
    }
}
