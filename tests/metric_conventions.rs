//! Pins the workspace-wide empty-input convention for ratio metrics in
//! one table-driven test.
//!
//! The convention: **on empty input, every ratio metric returns its
//! perfect value** — `1.0` for higher-is-better metrics (hit rates,
//! completion, delivery), `0.0` for lower-is-better metrics (waste,
//! rebuffer, conceal). Before this was unified, `hit_rate` and
//! `completion_rate` returned `0.0` (the *worst* value for their
//! semantics) while `delivery_ratio` returned `1.0`, so "no data yet"
//! read as a catastrophe on some dashboards and perfection on others.

use vgbl_media::GopCache;
use vgbl_obs::{HistogramSnapshot, Obs};
use vgbl_runtime::analytics::{DecodeReuse, LearningReport, ResilienceReport};
use vgbl_stream::StreamStats;

fn empty_stream_stats() -> StreamStats {
    StreamStats {
        startup_ms: 0.0,
        stalls: 0,
        stall_ms: 0.0,
        bytes_fetched: 0,
        wasted_bytes: 0,
        play_ms: 0.0,
        retries: 0,
        timeouts: 0,
        gave_up: 0,
        fast_failed: 0,
        conceal_ms: 0.0,
    }
}

#[test]
fn empty_input_ratios_return_their_perfect_value() {
    let stream = empty_stream_stats();
    let cache = GopCache::new(4);
    let reuse = DecodeReuse::from_cache(&cache.stats());
    let learning = LearningReport::from_sessions(std::iter::empty());
    let resilience = ResilienceReport::from_sessions(&[], &[]);

    // (metric, observed, perfect value under the convention)
    let table: &[(&str, f64, f64)] = &[
        // Higher is better → perfect value is 1.0.
        ("CacheStats::hit_rate", cache.stats().hit_rate(), 1.0),
        ("DecodeReuse::hit_rate", reuse.hit_rate(), 1.0),
        ("LearningReport::completion_rate", learning.completion_rate(), 1.0),
        ("StreamStats::delivery_ratio", stream.delivery_ratio(), 1.0),
        ("ResilienceReport::avg_delivery_ratio", resilience.avg_delivery_ratio, 1.0),
        // Lower is better → perfect value is 0.0.
        ("StreamStats::waste_ratio", stream.waste_ratio(), 0.0),
        ("StreamStats::rebuffer_ratio", stream.rebuffer_ratio(), 0.0),
        ("ResilienceReport::conceal_ratio", resilience.conceal_ratio(), 0.0),
        ("ResilienceReport::rebuffer_ratio", resilience.rebuffer_ratio(), 0.0),
    ];
    for (name, observed, perfect) in table {
        assert_eq!(
            observed, perfect,
            "{name}: empty input must return its perfect value {perfect}, got {observed}"
        );
    }
}

#[test]
fn degenerate_stalled_input_is_not_empty_input() {
    // A session (or cohort) that stalled without playing is the worst
    // playback, not an empty one: the lower-is-better rebuffer ratio
    // must degrade to infinity, never report the perfect 0.0.
    let stalled = StreamStats { stall_ms: 750.0, ..empty_stream_stats() };
    assert_eq!(stalled.rebuffer_ratio(), f64::INFINITY);
    let cohort = ResilienceReport::from_sessions(&[stalled], &[]);
    assert_eq!(cohort.rebuffer_ratio(), f64::INFINITY);
}

#[test]
fn histogram_quantiles_never_exceed_the_observed_range() {
    // Pre-fix, percentiles reported the raw power-of-two bucket upper
    // bound: a histogram holding only the value 1000 claimed p99 = 1023
    // — 2.3% of latency that never happened. Pinned semantics: every
    // percentile estimate is clamped into the observed [min, max], so a
    // single-bucket histogram reports that bucket's exact observed
    // value, never an upper bound no sample reached.
    let obs = Obs::recording();
    let h = obs.histogram("conv.single", &[]);
    for _ in 0..3 {
        h.record(1000);
    }
    let hs = obs.snapshot().histogram("conv.single").unwrap();
    assert_eq!((hs.min, hs.max), (1000, 1000));
    assert_eq!((hs.p50, hs.p90, hs.p99), (1000, 1000, 1000));

    // Mixed buckets: the top percentile still cannot exceed max.
    let m = obs.histogram("conv.mixed", &[]);
    for v in [3u64, 5, 700] {
        m.record(v);
    }
    let ms = obs.snapshot().histogram("conv.mixed").unwrap();
    assert!(ms.p99 <= ms.max, "p99 {} must not exceed observed max {}", ms.p99, ms.max);
    assert!(ms.p50 >= ms.min, "p50 {} must not undershoot observed min {}", ms.p50, ms.min);
}

#[test]
fn histogram_empty_and_absent_semantics_are_pinned() {
    // Absent histogram → None; registered-but-empty → the zeroed
    // snapshot. Neither panics, neither produces a NaN-like sentinel.
    let obs = Obs::recording();
    assert_eq!(obs.snapshot().histogram("conv.absent"), None);
    let _ = obs.histogram("conv.empty", &[]);
    let hs = obs.snapshot().histogram("conv.empty").unwrap();
    assert_eq!(hs, HistogramSnapshot::default());
    assert_eq!((hs.p50, hs.p90, hs.p99), (0, 0, 0));
}

#[test]
fn span_recorder_survives_unbalanced_enter_exit_interleaving() {
    // `exit`/`close_all` on an empty stack are deterministic no-ops:
    // instrumented fault paths fire them freely, and the resulting
    // trace must be identical however many stray exits happened.
    let run = |stray_exits: usize| {
        let obs = Obs::recording();
        let mut rec = obs.recorder("unbalanced".into());
        for _ in 0..stray_exits {
            rec.exit(5);
        }
        rec.close_all(7);
        rec.enter("session", 10);
        rec.exit(20);
        rec.exit(30); // stray again: nothing open
        rec.close_all(40); // idempotent on a closed stack
        rec.enter("tail", 50);
        rec.exit(60);
        assert_eq!(rec.depth(), 0);
        obs.attach(rec);
        obs.snapshot()
    };
    let clean = run(0);
    for stray in 1..4 {
        assert_eq!(run(stray), clean, "{stray} stray exits must not perturb the trace");
    }
    let spans = &clean.traces[0].spans;
    assert_eq!(spans.len(), 2);
    assert_eq!((spans[0].name, spans[0].start_us, spans[0].end_us), ("session", 10, 20));
    assert_eq!((spans[1].name, spans[1].start_us, spans[1].end_us), ("tail", 50, 60));
}
