//! Pins the workspace-wide empty-input convention for ratio metrics in
//! one table-driven test.
//!
//! The convention: **on empty input, every ratio metric returns its
//! perfect value** — `1.0` for higher-is-better metrics (hit rates,
//! completion, delivery), `0.0` for lower-is-better metrics (waste,
//! rebuffer, conceal). Before this was unified, `hit_rate` and
//! `completion_rate` returned `0.0` (the *worst* value for their
//! semantics) while `delivery_ratio` returned `1.0`, so "no data yet"
//! read as a catastrophe on some dashboards and perfection on others.

use vgbl_media::GopCache;
use vgbl_runtime::analytics::{DecodeReuse, LearningReport, ResilienceReport};
use vgbl_stream::StreamStats;

fn empty_stream_stats() -> StreamStats {
    StreamStats {
        startup_ms: 0.0,
        stalls: 0,
        stall_ms: 0.0,
        bytes_fetched: 0,
        wasted_bytes: 0,
        play_ms: 0.0,
        retries: 0,
        timeouts: 0,
        gave_up: 0,
        fast_failed: 0,
        conceal_ms: 0.0,
    }
}

#[test]
fn empty_input_ratios_return_their_perfect_value() {
    let stream = empty_stream_stats();
    let cache = GopCache::new(4);
    let reuse = DecodeReuse::from_cache(&cache.stats());
    let learning = LearningReport::from_sessions(std::iter::empty());
    let resilience = ResilienceReport::from_sessions(&[], &[]);

    // (metric, observed, perfect value under the convention)
    let table: &[(&str, f64, f64)] = &[
        // Higher is better → perfect value is 1.0.
        ("CacheStats::hit_rate", cache.stats().hit_rate(), 1.0),
        ("DecodeReuse::hit_rate", reuse.hit_rate(), 1.0),
        ("LearningReport::completion_rate", learning.completion_rate(), 1.0),
        ("StreamStats::delivery_ratio", stream.delivery_ratio(), 1.0),
        ("ResilienceReport::avg_delivery_ratio", resilience.avg_delivery_ratio, 1.0),
        // Lower is better → perfect value is 0.0.
        ("StreamStats::waste_ratio", stream.waste_ratio(), 0.0),
        ("StreamStats::rebuffer_ratio", stream.rebuffer_ratio(), 0.0),
        ("ResilienceReport::conceal_ratio", resilience.conceal_ratio(), 0.0),
        ("ResilienceReport::rebuffer_ratio", resilience.rebuffer_ratio(), 0.0),
    ];
    for (name, observed, perfect) in table {
        assert_eq!(
            observed, perfect,
            "{name}: empty input must return its perfect value {perfect}, got {observed}"
        );
    }
}

#[test]
fn degenerate_stalled_input_is_not_empty_input() {
    // A session (or cohort) that stalled without playing is the worst
    // playback, not an empty one: the lower-is-better rebuffer ratio
    // must degrade to infinity, never report the perfect 0.0.
    let stalled = StreamStats { stall_ms: 750.0, ..empty_stream_stats() };
    assert_eq!(stalled.rebuffer_ratio(), f64::INFINITY);
    let cohort = ResilienceReport::from_sessions(&[stalled], &[]);
    assert_eq!(cohort.rebuffer_ratio(), f64::INFINITY);
}
