//! End-to-end integration: the whole paper pipeline in one test file.
//!
//! Footage synthesis → §4.1 import (shot detection + encoding) → both
//! editors → validation → publishing → a player session with live video
//! decode → save game → restore → completion → analytics.

use vgbl::prelude::*;
use vgbl::runtime::save::SaveGame;
use vgbl::runtime::InputEvent as RtInput;

#[test]
fn author_publish_play_save_restore_finish() {
    // --- Author ---
    let (project, import) = vgbl::sample::fix_the_computer_project(3).unwrap();
    assert!(import.compression_ratio > 1.0);
    assert_eq!(project.segments.len(), 2);

    // --- Persist the project and reload it ---
    let text = vgbl::author::serialize::to_vgp(&project).unwrap();
    let mut reloaded = vgbl::author::serialize::from_vgp(&text).unwrap();
    assert_eq!(reloaded.graph, project.graph);
    // Footage travels in the .vgv sidecar.
    let vgv = vgbl::media::ContainerWriter::write(project.video.as_ref().unwrap());
    let video = vgbl::media::ContainerReader::read(&vgv).unwrap();
    let segments = reloaded.segments.clone();
    reloaded.attach_video(video, segments).unwrap();

    // --- Publish ---
    let game = vgbl::publish::publish(reloaded).unwrap();
    assert_eq!(game.title, "Fix the Computer");

    // --- Play up to the market trip ---
    let mut player = Player::new(&game).unwrap();
    player.handle(RtInput::click(25, 20)).unwrap(); // diagnose
    player.handle(RtInput::Tick(250)).unwrap();
    player.handle(RtInput::click(42, 4)).unwrap(); // market
    player.handle(RtInput::drag(12, 12, 60, 20)).unwrap(); // take fan

    // --- Save mid-game ---
    let save = SaveGame::capture(
        &game.graph,
        player.session().state(),
        player.session().inventory(),
    );
    let save_text = save.to_text();

    // --- Restore into a fresh session and finish ---
    let loaded = SaveGame::from_text(&save_text).unwrap();
    loaded.verify(&game.graph).unwrap();
    let mut resumed = vgbl::runtime::GameSession::restore(
        game.graph.clone(),
        game.session_config(),
        loaded.state,
        loaded.inventory,
    )
    .unwrap();
    assert_eq!(resumed.state().current_scenario, "market");
    assert!(resumed.inventory().has("fan"));
    resumed.handle(RtInput::click(42, 4)).unwrap(); // back to class
    let feedback = resumed.handle(RtInput::apply("fan", 25, 20)).unwrap();
    assert!(feedback.iter().any(|f| matches!(f, Feedback::GameEnded(o) if o == "fixed")));
    assert_eq!(resumed.state().score, 25);
    assert!(resumed.inventory().has_reward("computer_medic"));
}

#[test]
fn figure_renders_are_stable_end_to_end() {
    let (project, _) = vgbl::sample::fix_the_computer_project(2).unwrap();
    let fig1_a = vgbl::author::render::ascii_ui(&project, Some(("classroom", "computer")), None);
    let fig1_b = vgbl::author::render::ascii_ui(&project, Some(("classroom", "computer")), None);
    assert_eq!(fig1_a, fig1_b);
    assert!(fig1_a.contains("VGBL Authoring Tool"));
    assert!(fig1_a.contains("object: computer"));

    let game = vgbl::publish::publish(project).unwrap();
    let mut p1 = Player::new(&game).unwrap();
    let mut p2 = Player::new(&game).unwrap();
    let fig2_a = p1.ui().unwrap();
    let fig2_b = p2.ui().unwrap();
    assert_eq!(fig2_a, fig2_b);
    assert!(fig2_a.contains("VGBL Runtime Environment"));
    assert!(fig2_a.contains("BACKPACK"));
}

#[test]
fn decoded_playback_matches_authored_footage() {
    // The frame a player sees at scenario entry is the (lossy-coded)
    // first frame of that scenario's segment from the original footage.
    let footage = vgbl::sample::sample_footage(2);
    let (project, _) = vgbl::sample::fix_the_computer_project(2).unwrap();
    let game = vgbl::publish::publish(project).unwrap();
    let mut player = Player::new(&game).unwrap();
    let shown = player.frame().unwrap();
    let original = &footage.frames[0];
    // Objects are composited on top, so compare a corner outside any
    // object bounds (59, 45): lossy error only.
    let a = shown.get(59, 45).unwrap();
    let b = original.get(59, 45).unwrap();
    assert!(
        a.dist_sq(b) < 32 * 32,
        "playback pixel drifted: {a:?} vs {b:?}"
    );
}

#[test]
fn guided_cohort_completes_on_published_game() {
    use vgbl::runtime::bot::{GuidedBot, run_session};
    let (project, _) = vgbl::sample::fix_the_computer_project(2).unwrap();
    let game = vgbl::publish::publish(project).unwrap();
    let mut bot = GuidedBot::new();
    let run = run_session(game.graph.clone(), game.session_config(), &mut bot, 100, 100).unwrap();
    assert_eq!(run.state.ended.as_deref(), Some("fixed"));
    assert!(run.log.knowledge_events() >= 2);
}

#[test]
fn quiz_template_full_pipeline_with_footage() {
    use vgbl::author::import::{import_footage, ImportConfig};
    use vgbl::media::synth::{FootageSpec, ShotSpec};
    use vgbl::media::color::Rgb;

    // Build footage matching the quiz template's 5 segments (3 questions).
    let mut template = vgbl::author::wizard::quiz_template("quiz", 3);
    let shots = (0..5u64)
        .map(|i| ShotSpec::plain(30, Rgb::from_seed(i * 17 + 2)))
        .collect();
    let footage = FootageSpec {
        width: 64,
        height: 48,
        rate: FrameRate::FPS30,
        shots,
        noise_seed: 5,
    }
    .render()
    .unwrap();
    import_footage(
        &mut template,
        &footage.frames,
        footage.rate,
        &ImportConfig::default(),
        Some(&footage.cuts),
    )
    .unwrap();
    assert_eq!(template.segments.len(), 5);

    let game = vgbl::publish::publish(template).unwrap();
    let mut player = Player::new(&game).unwrap();
    // Answer all three questions correctly (correct answer alternates).
    player.handle(RtInput::click(26, 33)).unwrap(); // start
    for q in 1..=3 {
        let (x, y) = if q % 2 == 1 { (10, 33) } else { (42, 33) };
        let fb = player.handle(RtInput::click(x, y)).unwrap();
        assert!(
            fb.iter().any(|f| matches!(f, Feedback::ScoreChanged { delta: 10, .. })),
            "q{q}: {fb:?}"
        );
    }
    assert_eq!(player.session().state().current_scenario, "results");
    assert!(player.session().inventory().has_reward("quiz_master"));
    let fb = player.handle(RtInput::click(26, 33)).unwrap(); // finish
    assert!(fb.iter().any(|f| matches!(f, Feedback::GameEnded(_))));
}

#[test]
fn guided_bot_solves_the_escape_room_chain() {
    use vgbl::runtime::bot::{run_session, GuidedBot};
    use vgbl::runtime::SessionConfig;
    use std::sync::Arc;

    // Lock-and-key chains exercise condition-gated transitions deeply.
    let project = vgbl::author::wizard::escape_template("escape", 4);
    let graph = Arc::new(project.graph.clone());
    let mut bot = GuidedBot::new();
    let run = run_session(
        graph,
        SessionConfig::for_frame(64, 48),
        &mut bot,
        200,
        50,
    )
    .unwrap();
    assert_eq!(run.state.ended.as_deref(), Some("escaped"), "log: {:?}", run.log.events());
    assert_eq!(run.state.score, 40); // 4 doors x 10
    assert!(run.inventory.has_reward("escape_artist"));
    // Every key was consumed on its door.
    for r in 0..4 {
        assert!(!run.inventory.has(&format!("key{r}")));
    }
}

#[test]
fn explorer_bot_also_escapes() {
    use vgbl::runtime::bot::{run_session, ExplorerBot};
    use vgbl::runtime::SessionConfig;
    use std::sync::Arc;

    let project = vgbl::author::wizard::escape_template("escape", 3);
    let graph = Arc::new(project.graph.clone());
    let mut bot = ExplorerBot::new();
    let run = run_session(
        graph,
        SessionConfig::for_frame(64, 48),
        &mut bot,
        250,
        50,
    )
    .unwrap();
    assert_eq!(run.state.ended.as_deref(), Some("escaped"), "log: {:?}", run.log.events());
}
