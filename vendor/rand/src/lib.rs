//! Offline shim for `rand` 0.8.
//!
//! The workspace only needs seeded, deterministic generation: `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], plus [`Rng::gen`],
//! [`Rng::gen_range`] and [`Rng::gen_bool`]. The generator is
//! xoshiro256** seeded through SplitMix64 — not the real `StdRng`
//! (ChaCha12), but deterministic, well distributed and dependency-free,
//! which is what the benches and tests rely on.

#![forbid(unsafe_code)]

/// A source of randomness.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    /// A uniform value in `range`.
    ///
    /// # Panics
    /// Panics when the range is empty, matching upstream.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits to `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: Rng>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) / (1u64 << 24) as f32
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as upstream recommends for seeding.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-4.0f32..4.0);
            assert!((-4.0..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.8)).count();
        assert!((7500..8500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn full_width_ranges_do_not_panic() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = rng.gen_range(u64::MIN..u64::MAX);
        let _ = rng.gen_range(i64::MIN..i64::MAX);
        let _: u64 = rng.gen();
        let _: bool = rng.gen();
    }
}
