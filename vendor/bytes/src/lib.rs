//! Offline shim for the `bytes` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the tiny API subset it actually uses: little-endian cursor reads over
//! `&[u8]` and little-endian appends to `Vec<u8>`. Semantics match the
//! real crate for in-bounds use; out-of-bounds reads panic, as upstream
//! does.

#![forbid(unsafe_code)]

/// Read-side cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);
    /// Copies `dst.len()` bytes into `dst` and advances past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write-side growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0123_4567_89AB_CDEF);
        out.put_slice(b"xyz");

        let mut buf: &[u8] = &out;
        assert_eq!(buf.remaining(), 1 + 4 + 8 + 3);
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64_le(), 0x0123_4567_89AB_CDEF);
        let mut tail = [0u8; 3];
        buf.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4, 5];
        let mut buf: &[u8] = &data;
        buf.advance(2);
        assert_eq!(buf.get_u8(), 3);
        assert_eq!(buf.remaining(), 2);
    }
}
