//! Offline shim for `proptest` 1.x.
//!
//! The build container has no crates.io access, so this crate implements
//! the subset of proptest the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`](strategy::Strategy) with
//! `prop_map`/`prop_filter`,
//! `any::<T>()` for primitives, range / tuple / collection / option /
//! char strategies, regex-subset string strategies, `prop_oneof!`, and
//! the `prop_assert*` family.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the case number, the
//!   deterministic per-test seed and the assertion message; inputs are
//!   reproduced by re-running the test (generation is seeded by test
//!   name, so failures are stable across runs).
//! * **Regex strategies** support the subset the tests use: bracket
//!   classes (with ranges and escapes), literal characters, `\PC`
//!   (printable unicode) and `{m}` / `{m,n}` repetition.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Per-test configuration and the deterministic generator.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!`; it is not counted.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given reason.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic xoshiro256** generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the generator from a test's name (stable across runs).
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::from_seed(h)
        }

        /// Seeds from a raw 64-bit value via SplitMix64.
        pub fn from_seed(seed: u64) -> TestRng {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform `usize` in `[lo, hi]`.
        pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
            lo + self.below((hi - lo) as u64 + 1) as usize
        }

        /// Uniform value in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and generic combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values `f` accepts, retrying internally.
        fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, whence: whence.into(), f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.new_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter {:?} rejected 1000 candidates in a row", self.whence);
        }
    }

    /// A type-erased generator arm of a [`Union`].
    pub type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// Uniform choice between heterogeneous strategies (see `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<UnionArm<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over the given arms.
        pub fn new(arms: Vec<UnionArm<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }

        /// Erases one strategy into an arm.
        pub fn arm<S>(strategy: S) -> UnionArm<V>
        where
            S: Strategy<Value = V> + 'static,
        {
            Box::new(move |rng| strategy.new_value(rng))
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn new_value(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            (self.arms[i])(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

    impl Strategy for &'static str {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one uniform value.
        fn arb(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arb(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arb(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arb(rng: &mut TestRng) -> f64 {
            rng.unit_f64() * 2e9 - 1e9
        }
    }

    impl Arbitrary for f32 {
        fn arb(rng: &mut TestRng) -> f32 {
            (rng.unit_f64() * 2e6 - 1e6) as f32
        }
    }

    impl Arbitrary for char {
        fn arb(rng: &mut TestRng) -> char {
            crate::char::sample_any(rng)
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arb(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index::from_raw(rng.next_u64())
        }
    }

    /// Strategy produced by [`any`].
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arb(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Vec / BTreeSet / BTreeMap strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};

    /// An inclusive-exclusive size bound for collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            rng.usize_inclusive(self.lo, self.hi.max(self.lo + 1) - 1)
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Sets of up to `size` elements (duplicates collapse, as upstream).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // A few extra draws approximate the requested size when the
            // element domain collides.
            for _ in 0..n * 2 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.new_value(rng));
            }
            out
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// Maps of up to `size` entries.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn new_value(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.pick(rng);
            let mut out = BTreeMap::new();
            for _ in 0..n * 2 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.key.new_value(rng), self.value.new_value(rng));
            }
            out
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

pub mod char {
    //! Char strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive code-point range strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct CharRange {
        lo: u32,
        hi: u32,
    }

    /// Chars in `[lo, hi]` by code point.
    pub fn range(lo: char, hi: char) -> CharRange {
        assert!(lo <= hi, "empty char range");
        CharRange { lo: lo as u32, hi: hi as u32 }
    }

    impl Strategy for CharRange {
        type Value = char;

        fn new_value(&self, rng: &mut TestRng) -> char {
            // Rejection-sample across the surrogate gap.
            loop {
                let v = self.lo + rng.below((self.hi - self.lo) as u64 + 1) as u32;
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }

    /// Any `char`, biased toward ASCII like upstream.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyChar;

    /// Strategy over all of `char`.
    pub fn any() -> AnyChar {
        AnyChar
    }

    pub(crate) fn sample_any(rng: &mut TestRng) -> char {
        if rng.below(2) == 0 {
            // Printable ASCII half the time.
            char::from_u32(0x20 + rng.below(0x5F) as u32).expect("ascii")
        } else {
            loop {
                let v = rng.below(0x11_0000) as u32;
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }

    impl Strategy for AnyChar {
        type Value = char;

        fn new_value(&self, rng: &mut TestRng) -> char {
            sample_any(rng)
        }
    }
}

pub mod sample {
    //! Index sampling.

    /// A deferred index into a not-yet-known-length slice.
    #[derive(Debug, Clone, Copy)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        pub(crate) fn from_raw(raw: u64) -> Index {
            Index { raw }
        }

        /// Resolves against a concrete length (must be non-zero).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.raw % len as u64) as usize
        }
    }
}

pub mod string {
    //! Regex-subset string generation backing `&str` strategies.

    use crate::test_runner::TestRng;

    enum Atom {
        /// Inclusive code-point ranges.
        Class(Vec<(u32, u32)>),
        /// `\PC` — printable unicode.
        Printable,
        /// A literal char.
        Lit(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            other => other,
        }
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0usize;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            unescape(chars[i])
                        } else {
                            chars[i]
                        };
                        i += 1;
                        // `x-y` range unless the hyphen closes the class.
                        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                            i += 1;
                            let hi = if chars[i] == '\\' {
                                i += 1;
                                unescape(chars[i])
                            } else {
                                chars[i]
                            };
                            i += 1;
                            ranges.push((lo as u32, hi as u32));
                        } else {
                            ranges.push((lo as u32, lo as u32));
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in {pattern:?}");
                    i += 1; // ']'
                    Atom::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    if chars.get(i) == Some(&'P') && chars.get(i + 1) == Some(&'C') {
                        i += 2;
                        Atom::Printable
                    } else {
                        let c = unescape(chars[i]);
                        i += 1;
                        Atom::Lit(c)
                    }
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            // Optional {m} / {m,n} repetition.
            let (min, max) = if chars.get(i) == Some(&'{') {
                i += 1;
                let mut m = 0usize;
                while chars[i].is_ascii_digit() {
                    m = m * 10 + chars[i].to_digit(10).expect("digit") as usize;
                    i += 1;
                }
                let n = if chars[i] == ',' {
                    i += 1;
                    let mut n = 0usize;
                    while chars[i].is_ascii_digit() {
                        n = n * 10 + chars[i].to_digit(10).expect("digit") as usize;
                        i += 1;
                    }
                    n
                } else {
                    m
                };
                assert!(chars[i] == '}', "malformed repetition in {pattern:?}");
                i += 1;
                (m, n)
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn sample_class(ranges: &[(u32, u32)], rng: &mut TestRng) -> char {
        let total: u64 = ranges.iter().map(|&(lo, hi)| (hi - lo) as u64 + 1).sum();
        let mut pick = rng.below(total);
        for &(lo, hi) in ranges {
            let span = (hi - lo) as u64 + 1;
            if pick < span {
                return char::from_u32(lo + pick as u32).expect("valid class char");
            }
            pick -= span;
        }
        unreachable!("pick within total")
    }

    fn sample_printable(rng: &mut TestRng) -> char {
        match rng.below(10) {
            // Mostly printable ASCII …
            0..=6 => char::from_u32(0x20 + rng.below(0x5F) as u32).expect("ascii"),
            // … some Latin-1 / Greek / Cyrillic …
            7 | 8 => char::from_u32(0xA1 + rng.below(0x400) as u32).unwrap_or('¡'),
            // … and occasional CJK.
            _ => char::from_u32(0x4E00 + rng.below(0x2000) as u32).unwrap_or('中'),
        }
    }

    /// Generates one string matching the regex-subset `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let n = rng.usize_inclusive(piece.min, piece.max);
            for _ in 0..n {
                match &piece.atom {
                    Atom::Class(ranges) => out.push(sample_class(ranges, rng)),
                    Atom::Printable => out.push(sample_printable(rng)),
                    Atom::Lit(c) => out.push(*c),
                }
            }
        }
        out
    }
}

pub mod prelude {
    //! Everything the property tests import.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    pub mod prop {
        //! Namespaced re-exports (`prop::sample::Index` etc.).
        pub use crate::char;
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (cfg = ($cfg:expr); $(
        #[test]
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).saturating_add(1000),
                    "too many rejected cases (prop_assume rejects nearly everything)"
                );
                $(let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed at case #{passed}: {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
        }
    )*};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Union::arm($arm) ),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::test_runner::TestRng::for_test("regex");
        for _ in 0..200 {
            let s = crate::string::generate("[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().expect("non-empty").is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));

            let p = crate::string::generate("[ -~]{0,40}", &mut rng);
            assert!(p.chars().count() <= 40);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)), "{p:?}");

            let any = crate::string::generate("\\PC{0,60}", &mut rng);
            assert!(any.chars().count() <= 60);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn addition_commutes(a in any::<i32>(), b in any::<i32>()) {
            prop_assert_eq!(a as i64 + b as i64, b as i64 + a as i64);
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(0u8..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_map_compose(
            e in prop_oneof![
                (0usize..4).prop_map(Some),
                Just(None),
            ],
            idx in any::<prop::sample::Index>(),
        ) {
            if let Some(x) = e {
                prop_assert!(x < 4);
            }
            prop_assert!(idx.index(7) < 7);
        }

        #[test]
        fn assume_skips(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
