//! Offline shim for `crossbeam`.
//!
//! Provides scoped threads on top of `std::thread::scope` and MPMC
//! channels on top of `std::sync::mpsc` (receiver shared behind a
//! mutex). Two behavioural notes versus upstream:
//!
//! * `scope` returns `Ok(..)` or propagates a child panic directly
//!   instead of returning `Err`; callers here only `.expect()` the
//!   result, so the observable behaviour (panic on worker panic) is
//!   identical.
//! * Channel `Receiver::iter` ends when all senders are dropped, like
//!   upstream.

#![forbid(unsafe_code)]

use std::thread;

/// Scoped-thread handle passed to [`scope`] closures.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again so
    /// nested spawns keep working, mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a thread scope; all spawned threads join before this
/// returns. A panicking child propagates its panic at join.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

pub mod channel {
    //! MPMC channels over `std::sync::mpsc`.

    use std::sync::mpsc;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Sending half; clonable.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Error returned when the receiving side is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> Sender<T> {
        /// Sends a value; errors when every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half; clonable (receivers share one queue).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(self.0.clone())
        }
    }

    /// Error returned when the channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Receiver<T> {
        /// Blocks for the next value; errors when all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .recv()
                .map_err(|_| RecvError)
        }

        /// Iterates until the channel closes.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator over received values.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_workers() {
        let mut data = vec![0u32; 4];
        scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u32 + 1);
            }
        })
        .unwrap();
        assert_eq!(data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn channel_fans_out_to_many_receivers() {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| rx.iter().sum::<usize>())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 99 * 100 / 2);
    }
}
