//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly instead of
//! `Result`s. A poisoned std lock (a thread panicked while holding it)
//! degrades to propagating the inner value, matching parking_lot's
//! behaviour of simply not tracking poison.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, PoisonError};

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not track poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock that does not track poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Blocks on the guard until notified.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0usize));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_readers_share() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
