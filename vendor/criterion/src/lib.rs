//! Offline shim for `criterion` 0.5.
//!
//! Provides the measurement API the bench suite uses — groups,
//! `bench_function` / `bench_with_input`, throughput annotations — with
//! a simple mean-of-samples wall-clock measurement and plain-text
//! reporting. `cargo bench -- --test` (CI smoke mode) runs every closure
//! exactly once, like the real crate.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`, criterion's conventional id shape.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Id from a bare parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Work-per-iteration annotation; reported as derived throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical items processed per iteration.
    Elements(u64),
}

/// Passed to bench closures; runs and times the measured routine.
pub struct Bencher<'a> {
    quick: bool,
    samples: usize,
    elapsed: &'a mut Duration,
    iters: &'a mut u64,
}

impl Bencher<'_> {
    /// Times `routine`, storing total elapsed time and iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.quick {
            let t0 = Instant::now();
            black_box(routine());
            *self.elapsed = t0.elapsed();
            *self.iters = 1;
            return;
        }
        // Warm-up and calibration: find an iteration count that runs for
        // a measurable stretch, capped to keep total bench time sane.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let budget = Duration::from_millis(120);
        let per_sample =
            ((budget.as_nanos() / self.samples as u128) / once.as_nanos()).clamp(1, 10_000) as u64;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            total += t.elapsed();
            iters += per_sample;
        }
        *self.elapsed = total;
        *self.iters = iters;
    }
}

fn human_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(label: &str, elapsed: Duration, iters: u64, throughput: Option<Throughput>) {
    let per_iter = if iters == 0 {
        Duration::ZERO
    } else {
        Duration::from_nanos((elapsed.as_nanos() / iters as u128) as u64)
    };
    let mut line = format!("{label:<48} time: {:>12}", human_time(per_iter));
    if let Some(tp) = throughput {
        let secs = per_iter.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Bytes(b) => {
                    let _ = write!(line, "   thrpt: {:.2} MiB/s", b as f64 / secs / (1 << 20) as f64);
                }
                Throughput::Elements(n) => {
                    let _ = write!(line, "   thrpt: {:.0} elem/s", n as f64 / secs);
                }
            }
        }
    }
    println!("{line}");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Annotates following benchmarks with work-per-iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        let mut elapsed = Duration::ZERO;
        let mut iters = 0u64;
        f(&mut Bencher {
            quick: self.criterion.quick,
            samples: self.samples,
            elapsed: &mut elapsed,
            iters: &mut iters,
        });
        report(&label, elapsed, iters, self.throughput);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    quick: bool,
}

impl Criterion {
    /// Builds a driver honouring harness flags (`--test` = one
    /// iteration per bench, as the real crate does for CI smoke runs).
    pub fn from_args() -> Criterion {
        let quick = std::env::args().any(|a| a == "--test" || a == "--quick");
        Criterion { quick }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: 30,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut elapsed = Duration::ZERO;
        let mut iters = 0u64;
        f(&mut Bencher {
            quick: self.quick,
            samples: 30,
            elapsed: &mut elapsed,
            iters: &mut iters,
        });
        report(&id.0, elapsed, iters, None);
        self
    }
}

/// Declares a group function running each target against one driver.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { quick: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(5).throughput(Throughput::Elements(10));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("case", 1), &3usize, |b, &x| {
            b.iter(|| x * 2);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
